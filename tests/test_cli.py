"""Tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestDecodeCommand:
    def test_decode_micro_blossom(self, capsys):
        exit_code = main(
            [
                "decode",
                "--distance",
                "3",
                "--error-rate",
                "0.02",
                "--samples",
                "3",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "defects" in output
        assert len(output.splitlines()) >= 5

    def test_decode_union_find(self, capsys):
        exit_code = main(
            [
                "decode",
                "--distance",
                "3",
                "--samples",
                "2",
                "--decoder",
                "union-find",
            ]
        )
        assert exit_code == 0
        assert "correction_edges" in capsys.readouterr().out

    def test_decode_reports_optimal_weight(self, capsys):
        main(["decode", "--distance", "3", "--samples", "2", "--decoder", "parity-blossom"])
        output = capsys.readouterr().out
        assert "optimal" in output


class TestOtherCommands:
    def test_resources_command(self, capsys):
        assert main(["resources"]) == 0
        output = capsys.readouterr().out
        assert "luts" in output
        assert "13" in output

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "paper_luts" in capsys.readouterr().out

    def test_accuracy_command(self, capsys):
        exit_code = main(
            [
                "accuracy",
                "--distance",
                "3",
                "--error-rate",
                "0.03",
                "--samples",
                "50",
                "--decoder",
                "reference",
            ]
        )
        assert exit_code == 0
        assert "logical_error_rate" in capsys.readouterr().out

    def test_accuracy_with_early_stopping_and_workers(self, capsys):
        exit_code = main(
            [
                "accuracy",
                "--distance",
                "3",
                "--error-rate",
                "0.04",
                "--samples",
                "400",
                "--shard-size",
                "50",
                "--workers",
                "2",
                "--target-se",
                "0.05",
                "--decoder",
                "reference",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "logical_error_rate" in output
        # early stopping reports the shots actually consumed
        samples = int(output.split("samples=")[1].split()[0])
        assert samples <= 400 and samples % 50 == 0

    def test_latency_command(self, capsys):
        exit_code = main(
            [
                "latency",
                "--distance",
                "3",
                "--error-rate",
                "0.01",
                "--samples",
                "60",
                "--shard-size",
                "30",
                "--decoder",
                "parity-blossom",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "latency_us" in output
        assert "p99=" in output

    def test_latency_rejects_decoder_without_model(self):
        with pytest.raises(SystemExit):
            main(["latency", "--decoder", "reference"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
