"""Tests of the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import validate_service_bench


class TestDecodeCommand:
    def test_decode_micro_blossom(self, capsys):
        exit_code = main(
            [
                "decode",
                "--distance",
                "3",
                "--error-rate",
                "0.02",
                "--samples",
                "3",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "defects" in output
        assert len(output.splitlines()) >= 5

    def test_decode_union_find(self, capsys):
        exit_code = main(
            [
                "decode",
                "--distance",
                "3",
                "--samples",
                "2",
                "--decoder",
                "union-find",
            ]
        )
        assert exit_code == 0
        assert "correction_edges" in capsys.readouterr().out

    def test_decode_reports_optimal_weight(self, capsys):
        main(["decode", "--distance", "3", "--samples", "2", "--decoder", "parity-blossom"])
        output = capsys.readouterr().out
        assert "optimal" in output


class TestDecodersCommand:
    def test_lists_capabilities_not_bare_names(self, capsys):
        assert main(["decoders"]) == 0
        output = capsys.readouterr().out
        assert "streaming" in output and "timing_model" in output
        assert "native" in output  # micro-blossom streams natively
        assert "adapter" in output  # everything else streams via the adapter
        for name in ("micro-blossom", "parity-blossom", "union-find", "reference"):
            assert name in output


class TestStreamCommand:
    def test_stream_micro_blossom(self, capsys):
        exit_code = main(
            [
                "stream",
                "--distance",
                "3",
                "--error-rate",
                "0.02",
                "--samples",
                "48",
                "--shard-size",
                "16",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "reaction_us" in output
        assert "max_backlog_us" in output
        assert "streams=3" in output

    def test_stream_adapter_backend_with_window(self, capsys):
        exit_code = main(
            [
                "stream",
                "--distance",
                "3",
                "--error-rate",
                "0.03",
                "--samples",
                "24",
                "--decoder",
                "union-find",
                "--window",
                "2",
                "--rounds",
                "4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "rounds=4" in output
        assert "reaction_us" in output

    def test_stream_rejects_decoder_without_model(self):
        with pytest.raises(SystemExit):
            main(["stream", "--decoder", "reference"])


class TestOtherCommands:
    def test_resources_command(self, capsys):
        assert main(["resources"]) == 0
        output = capsys.readouterr().out
        assert "luts" in output
        assert "13" in output

    def test_experiment_table4(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "paper_luts" in capsys.readouterr().out

    def test_accuracy_command(self, capsys):
        exit_code = main(
            [
                "accuracy",
                "--distance",
                "3",
                "--error-rate",
                "0.03",
                "--samples",
                "50",
                "--decoder",
                "reference",
            ]
        )
        assert exit_code == 0
        assert "logical_error_rate" in capsys.readouterr().out

    def test_accuracy_with_early_stopping_and_workers(self, capsys):
        exit_code = main(
            [
                "accuracy",
                "--distance",
                "3",
                "--error-rate",
                "0.04",
                "--samples",
                "400",
                "--shard-size",
                "50",
                "--workers",
                "2",
                "--target-se",
                "0.05",
                "--decoder",
                "reference",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "logical_error_rate" in output
        # early stopping reports the shots actually consumed
        samples = int(output.split("samples=")[1].split()[0])
        assert samples <= 400 and samples % 50 == 0

    def test_latency_command(self, capsys):
        exit_code = main(
            [
                "latency",
                "--distance",
                "3",
                "--error-rate",
                "0.01",
                "--samples",
                "60",
                "--shard-size",
                "30",
                "--decoder",
                "parity-blossom",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "latency_us" in output
        assert "p99=" in output

    def test_accuracy_zero_failures_reports_rule_of_three_bound(self, capsys):
        exit_code = main(
            [
                "accuracy",
                "--distance",
                "3",
                "--error-rate",
                "0.0001",
                "--samples",
                "50",
                "--decoder",
                "reference",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "errors=0" in output
        assert "logical_error_rate<=" in output
        assert "rule of three" in output

    def test_latency_rejects_decoder_without_model(self):
        with pytest.raises(SystemExit):
            main(["latency", "--decoder", "reference"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestSweepCommand:
    RUN_ARGS = [
        "sweep",
        "run",
        "--distances",
        "3",
        "--error-rates",
        "0.04",
        "--decoders",
        "reference,union-find",
        "--shots",
        "48",
        "--shard-size",
        "16",
        "--seed",
        "9",
    ]

    def _store(self, tmp_path):
        return str(tmp_path / "store.jsonl")

    def test_run_then_resume_hits_the_cache(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert main(self.RUN_ARGS + ["--store", store]) == 0
        output = capsys.readouterr().out
        assert "2 run, 0 cached" in output
        assert main(["sweep", "resume", "--store", store]) == 0
        assert "0 run, 2 cached" in capsys.readouterr().out

    def test_resume_without_a_store_file_fails(self, tmp_path, capsys):
        assert main(["sweep", "resume", "--store", self._store(tmp_path)]) == 2
        assert "no sweep spec" in capsys.readouterr().err

    def test_report_tabulates_stored_points(self, tmp_path, capsys):
        store = self._store(tmp_path)
        main(self.RUN_ARGS + ["--store", store])
        capsys.readouterr()
        assert main(["sweep", "report", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "logical_error_rate" in output
        assert "upper_bound" in output

    def test_report_on_empty_store_fails(self, tmp_path, capsys):
        assert main(["sweep", "report", "--store", self._store(tmp_path)]) == 2
        assert "no results" in capsys.readouterr().err

    def test_corrupt_store_reports_cleanly(self, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        store.write_text("garbage that is not json\n")
        assert main(["sweep", "report", "--store", str(store)]) == 2
        assert "corrupt" in capsys.readouterr().err

    def test_latency_sweep_report_shows_latency_column(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert (
            main(
                [
                    "sweep",
                    "run",
                    "--distances",
                    "3",
                    "--error-rates",
                    "0.04",
                    "--decoders",
                    "union-find",
                    "--shots",
                    "48",
                    "--latency",
                    "--store",
                    store,
                ]
            )
            == 0
        )
        assert "latency_p99_us" in capsys.readouterr().out

    def test_export_bench_writes_schema_valid_artifact(self, tmp_path, capsys):
        import json

        from repro.sweeps import validate_bench

        store = self._store(tmp_path)
        main(self.RUN_ARGS + ["--store", store])
        bench_path = tmp_path / "BENCH_sweep.json"
        assert main(
            ["sweep", "export-bench", "--store", store, "--output", str(bench_path)]
        ) == 0
        document = json.loads(bench_path.read_text())
        validate_bench(document)
        assert len(document["points"]) == 2

    def test_export_bench_without_spec_fails(self, tmp_path, capsys):
        assert (
            main(["sweep", "export-bench", "--store", self._store(tmp_path)]) == 2
        )

    def test_run_accepts_a_spec_file(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "from-file",
                    "distances": [3],
                    "physical_error_rates": [0.04],
                    "decoders": ["union-find"],
                    "shots": 32,
                    "seed": 4,
                    "shard_size": 16,
                }
            )
        )
        store = self._store(tmp_path)
        assert main(["sweep", "run", "--spec", str(spec_path), "--store", store]) == 0
        assert "'from-file'" in capsys.readouterr().out

    def test_streaming_flag_adds_the_axis(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert (
            main(
                [
                    "sweep",
                    "run",
                    "--distances",
                    "3",
                    "--error-rates",
                    "0.03",
                    "--decoders",
                    "union-find",
                    "--shots",
                    "32",
                    "--shard-size",
                    "16",
                    "--streaming",
                    "--store",
                    store,
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "2 run, 0 cached" in output  # batch + stream point per cell
        assert "stream" in output and "batch" in output  # the mode column

    def test_zero_failure_point_reported_as_bound(self, tmp_path, capsys):
        store = self._store(tmp_path)
        assert (
            main(
                [
                    "sweep",
                    "run",
                    "--distances",
                    "3",
                    "--error-rates",
                    "0.0001",
                    "--decoders",
                    "reference",
                    "--shots",
                    "40",
                    "--store",
                    store,
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "<=" in output  # rule-of-three upper bound, not 0 +/- 0


class TestServeBenchCommand:
    def test_serve_bench_emits_validated_document(self, tmp_path, capsys):
        output_path = tmp_path / "BENCH_service.json"
        exit_code = main(
            [
                "serve-bench",
                "--requests",
                "24",
                "--distances",
                "3",
                "--error-rates",
                "0.02",
                "--decoders",
                "union-find",
                "--workers",
                "2",
                "--seed",
                "3",
                "--output",
                str(output_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "24 requests (24 completed, 0 shed, 0 error)" in output
        assert "identity: 24 checked, 0 mismatches" in output
        document = json.loads(output_path.read_text())
        validate_service_bench(document)
        assert document["identity"]["mismatches"] == 0

    def test_serve_bench_smoke_uses_pinned_trace(self, tmp_path, capsys):
        output_path = tmp_path / "BENCH_service.json"
        exit_code = main(
            ["serve-bench", "--smoke", "--no-verify", "--output", str(output_path)]
        )
        assert exit_code == 0
        document = json.loads(output_path.read_text())
        assert document["trace"]["name"] == "ci-smoke"
        assert document["trace"]["requests"] == 96
        # --smoke replays the pinned trace twice (cache-off/on comparison).
        assert document["requests"] == 192
        assert document["outcome_cache"]["hits"] == 96
        assert document["cache_comparison"] is not None
        assert document["identity"]["checked"] == 0  # --no-verify

    def test_serve_bench_accepts_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        trace_path.write_text(
            json.dumps(
                {
                    "name": "file-trace",
                    "scenarios": [
                        {
                            "distance": 3,
                            "physical_error_rate": 0.02,
                            "decoder": "union-find",
                        }
                    ],
                    "requests": 8,
                    "arrival": "closed",
                    "clients": 2,
                }
            )
        )
        output_path = tmp_path / "BENCH_service.json"
        exit_code = main(
            [
                "serve-bench",
                "--trace",
                str(trace_path),
                "--output",
                str(output_path),
            ]
        )
        assert exit_code == 0
        assert json.loads(output_path.read_text())["trace"]["name"] == "file-trace"

    def test_serve_bench_fault_plan_file(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({"name": "cli-plan", "seed": 11, "poison_rate": 0.3}))
        output_path = tmp_path / "BENCH_service.json"
        exit_code = main(
            [
                "serve-bench",
                "--requests",
                "16",
                "--distances",
                "3",
                "--error-rates",
                "0.02",
                "--decoders",
                "union-find",
                "--seed",
                "3",
                "--fault-plan",
                str(plan_path),
                "--output",
                str(output_path),
            ]
        )
        assert exit_code == 0
        document = json.loads(output_path.read_text())
        validate_service_bench(document)
        assert document["fault_plan"]["name"] == "cli-plan"
        assert document["error_responses"] > 0
        assert (
            document["completed"] + document["shed"] + document["error_responses"]
            == document["requests"]
        )
        assert "poisoned errored" in capsys.readouterr().out

    def test_serve_bench_hostile_smoke_records_isolated_mix(self, tmp_path, capsys):
        output_path = tmp_path / "BENCH_service.json"
        exit_code = main(
            [
                "serve-bench",
                "--requests",
                "8",
                "--distances",
                "3",
                "--error-rates",
                "0.02",
                "--decoders",
                "union-find",
                "--hostile-smoke",
                "--output",
                str(output_path),
            ]
        )
        assert exit_code == 0
        document = json.loads(output_path.read_text())
        validate_service_bench(document)
        mix = document["hostile_mix"]
        assert [entry["family"] for entry in mix] == [
            "flash-crowd",
            "pareto",
            "zipf",
            "slow-consumer",
        ]
        assert all(entry["isolated"] for entry in mix)
        assert all(entry["poisoned"] > 0 for entry in mix)
        assert "NOT ISOLATED" not in capsys.readouterr().out
