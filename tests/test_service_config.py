"""ServiceConfig: validation, codecs, hashing, and the legacy-kwargs shim."""

import json

import pytest

from repro.service import DecodeService, ServiceConfig
from repro.service.faults import FaultPlan


class TestValidation:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.workers == 2
        assert config.overload_policy == "block"

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"workers": 0}, "workers must be >= 1"),
            ({"queue_capacity": 0}, "queue_capacity must be >= 1"),
            ({"max_batch_size": 0}, "max_batch_size must be >= 1"),
            ({"max_sessions": 0}, "max_sessions must be >= 1"),
            ({"overload_policy": "panic"}, "overload_policy"),
            ({"session_build_retries": -1}, "session_build_retries"),
            ({"session_build_backoff_seconds": -0.1}, "session_build_backoff_seconds"),
            ({"max_wait_seconds": -1.0}, "max_wait_seconds"),
            ({"wire_codec": 3}, "wire_codec must be 1"),
            ({"wire_codec": 0}, "wire_codec must be 1"),
            ({"coalesce_max_bytes": 0}, "coalesce_max_bytes must be >= 1"),
            ({"coalesce_max_delay_seconds": -1.0}, "coalesce_max_delay_seconds"),
        ],
    )
    def test_rejects_bad_values(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            ServiceConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ServiceConfig().workers = 5

    def test_replace(self):
        config = ServiceConfig().replace(workers=7)
        assert config.workers == 7
        assert config.max_batch_size == ServiceConfig().max_batch_size


class TestCodec:
    def test_roundtrip(self):
        config = ServiceConfig(
            workers=3,
            max_batch_size=8,
            max_wait_seconds=0.005,
            queue_capacity=64,
            max_sessions=4,
            overload_policy="shed",
            outcome_cache_bytes=1 << 20,
            session_build_retries=2,
            session_build_backoff_seconds=0.001,
            wire_codec=1,
            coalesce_max_bytes=4096,
            coalesce_max_delay_seconds=0.001,
        )
        assert ServiceConfig.from_dict(config.to_dict()) == config

    def test_roundtrip_with_fault_plan(self):
        config = ServiceConfig(fault_plan=FaultPlan(name="t", poison_rate=0.25))
        rebuilt = ServiceConfig.from_dict(config.to_dict())
        assert rebuilt.fault_plan.poison_rate == 0.25
        assert rebuilt == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ServiceConfig.from_dict({"workerz": 3})

    def test_from_file(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({"workers": 5, "overload_policy": "shed"}))
        config = ServiceConfig.from_file(path)
        assert config.workers == 5
        assert config.overload_policy == "shed"

    def test_config_hash_is_stable_and_content_addressed(self):
        a = ServiceConfig(workers=3)
        b = ServiceConfig(workers=3)
        c = ServiceConfig(workers=4)
        assert a.config_hash() == b.config_hash()
        assert a.config_hash() != c.config_hash()
        assert len(a.config_hash()) == 16


class TestLegacyShim:
    def test_legacy_kwargs_warn_and_work(self):
        with pytest.warns(DeprecationWarning):
            service = DecodeService(workers=3, max_batch_size=4)
        assert service.config.workers == 3
        assert service.config.max_batch_size == 4

    def test_config_object_does_not_warn(self, recwarn):
        service = DecodeService(ServiceConfig(workers=3))
        assert service.config.workers == 3
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_config_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            DecodeService(ServiceConfig(), workers=3)

    def test_unknown_kwarg_is_an_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            DecodeService(wrokers=3)

    def test_non_config_positional_is_an_error(self):
        with pytest.raises(TypeError, match="ServiceConfig"):
            DecodeService({"workers": 3})
