"""Tests of deterministic fault injection and hostile traffic families.

Covers `repro.service.faults` and the hostile half of `repro.service.trace`:

* :class:`FaultPlan` — validation, seed-stable selection predicates,
  dict/file round-trips, plan hashing;
* hostile trace expansion — flash-crowd bursts, Pareto inter-arrivals,
  Zipf session skew, slow-consumer streams, and the invariant that a fault
  plan poisons syndromes *without* perturbing the healthy ones;
* end-to-end isolation through :class:`repro.service.DecodeService` and
  :class:`repro.evaluation.ServiceLoadEngine` — poisoned requests resolve as
  STATUS_ERROR while the rest of their batch completes bit-identically, the
  healthy-outcome digest is independent of worker count and of the plan, and
  ``close()`` drains under active faults;
* the schema-v4 ``hostile_mix`` series of ``BENCH_service.json``.
"""

from __future__ import annotations

import pytest

from repro.evaluation import ServiceLoadEngine
from repro.service import (
    HOSTILE_FAMILIES,
    HOSTILE_SMOKE_PLAN,
    HOSTILE_SMOKE_TRACES,
    STATUS_ERROR,
    CodeSpec,
    DecodeRequest,
    DecodeService,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    Scenario,
    SessionKey,
    TraceSpec,
    generate_trace,
    hostile_mix_entry,
    hostile_trace,
    poisoned_syndrome,
    validate_service_bench,
    zipf_scenarios,
)
from repro.service.cache import build_session

D3_CODE = CodeSpec(distance=3, physical_error_rate=0.02)
UF_KEY = SessionKey(D3_CODE, "union-find")

#: A plan that poisons aggressively — small traces reliably realise faults.
HOT_PLAN = FaultPlan(name="hot", seed=11, poison_rate=0.3)


# ---------------------------------------------------------------------------
# FaultPlan semantics
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_default_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.is_active()
        assert not plan.poisons(0)
        assert not plan.crashes_build("abc", 0)
        assert not plan.straggles(0)

    def test_selections_are_seed_stable(self):
        plan = FaultPlan(seed=5, poison_rate=0.5, session_crash_rate=0.5)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert [plan.poisons(i) for i in range(64)] == [clone.poisons(i) for i in range(64)]
        assert plan.crashes_build("deadbeef", 0) == clone.crashes_build("deadbeef", 0)
        # a different seed picks different victims
        other = FaultPlan(seed=6, poison_rate=0.5)
        assert [plan.poisons(i) for i in range(64)] != [other.poisons(i) for i in range(64)]

    def test_poison_rate_selects_roughly_that_fraction(self):
        plan = FaultPlan(seed=1, poison_rate=0.25)
        hits = sum(plan.poisons(i) for i in range(2000))
        assert 0.2 < hits / 2000 < 0.3

    def test_crash_attempts_bound_consecutive_crashes(self):
        plan = FaultPlan(seed=1, session_crash_rate=1.0, session_crash_attempts=2)
        assert plan.crashes_build("k", 0) and plan.crashes_build("k", 1)
        assert not plan.crashes_build("k", 2)

    def test_plan_hash_ignores_name_only(self):
        base = FaultPlan(name="a", seed=3, poison_rate=0.1)
        assert base.plan_hash() == FaultPlan(name="b", seed=3, poison_rate=0.1).plan_hash()
        assert base.plan_hash() != FaultPlan(name="a", seed=4, poison_rate=0.1).plan_hash()

    def test_file_round_trip(self, tmp_path):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(HOSTILE_SMOKE_PLAN.to_dict()))
        assert FaultPlan.from_file(path) == HOSTILE_SMOKE_PLAN

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"straggler_workers": -1},
            {"straggler_delay_seconds": -0.1},
            {"session_crash_rate": 1.5},
            {"session_crash_attempts": 0},
            {"poison_rate": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_injector_wraps_factory_with_attempt_counting(self):
        plan = FaultPlan(seed=1, session_crash_rate=1.0, session_crash_attempts=1)
        injector = FaultInjector(plan)
        factory = injector.wrap_factory(build_session)
        with pytest.raises(InjectedFault):
            factory(UF_KEY)
        assert factory(UF_KEY).name == "union-find"  # attempt 1 succeeds
        assert injector.injected_crashes == 1
        assert injector.stats_snapshot()["plan_hash"] == plan.plan_hash()


# ---------------------------------------------------------------------------
# hostile trace families
# ---------------------------------------------------------------------------
class TestHostileTraces:
    def test_flash_crowd_arrivals_come_in_bursts(self):
        spec = hostile_trace("flash-crowd", requests=24, seed=1)
        trace = generate_trace(spec)
        offsets = [r.arrival_offset_seconds for r in trace.requests]
        assert len(set(offsets)) == len(offsets) // spec.burst_size
        assert offsets == sorted(offsets)

    def test_pareto_interarrivals_are_heavier_tailed_than_exponential(self):
        spec = hostile_trace("pareto", requests=512, seed=1)
        exp = TraceSpec.from_dict({**spec.to_dict(), "interarrival": "exponential"})
        gaps = []
        for s in (spec, exp):
            offsets = [r.arrival_offset_seconds for r in generate_trace(s).requests]
            diffs = [b - a for a, b in zip(offsets, offsets[1:])]
            gaps.append(max(diffs) / (sum(diffs) / len(diffs)))
        assert gaps[0] > gaps[1]  # pareto max/mean ratio dominates

    def test_zipf_scenarios_defeat_the_session_lru(self):
        scenarios = zipf_scenarios(Scenario(3, physical_error_rate=0.02), 12)
        assert len({s.session_key() for s in scenarios}) == 12
        weights = [s.weight for s in scenarios]
        assert weights == sorted(weights, reverse=True)
        with pytest.raises(ValueError):
            zipf_scenarios(Scenario(3, physical_error_rate=0.9), 12, rate_step=0.05)

    def test_slow_consumer_traces_carry_streams(self):
        spec = hostile_trace("slow-consumer", requests=8, seed=1)
        trace = generate_trace(spec)
        assert len(trace.streams) == spec.slow_streams > 0
        assert all(stream.rounds for stream in trace.streams)
        # stream expansion is deterministic
        again = generate_trace(spec)
        assert [s.rounds for s in again.streams] == [s.rounds for s in trace.streams]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            hostile_trace("friendly")

    def test_hostile_hashes_are_pinned(self):
        """The CI hostile-mix workload must not drift silently."""
        assert tuple(family for family, _ in HOSTILE_SMOKE_TRACES) == HOSTILE_FAMILIES
        assert [spec.trace_hash() for _, spec in HOSTILE_SMOKE_TRACES] == [
            "c99428318a911e20",
            "7d9f5a93fa56ac0c",
            "822a659e73629a50",
            "2d0f190fbe33f14d",
        ]
        assert HOSTILE_SMOKE_PLAN.plan_hash() == FaultPlan.from_dict(
            HOSTILE_SMOKE_PLAN.to_dict()
        ).plan_hash()

    def test_poisoning_never_perturbs_healthy_syndromes(self):
        """The fault plan replaces syndromes of its victims only — every other
        request must be byte-identical to the fault-free expansion."""
        spec = hostile_trace("pareto", requests=48, seed=2027)
        clean = generate_trace(spec)
        faulted = generate_trace(spec, fault_plan=HOT_PLAN)
        poisoned = 0
        for a, b in zip(clean.requests, faulted.requests):
            if b.poisoned:
                poisoned += 1
                assert b.request.syndrome != a.request.syndrome
                graph = faulted.graphs[b.scenario_index]
                assert max(b.request.syndrome.defects) >= len(graph.vertices)
            else:
                assert b.request.syndrome == a.request.syndrome
        assert poisoned > 0
        assert sum(HOT_PLAN.poisons(i) for i in range(spec.requests)) == poisoned


# ---------------------------------------------------------------------------
# end-to-end isolation through the service
# ---------------------------------------------------------------------------
class TestFaultIsolation:
    def test_poisoned_request_is_isolated_within_its_batch(self):
        """One malformed syndrome in a coalesced batch: that future gets
        STATUS_ERROR, its batchmates decode bit-identically to direct."""
        graph = D3_CODE.build_graph()
        from repro.graphs import SyndromeSampler

        syndromes = SyndromeSampler(graph, seed=3).sample_batch(4)
        bad = poisoned_syndrome(len(graph.vertices), 0)
        with DecodeService(workers=1, max_batch_size=8, max_wait_seconds=0.05) as service:
            futures = [service.submit(DecodeRequest(UF_KEY, s)) for s in syndromes]
            futures.insert(2, service.submit(DecodeRequest(UF_KEY, bad)))
            responses = [f.result(timeout=30) for f in futures]
        poisoned_response = responses.pop(2)
        assert poisoned_response.status == STATUS_ERROR
        assert poisoned_response.error
        direct = build_session(UF_KEY)
        for syndrome, response in zip(syndromes, responses):
            assert response.ok
            expected = direct.decode_detailed(syndrome)
            assert response.outcome.correction_edges(graph) == expected.correction_edges(graph)
            assert response.outcome.weight == expected.weight
        assert service.stats.errors == 1

    def test_straggler_delays_timing_but_not_outcomes(self):
        plan = FaultPlan(seed=1, straggler_workers=1, straggler_delay_seconds=0.005)
        spec = TraceSpec(
            "s", (Scenario(3, physical_error_rate=0.02, decoder="union-find"),), requests=8
        )
        baseline = ServiceLoadEngine(spec, workers=2).run()
        delayed = ServiceLoadEngine(spec, workers=2, fault_plan=plan).run()
        assert delayed.outcome_digest == baseline.outcome_digest
        assert delayed.error_responses == 0

    @pytest.mark.parametrize("family", HOSTILE_FAMILIES)
    def test_hostile_families_replay_with_full_isolation(self, family):
        """The acceptance gate, per family: healthy requests bit-identical and
        worker-count independent, poisoned requests STATUS_ERROR, clean drain."""
        spec = dict(HOSTILE_SMOKE_TRACES)[family]
        digests = set()
        for workers in (1, 3):
            result = ServiceLoadEngine(
                spec,
                workers=workers,
                overload_policy="block",
                fault_plan=HOSTILE_SMOKE_PLAN,
                session_build_retries=2,
                drain_timeout_seconds=60.0,
            ).run(verify_identity=True)
            assert result.poisoned > 0
            assert result.poisoned_errored == result.poisoned
            assert result.error_responses == result.poisoned
            assert result.completed + result.shed + result.error_responses == result.requests
            assert result.identity_mismatches == 0
            assert result.stream_mismatches == 0
            assert result.min_completion_ratio == 1.0  # block policy: no loss
            digests.add(result.healthy_digest)
        assert len(digests) == 1, "worker count changed healthy outcomes"

    def test_healthy_digest_matches_fault_free_replay(self):
        """Injecting faults must not change any healthy outcome: the digest
        over non-poisoned requests equals the fault-free outcome digest
        restricted to the same set — here the poison-free pareto family."""
        spec = dict(HOSTILE_SMOKE_TRACES)["zipf"]
        clean = ServiceLoadEngine(spec, workers=2).run()
        faulted = ServiceLoadEngine(
            spec,
            workers=2,
            fault_plan=HOSTILE_SMOKE_PLAN,
            session_build_retries=2,
        ).run()
        assert faulted.retries > 0  # the plan's crashes actually fired
        # every record present in both digests' inputs is identical, so if no
        # request were poisoned the digests would agree; with poisoning the
        # healthy digest is the invariant to compare across plans
        again = ServiceLoadEngine(
            spec,
            workers=1,
            fault_plan=HOSTILE_SMOKE_PLAN,
            session_build_retries=2,
        ).run()
        assert faulted.healthy_digest == again.healthy_digest
        assert clean.outcome_digest != faulted.outcome_digest

    def test_exhausted_retry_budget_fails_only_affected_key(self):
        plan = FaultPlan(seed=1, session_crash_rate=1.0, session_crash_attempts=3)
        spec = TraceSpec(
            "crash",
            (Scenario(3, physical_error_rate=0.02, decoder="union-find"),),
            requests=6,
            seed=9,
        )
        result = ServiceLoadEngine(spec, workers=1, fault_plan=plan, session_build_retries=1).run()
        # crash_attempts(3) > retries(1): the first batch fails, later batches
        # succeed once the attempt counter passes the crash window
        assert result.error_responses > 0
        assert result.retries > 0
        assert result.completed + result.error_responses == result.requests

    def test_close_timeout_raises_drain_error(self):
        """A drain that cannot finish inside close(timeout=...) must raise
        ServiceDrainError instead of hanging the caller (the CI hung-close
        gate). White-box: swap in a dispatcher thread that refuses to exit."""
        import threading
        import time

        from repro.service import ServiceDrainError

        service = DecodeService(workers=1)
        service.start()
        stuck = threading.Thread(target=time.sleep, args=(5,), daemon=True)
        stuck.start()
        real_dispatcher = service._dispatcher
        service._dispatcher = stuck
        with pytest.raises(ServiceDrainError, match="failed to drain"):
            service.close(timeout=0.05)
        service._dispatcher = real_dispatcher
        real_dispatcher.join(timeout=10)  # the real one drains on _STOP
        assert not real_dispatcher.is_alive()

    def test_hostile_mix_entry_validates_inside_a_v5_document(self):
        from repro.service import service_bench_document

        family, spec = HOSTILE_SMOKE_TRACES[0]
        result = ServiceLoadEngine(
            spec,
            workers=2,
            fault_plan=HOSTILE_SMOKE_PLAN,
            session_build_retries=2,
        ).run(verify_identity=True)
        entry = hostile_mix_entry(family, spec, HOSTILE_SMOKE_PLAN, result)
        assert entry["isolated"]
        document = service_bench_document(
            spec,
            result,
            commit="abc",
            timestamp="t",
            fault_plan=HOSTILE_SMOKE_PLAN,
            hostile_mix=[entry],
        )
        assert validate_service_bench(document) is None
        assert document["schema_version"] == 5
        assert document["fault_plan"]["name"] == "hostile-smoke"
