"""Tests of the unified decoder API: registry, sessions and batch decoding."""

from __future__ import annotations

import pytest

from repro.api import (
    BatchOutcome,
    DecodeOutcome,
    Decoder,
    DecoderConfig,
    DecoderSession,
    MicroBlossomConfig,
    ParityBlossomConfig,
    ReferenceConfig,
    UnionFindConfig,
    UnknownDecoderError,
    available_decoders,
    decode_batch,
    decoder_spec,
    get_decoder,
    register_decoder,
    unregister_decoder,
)
from repro.core import MicroBlossomDecoder
from repro.core.dual import DEFAULT_DUAL_SCALE
from repro.core.interface import IntegralityError
from repro.evaluation import estimate_logical_error_rate
from repro.graphs import SyndromeSampler
from repro.matching import ReferenceDecoder
from repro.parity import ParityBlossomDecoder
from repro.unionfind import UnionFindDecoder

ALL_NAMES = (
    "micro-blossom",
    "micro-blossom-batch",
    "parity-blossom",
    "reference",
    "union-find",
)


def _sample_syndromes(graph, count, seed=11):
    sampler = SyndromeSampler(graph, seed=seed)
    return [sampler.sample() for _ in range(count)]


def _assert_same_outcome(graph, first, second):
    """Two outcomes describe the same decode (matching and correction)."""
    if first.result is None:
        assert second.result is None
    else:
        assert sorted(first.result.pairs) == sorted(second.result.pairs)
        assert first.result.weight == second.result.weight
    assert first.correction_edges(graph) == second.correction_edges(graph)
    assert first.defect_count == second.defect_count
    assert first.counters == second.counters


class TestRegistry:
    def test_available_decoders(self):
        names = available_decoders()
        for name in ALL_NAMES:
            assert name in names

    def test_unknown_name_raises_with_choices(self, surface_d3_circuit):
        with pytest.raises(UnknownDecoderError) as excinfo:
            get_decoder("no-such-decoder", surface_d3_circuit)
        message = str(excinfo.value)
        assert "no-such-decoder" in message
        assert "micro-blossom" in message
        assert isinstance(excinfo.value, KeyError)

    def test_get_decoder_returns_expected_classes(self, surface_d3_circuit):
        graph = surface_d3_circuit
        assert isinstance(get_decoder("micro-blossom", graph), MicroBlossomDecoder)
        assert isinstance(get_decoder("parity-blossom", graph), ParityBlossomDecoder)
        assert isinstance(get_decoder("union-find", graph), UnionFindDecoder)
        assert isinstance(get_decoder("reference", graph), ReferenceDecoder)

    def test_micro_blossom_batch_defaults_to_batch_mode(self, surface_d3_circuit):
        stream = get_decoder("micro-blossom", surface_d3_circuit)
        batch = get_decoder("micro-blossom-batch", surface_d3_circuit)
        assert stream.stream is True
        assert batch.stream is False

    def test_config_round_trip(self, surface_d3_circuit):
        config = MicroBlossomConfig(enable_prematching=False, stream=False, scale=4)
        decoder = get_decoder("micro-blossom", surface_d3_circuit, config)
        assert decoder.enable_prematching is False
        assert decoder.stream is False
        assert decoder.scale == 4
        assert config.to_kwargs() == {
            "enable_prematching": False,
            "stream": False,
            "scale": 4,
        }
        assert config.replace(stream=True).stream is True

    def test_config_default_scale_matches_core(self):
        assert MicroBlossomConfig().scale == DEFAULT_DUAL_SCALE
        assert ParityBlossomConfig().scale == DEFAULT_DUAL_SCALE

    def test_wrong_config_type_rejected(self, surface_d3_circuit):
        with pytest.raises(TypeError):
            get_decoder("micro-blossom", surface_d3_circuit, UnionFindConfig())

    def test_register_and_unregister_custom_decoder(self, surface_d3_circuit):
        def build(graph, config):
            return ReferenceDecoder(graph)

        try:
            register_decoder("custom-reference", build, ReferenceConfig)
            assert "custom-reference" in available_decoders()
            decoder = get_decoder("custom-reference", surface_d3_circuit)
            assert isinstance(decoder, ReferenceDecoder)
            with pytest.raises(ValueError):
                register_decoder("custom-reference", build, ReferenceConfig)
            register_decoder(
                "custom-reference", build, ReferenceConfig, overwrite=True
            )
        finally:
            unregister_decoder("custom-reference")
        assert "custom-reference" not in available_decoders()

    def test_spec_descriptions(self):
        for name in ALL_NAMES:
            assert decoder_spec(name).description


class TestProtocol:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_backends_satisfy_protocol(self, name, surface_d3_circuit):
        decoder = get_decoder(name, surface_d3_circuit)
        assert isinstance(decoder, Decoder)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_uniform_surface(self, name, surface_d3_circuit):
        graph = surface_d3_circuit
        decoder = get_decoder(name, graph)
        for syndrome in _sample_syndromes(graph, 4, seed=3):
            result = decoder.decode(syndrome)
            result.validate_perfect(syndrome.defects)
            correction = decoder.decode_to_correction(syndrome)
            assert isinstance(correction, set)
            outcome = decoder.decode_detailed(syndrome)
            assert isinstance(outcome, DecodeOutcome)
            assert outcome.defect_count == syndrome.defect_count
            assert outcome.correction_edges(graph) == correction


class TestDecoderSession:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_session_matches_fresh_decoders(self, name, surface_d3_circuit):
        graph = surface_d3_circuit
        syndromes = _sample_syndromes(graph, 6)
        session = DecoderSession(graph, name)
        for syndrome in syndromes:
            from_session = session.decode_detailed(syndrome)
            from_fresh = get_decoder(name, graph).decode_detailed(syndrome)
            _assert_same_outcome(graph, from_session, from_fresh)
        assert session.shots == len(syndromes)

    def test_session_reset_restores_fresh_state(self, surface_d3_circuit):
        graph = surface_d3_circuit
        syndromes = _sample_syndromes(graph, 5, seed=21)
        session = DecoderSession(graph, "micro-blossom")
        first_pass = [session.decode_detailed(s) for s in syndromes]
        session.reset()
        assert session.shots == 0
        assert not session.total_counters
        second_pass = [session.decode_detailed(s) for s in syndromes]
        for first, second in zip(first_pass, second_pass):
            _assert_same_outcome(graph, first, second)

    def test_session_aggregates_counters(self, surface_d3_circuit):
        graph = surface_d3_circuit
        syndromes = _sample_syndromes(graph, 4, seed=8)
        session = DecoderSession(graph, "parity-blossom")
        outcomes = [session.decode_detailed(s) for s in syndromes]
        for key in ("instr_reset", "obstacle_queries"):
            assert session.total_counters[key] == sum(
                outcome.counters[key] for outcome in outcomes
            )

    def test_session_rejects_unknown_name(self, surface_d3_circuit):
        with pytest.raises(UnknownDecoderError):
            DecoderSession(surface_d3_circuit, "nope")

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_session_decode_returns_matching(self, name, surface_d3_circuit):
        """Regression: correction-only backends must still yield a matching."""
        graph = surface_d3_circuit
        syndrome = next(
            s for s in _sample_syndromes(graph, 30, seed=14) if s.defects
        )
        session = DecoderSession(graph, name)
        result = session.decode(syndrome)
        assert result is not None
        result.validate_perfect(syndrome.defects)


class TestScaleRetries:
    def test_retry_scale_does_not_leak_into_next_decode(
        self, surface_d3_circuit, monkeypatch
    ):
        graph = surface_d3_circuit
        syndrome = next(
            s for s in _sample_syndromes(graph, 20, seed=4) if s.defects
        )
        decoder = MicroBlossomDecoder(graph, stream=False)
        base_scale = decoder.scale
        original = MicroBlossomDecoder._decode_once
        seen_scales = []
        state = {"fail_next": True}

        def wrapped(self, syn, scale):
            seen_scales.append(scale)
            if state["fail_next"]:
                state["fail_next"] = False
                raise IntegralityError("forced for the test")
            return original(self, syn, scale)

        monkeypatch.setattr(MicroBlossomDecoder, "_decode_once", wrapped)
        outcome = decoder.decode_detailed(syndrome)
        assert outcome.scale_retries == 1
        assert seen_scales == [base_scale, base_scale * 2]
        again = decoder.decode_detailed(syndrome)
        assert again.scale_retries == 0
        assert seen_scales[-1] == base_scale
        assert decoder.scale == base_scale


class TestBatchDecoding:
    @pytest.mark.parametrize("name", ("micro-blossom", "union-find"))
    def test_batch_equals_sequential(self, name, surface_d3_circuit):
        graph = surface_d3_circuit
        syndromes = _sample_syndromes(graph, 6, seed=13)
        decoder = get_decoder(name, graph)
        sequential = [decoder.decode_detailed(s) for s in syndromes]
        batch = decode_batch(graph, name, syndromes)
        assert batch.num_shots == len(syndromes)
        for expected, actual in zip(sequential, batch.outcomes):
            _assert_same_outcome(graph, expected, actual)

    def test_batch_with_workers_equals_sequential(self, surface_d3_circuit):
        graph = surface_d3_circuit
        syndromes = _sample_syndromes(graph, 8, seed=17)
        single = decode_batch(graph, "micro-blossom", syndromes, workers=1)
        parallel = decode_batch(graph, "micro-blossom", syndromes, workers=2)
        assert parallel.num_shots == single.num_shots
        for expected, actual in zip(single.outcomes, parallel.outcomes):
            _assert_same_outcome(graph, expected, actual)
        assert parallel.counters == single.counters

    def test_batch_outcome_aggregates(self, surface_d3_circuit):
        graph = surface_d3_circuit
        syndromes = _sample_syndromes(graph, 5, seed=19)
        batch = decode_batch(graph, "micro-blossom", syndromes)
        assert batch.total_defects == sum(s.defect_count for s in syndromes)
        assert batch.weights == [o.weight for o in batch.outcomes]
        for key, value in batch.counters.items():
            assert value == sum(o.counters[key] for o in batch.outcomes)
        # Stream-mode outcomes feed their post-final-round counters to the
        # latency model.
        per_shot = batch.latency_counters()
        assert per_shot == [o.post_final_round_counters for o in batch.outcomes]

    def test_session_decode_batch(self, surface_d3_circuit):
        graph = surface_d3_circuit
        syndromes = _sample_syndromes(graph, 4, seed=23)
        session = DecoderSession(graph, "parity-blossom")
        batch = session.decode_batch(syndromes)
        assert isinstance(batch, BatchOutcome)
        assert session.shots == len(syndromes)
        fresh = [get_decoder("parity-blossom", graph).decode_detailed(s) for s in syndromes]
        for expected, actual in zip(fresh, batch.outcomes):
            _assert_same_outcome(graph, expected, actual)

    def test_empty_batch(self, surface_d3_circuit):
        batch = decode_batch(surface_d3_circuit, "micro-blossom", [])
        assert batch.num_shots == 0
        assert not batch.counters

    def test_invalid_workers_rejected(self, surface_d3_circuit):
        with pytest.raises(ValueError):
            decode_batch(surface_d3_circuit, "micro-blossom", [], workers=0)


class TestMonteCarloIntegration:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_estimate_accepts_registry_names(self, name, surface_d3_circuit):
        estimate = estimate_logical_error_rate(surface_d3_circuit, name, 30, seed=2)
        assert estimate.samples == 30
        assert 0 <= estimate.errors <= 30

    def test_parallel_estimate_matches_sequential(self, surface_d3_circuit):
        graph = surface_d3_circuit
        sequential = estimate_logical_error_rate(graph, "union-find", 40, seed=5)
        parallel = estimate_logical_error_rate(
            graph, "union-find", 40, seed=5, workers=2
        )
        assert sequential.errors == parallel.errors

    def test_parallel_estimate_requires_name(self, surface_d3_circuit):
        decoder = get_decoder("union-find", surface_d3_circuit)
        with pytest.raises(ValueError):
            estimate_logical_error_rate(
                surface_d3_circuit, decoder, 10, seed=5, workers=2
            )


class TestOutcomeConvergence:
    def test_outcomes_share_base_class(self, surface_d3_circuit):
        graph = surface_d3_circuit
        syndrome = next(
            s for s in _sample_syndromes(graph, 20, seed=6) if s.defects
        )
        for name in ALL_NAMES:
            outcome = get_decoder(name, graph).decode_detailed(syndrome)
            assert isinstance(outcome, DecodeOutcome)

    def test_union_find_outcome_has_no_matching(self, surface_d3_circuit):
        graph = surface_d3_circuit
        syndrome = next(
            s for s in _sample_syndromes(graph, 20, seed=6) if s.defects
        )
        outcome = get_decoder("union-find", graph).decode_detailed(syndrome)
        assert outcome.result is None
        assert not outcome.is_exact
        assert outcome.correction_edges(graph) == outcome.correction

    def test_union_find_decode_pairs_all_defects(self, surface_d3_circuit):
        graph = surface_d3_circuit
        decoder = get_decoder("union-find", graph)
        for syndrome in _sample_syndromes(graph, 10, seed=9):
            result = decoder.decode(syndrome)
            result.validate_perfect(syndrome.defects)

    def test_outcome_without_payload_rejects_correction(self):
        with pytest.raises(ValueError):
            DecodeOutcome().correction_edges(None)


def test_configs_are_frozen():
    config = MicroBlossomConfig()
    with pytest.raises(Exception):
        config.stream = False
    assert isinstance(config, DecoderConfig)
