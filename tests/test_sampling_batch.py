"""Property tests: vectorized ``sample_batch`` is bit-identical to ``sample``.

The sharded Monte-Carlo engine leans on ``SyndromeSampler.sample_batch``
consuming the exact same RNG stream as sequential ``sample()`` calls, across
every noise family and measurement-round count, so the equality is pinned
here property-style over a grid of graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    code_capacity_noise,
    phenomenological_noise,
    repetition_code_decoding_graph,
    surface_code_decoding_graph,
)

GRAPHS = {
    "code_capacity_d3": lambda: surface_code_decoding_graph(
        3, code_capacity_noise(0.08)
    ),
    "code_capacity_d5": lambda: surface_code_decoding_graph(
        5, code_capacity_noise(0.03)
    ),
    "phenomenological_d3_r2": lambda: surface_code_decoding_graph(
        3, phenomenological_noise(0.04), rounds=2
    ),
    "phenomenological_d3_r5": lambda: surface_code_decoding_graph(
        3, phenomenological_noise(0.02), rounds=5
    ),
    "circuit_level_d3": lambda: surface_code_decoding_graph(
        3, circuit_level_noise(0.02)
    ),
    "circuit_level_d5_r3": lambda: surface_code_decoding_graph(
        5, circuit_level_noise(0.005), rounds=3
    ),
    "repetition_d5_pheno": lambda: repetition_code_decoding_graph(
        5, phenomenological_noise(0.05)
    ),
}


def _assert_same_shots(first, second):
    assert [s.defects for s in first] == [s.defects for s in second]
    assert [s.error_edges for s in first] == [s.error_edges for s in second]
    assert [s.logical_flip for s in first] == [s.logical_flip for s in second]


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("count", [1, 2, 17])
@pytest.mark.parametrize("seed", [0, 1234])
def test_batch_equals_sequential(graph_name, count, seed):
    graph = GRAPHS[graph_name]()
    scalar_sampler = SyndromeSampler(graph, seed=seed)
    sequential = [scalar_sampler.sample() for _ in range(count)]
    # a fresh sampler with the same seed must reproduce the identical stream
    batch = SyndromeSampler(graph, seed=seed).sample_batch(count)
    _assert_same_shots(sequential, batch)
    assert sequential == batch  # full dataclass equality, field by field


@pytest.mark.parametrize("graph_name", ["circuit_level_d3", "code_capacity_d5"])
def test_batch_leaves_rng_in_scalar_state(graph_name):
    graph = GRAPHS[graph_name]()
    scalar = SyndromeSampler(graph, seed=7)
    batch = SyndromeSampler(graph, seed=7)
    for _ in range(9):
        scalar.sample()
    batch.sample_batch(9)
    # the streams stay aligned: mixing scalar and batch draws is allowed
    assert scalar.sample() == batch.sample()
    _assert_same_shots(
        [scalar.sample() for _ in range(4)], batch.sample_batch(4)
    )


def test_batch_is_chunked_transparently(monkeypatch):
    graph = GRAPHS["circuit_level_d3"]()
    monkeypatch.setattr(SyndromeSampler, "_CHUNK_WORDS", 64)
    chunked_sampler = SyndromeSampler(graph, seed=3)
    assert 64 // chunked_sampler._words_per_shot < 25  # really multiple chunks
    chunked = chunked_sampler.sample_batch(25)
    monkeypatch.undo()
    _assert_same_shots(SyndromeSampler(graph, seed=3).sample_batch(25), chunked)


def test_empty_batch_consumes_no_randomness():
    graph = GRAPHS["code_capacity_d3"]()
    sampler = SyndromeSampler(graph, seed=5)
    assert sampler.sample_batch(0) == []
    assert sampler.sample() == SyndromeSampler(graph, seed=5).sample()


def test_negative_count_rejected():
    graph = GRAPHS["code_capacity_d3"]()
    with pytest.raises(ValueError):
        SyndromeSampler(graph, seed=0).sample_batch(-1)


def test_seed_sequence_and_generator_seeds():
    graph = GRAPHS["circuit_level_d3"]()
    sequence = np.random.SeedSequence([11, 4])
    first = SyndromeSampler(graph, seed=np.random.SeedSequence([11, 4])).sample_batch(6)
    second = SyndromeSampler(graph, seed=sequence).sample_batch(6)
    assert first == second
    generator = np.random.Generator(np.random.SFC64(np.random.SeedSequence([11, 4])))
    third = SyndromeSampler(graph, seed=generator).sample_batch(6)
    assert first == third


def test_batch_syndromes_behave_like_scalar_ones():
    """Batch-built syndromes are full ``Syndrome`` instances (hash, repr, ...)."""
    graph = GRAPHS["circuit_level_d3"]()
    shot = SyndromeSampler(graph, seed=2).sample_batch(1)[0]
    assert isinstance(shot.defects, tuple)
    assert isinstance(shot.error_edges, tuple)
    assert isinstance(shot.logical_flip, bool)
    assert hash(shot) == hash(SyndromeSampler(graph, seed=2).sample())
    assert "Syndrome" in repr(shot)
    with pytest.raises(AttributeError):  # still frozen
        shot.defects = ()


def test_batch_flip_statistics_match_error_model():
    graph = GRAPHS["code_capacity_d5"]()
    sampler = SyndromeSampler(graph, seed=99)
    shots = sampler.sample_batch(4000)
    mean_flips = sum(len(s.error_edges) for s in shots) / len(shots)
    expected = sum(edge.probability for edge in graph.edges)
    assert mean_flips == pytest.approx(expected, rel=0.1)
