"""Property tests: vectorized ``sample_batch`` is bit-identical to ``sample``.

The sharded Monte-Carlo engine leans on ``SyndromeSampler.sample_batch``
consuming the exact same RNG stream as sequential ``sample()`` calls, across
every noise family and measurement-round count, so the equality is pinned
here property-style over a grid of graphs.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    code_capacity_noise,
    correlated_burst_noise,
    erasure_noise,
    phenomenological_noise,
    repetition_code_decoding_graph,
    surface_code_decoding_graph,
    time_varying_noise,
)

GRAPHS = {
    "code_capacity_d3": lambda: surface_code_decoding_graph(
        3, code_capacity_noise(0.08)
    ),
    "code_capacity_d5": lambda: surface_code_decoding_graph(
        5, code_capacity_noise(0.03)
    ),
    "phenomenological_d3_r2": lambda: surface_code_decoding_graph(
        3, phenomenological_noise(0.04), rounds=2
    ),
    "phenomenological_d3_r5": lambda: surface_code_decoding_graph(
        3, phenomenological_noise(0.02), rounds=5
    ),
    "circuit_level_d3": lambda: surface_code_decoding_graph(
        3, circuit_level_noise(0.02)
    ),
    "circuit_level_d5_r3": lambda: surface_code_decoding_graph(
        5, circuit_level_noise(0.005), rounds=3
    ),
    "repetition_d5_pheno": lambda: repetition_code_decoding_graph(
        5, phenomenological_noise(0.05)
    ),
    "correlated_burst_d3": lambda: surface_code_decoding_graph(
        3, correlated_burst_noise(0.02)
    ),
    "correlated_burst_d3_r5": lambda: surface_code_decoding_graph(
        3, correlated_burst_noise(0.01, burst_multiplier=6.0), rounds=5
    ),
    "erasure_d3": lambda: surface_code_decoding_graph(3, erasure_noise(0.02)),
    "erasure_d5_r2": lambda: surface_code_decoding_graph(
        5, erasure_noise(0.01, erasure=0.05), rounds=2
    ),
    "time_varying_d3": lambda: surface_code_decoding_graph(
        3, time_varying_noise(0.02)
    ),
    # burst chain + heralded erasures at once: the full dynamic word layout
    "burst_erasure_d3": lambda: surface_code_decoding_graph(
        3, dataclasses.replace(correlated_burst_noise(0.01), erasure=0.03)
    ),
}


def _assert_same_shots(first, second):
    assert [s.defects for s in first] == [s.defects for s in second]
    assert [s.error_edges for s in first] == [s.error_edges for s in second]
    assert [s.logical_flip for s in first] == [s.logical_flip for s in second]
    assert [s.erasures for s in first] == [s.erasures for s in second]


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("count", [1, 2, 17])
@pytest.mark.parametrize("seed", [0, 1234])
def test_batch_equals_sequential(graph_name, count, seed):
    graph = GRAPHS[graph_name]()
    scalar_sampler = SyndromeSampler(graph, seed=seed)
    sequential = [scalar_sampler.sample() for _ in range(count)]
    # a fresh sampler with the same seed must reproduce the identical stream
    batch = SyndromeSampler(graph, seed=seed).sample_batch(count)
    _assert_same_shots(sequential, batch)
    assert sequential == batch  # full dataclass equality, field by field


@pytest.mark.parametrize(
    "graph_name", ["circuit_level_d3", "code_capacity_d5", "erasure_d3", "burst_erasure_d3"]
)
def test_batch_leaves_rng_in_scalar_state(graph_name):
    graph = GRAPHS[graph_name]()
    scalar = SyndromeSampler(graph, seed=7)
    batch = SyndromeSampler(graph, seed=7)
    for _ in range(9):
        scalar.sample()
    batch.sample_batch(9)
    # the streams stay aligned: mixing scalar and batch draws is allowed
    assert scalar.sample() == batch.sample()
    _assert_same_shots(
        [scalar.sample() for _ in range(4)], batch.sample_batch(4)
    )


@pytest.mark.parametrize("graph_name", ["circuit_level_d3", "burst_erasure_d3"])
def test_batch_is_chunked_transparently(graph_name, monkeypatch):
    graph = GRAPHS[graph_name]()
    monkeypatch.setattr(SyndromeSampler, "_CHUNK_WORDS", 64)
    chunked_sampler = SyndromeSampler(graph, seed=3)
    assert 64 // chunked_sampler._shot_words < 25  # really multiple chunks
    chunked = chunked_sampler.sample_batch(25)
    monkeypatch.undo()
    _assert_same_shots(SyndromeSampler(graph, seed=3).sample_batch(25), chunked)


def test_empty_batch_consumes_no_randomness():
    graph = GRAPHS["code_capacity_d3"]()
    sampler = SyndromeSampler(graph, seed=5)
    assert sampler.sample_batch(0) == []
    assert sampler.sample() == SyndromeSampler(graph, seed=5).sample()


def test_negative_count_rejected():
    graph = GRAPHS["code_capacity_d3"]()
    with pytest.raises(ValueError):
        SyndromeSampler(graph, seed=0).sample_batch(-1)


def test_seed_sequence_and_generator_seeds():
    graph = GRAPHS["circuit_level_d3"]()
    sequence = np.random.SeedSequence([11, 4])
    first = SyndromeSampler(graph, seed=np.random.SeedSequence([11, 4])).sample_batch(6)
    second = SyndromeSampler(graph, seed=sequence).sample_batch(6)
    assert first == second
    generator = np.random.Generator(np.random.SFC64(np.random.SeedSequence([11, 4])))
    third = SyndromeSampler(graph, seed=generator).sample_batch(6)
    assert first == third


def test_batch_syndromes_behave_like_scalar_ones():
    """Batch-built syndromes are full ``Syndrome`` instances (hash, repr, ...)."""
    graph = GRAPHS["circuit_level_d3"]()
    shot = SyndromeSampler(graph, seed=2).sample_batch(1)[0]
    assert isinstance(shot.defects, tuple)
    assert isinstance(shot.error_edges, tuple)
    assert isinstance(shot.logical_flip, bool)
    assert hash(shot) == hash(SyndromeSampler(graph, seed=2).sample())
    assert "Syndrome" in repr(shot)
    with pytest.raises(AttributeError):  # still frozen
        shot.defects = ()


def test_batch_flip_statistics_match_error_model():
    graph = GRAPHS["code_capacity_d5"]()
    sampler = SyndromeSampler(graph, seed=99)
    shots = sampler.sample_batch(4000)
    mean_flips = sum(len(s.error_edges) for s in shots) / len(shots)
    expected = sum(edge.probability for edge in graph.edges)
    assert mean_flips == pytest.approx(expected, rel=0.1)


def test_static_families_carry_no_erasures():
    shots = SyndromeSampler(GRAPHS["circuit_level_d3"](), seed=4).sample_batch(16)
    assert all(s.erasures == () for s in shots)


def test_erasure_statistics_match_heralding_rate():
    graph = GRAPHS["erasure_d3"]()
    model = graph.noise_model
    shots = SyndromeSampler(graph, seed=13).sample_batch(3000)
    mean_erased = sum(len(s.erasures) for s in shots) / len(shots)
    assert mean_erased == pytest.approx(graph.num_edges * model.erasure, rel=0.1)
    # erased edges flip with probability 1/2: flips should sit well above the
    # i.i.d. expectation of the same base probabilities
    base = sum(edge.probability for edge in graph.edges)
    mean_flips = sum(len(s.error_edges) for s in shots) / len(shots)
    assert mean_flips > base * 1.5


def test_burst_statistics_exceed_quiet_rate():
    """The Markov chain visits its boosted state often enough to show up."""
    graph = GRAPHS["correlated_burst_d3"]()
    quiet = surface_code_decoding_graph(
        3, dataclasses.replace(graph.noise_model, burst_entry=0.0)
    )
    burst_shots = SyndromeSampler(graph, seed=21).sample_batch(3000)
    quiet_shots = SyndromeSampler(quiet, seed=21).sample_batch(3000)
    burst_mean = sum(len(s.error_edges) for s in burst_shots) / len(burst_shots)
    quiet_mean = sum(len(s.error_edges) for s in quiet_shots) / len(quiet_shots)
    assert burst_mean > quiet_mean * 1.2


def test_time_varying_layers_follow_schedule():
    """Per-layer flip rates track the schedule's multipliers statistically."""
    graph = GRAPHS["time_varying_d3"]()
    schedule = graph.noise_model.schedule
    assert len(schedule) >= 2
    shots = SyndromeSampler(graph, seed=31).sample_batch(4000)
    spatial = [e for e in graph.edges if e.kind == "spatial"]
    by_layer = {}
    for edge in spatial:
        layer = max(graph.vertices[edge.u].layer, graph.vertices[edge.v].layer)
        by_layer.setdefault(layer, []).append(edge.index)
    counts = {layer: 0 for layer in by_layer}
    for shot in shots:
        flipped = set(shot.error_edges)
        for layer, indices in by_layer.items():
            counts[layer] += sum(1 for i in indices if i in flipped)
    rates = {
        layer: counts[layer] / (len(shots) * len(by_layer[layer]))
        for layer in by_layer
    }
    for layer, rate in rates.items():
        expected = graph.noise_model.spatial * graph.noise_model.round_multiplier(layer)
        assert rate == pytest.approx(expected, rel=0.2), layer
