"""Tests of the sharded Monte-Carlo engine and its determinism contract."""

from __future__ import annotations

import pytest

from repro.api import decode_batch
from repro.evaluation import (
    EngineResult,
    LatencyHistogram,
    MonteCarloEngine,
    estimate_logical_error_rate,
    modelled_latency_fn,
)
from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    surface_code_decoding_graph,
)
from repro.matching import ReferenceDecoder


@pytest.fixture(scope="module")
def noisy_d3():
    return surface_code_decoding_graph(3, circuit_level_noise(0.04))


def _engine_fingerprint(result: EngineResult) -> tuple:
    return (
        result.shots,
        result.errors,
        result.stopped_early,
        [(s.index, s.shots, s.errors, s.decoded_shots) for s in result.shards],
        sorted(result.counters.items()),
        result.histogram.counts if result.histogram else None,
        result.histogram.sum_seconds if result.histogram else None,
    )


class TestDeterminism:
    def test_workers_do_not_change_the_result(self, noisy_d3):
        """Satellite regression: identical output for workers=1 vs workers=4."""
        results = []
        for workers in (1, 4):
            engine = MonteCarloEngine(
                noisy_d3,
                "micro-blossom-batch",
                shard_size=32,
                workers=workers,
                latency_fn=modelled_latency_fn("micro-blossom-batch", noisy_d3),
            )
            results.append(engine.run(160, seed=5))
        assert _engine_fingerprint(results[0]) == _engine_fingerprint(results[1])

    def test_decode_batch_workers_do_not_change_outcomes(self, noisy_d3):
        syndromes = [
            s for s in SyndromeSampler(noisy_d3, seed=8).sample_batch(60) if s.defects
        ]
        sequential = decode_batch(noisy_d3, "parity-blossom", syndromes, workers=1)
        parallel = decode_batch(noisy_d3, "parity-blossom", syndromes, workers=4)
        assert sequential.weights == parallel.weights
        assert sequential.counters == parallel.counters
        assert [o.correction_edges(noisy_d3) for o in sequential.outcomes] == [
            o.correction_edges(noisy_d3) for o in parallel.outcomes
        ]

    def test_same_seed_same_result_across_engines(self, noisy_d3):
        first = MonteCarloEngine(noisy_d3, "reference", shard_size=25).run(75, seed=3)
        second = MonteCarloEngine(noisy_d3, "reference", shard_size=25).run(75, seed=3)
        assert _engine_fingerprint(first) == _engine_fingerprint(second)

    def test_different_seeds_differ(self, noisy_d3):
        runs = [
            MonteCarloEngine(noisy_d3, "parity-blossom", shard_size=50).run(
                100, seed=s
            )
            for s in (1, 2)
        ]
        assert _engine_fingerprint(runs[0]) != _engine_fingerprint(runs[1])


class TestAccounting:
    def test_matches_manual_loop_over_shard_samplers(self, noisy_d3):
        """The engine is exactly 'sample each shard, decode, tally'."""
        engine = MonteCarloEngine(noisy_d3, "reference", shard_size=40)
        result = engine.run(100, seed=12)
        decoder = ReferenceDecoder(noisy_d3)
        errors = 0
        shots = 0
        for index, size in enumerate((40, 40, 20)):
            sampler = engine.shard_sampler(12, index)
            for syndrome in sampler.sample_batch(size):
                shots += 1
                if not syndrome.defects:
                    errors += syndrome.logical_flip
                    continue
                correction = decoder.decode_to_correction(syndrome)
                if noisy_d3.crosses_observable(correction) != syndrome.logical_flip:
                    errors += 1
        assert result.shots == shots == 100
        assert result.errors == errors

    def test_partial_final_shard(self, noisy_d3):
        result = MonteCarloEngine(noisy_d3, "reference", shard_size=64).run(150, seed=0)
        assert [s.shots for s in result.shards] == [64, 64, 22]
        assert result.shots == 150

    def test_estimate_logical_error_rate_rides_the_engine(self, noisy_d3):
        estimate = estimate_logical_error_rate(
            noisy_d3, "reference", 100, seed=12, shard_size=40
        )
        direct = MonteCarloEngine(noisy_d3, "reference", shard_size=40).run(
            100, seed=12
        )
        assert (estimate.samples, estimate.errors) == (direct.shots, direct.errors)

    def test_decoder_instance_supported_sequentially(self, noisy_d3):
        decoder = ReferenceDecoder(noisy_d3)
        by_instance = MonteCarloEngine(noisy_d3, decoder, shard_size=30).run(60, seed=4)
        by_name = MonteCarloEngine(noisy_d3, "reference", shard_size=30).run(60, seed=4)
        assert by_instance.errors == by_name.errors
        with pytest.raises(ValueError):
            MonteCarloEngine(noisy_d3, decoder, workers=2)

    def test_invalid_arguments(self, noisy_d3):
        with pytest.raises(ValueError):
            MonteCarloEngine(noisy_d3, "reference", shard_size=0)
        with pytest.raises(ValueError):
            MonteCarloEngine(noisy_d3, "reference", workers=0)
        engine = MonteCarloEngine(noisy_d3, "reference")
        with pytest.raises(ValueError):
            engine.run(0)
        with pytest.raises(ValueError):
            engine.run(10, target_standard_error=0.0)


class TestEarlyStopping:
    def test_stops_at_target_standard_error(self):
        graph = surface_code_decoding_graph(3, circuit_level_noise(0.06))
        engine = MonteCarloEngine(graph, "reference", shard_size=50)
        result = engine.run(2000, seed=1, target_standard_error=0.05)
        assert result.stopped_early
        assert result.shots < 2000
        assert result.shots % 50 == 0  # stops only at shard boundaries
        assert result.errors > 0
        assert result.standard_error <= 0.05

    def test_early_stop_is_worker_invariant(self):
        graph = surface_code_decoding_graph(3, circuit_level_noise(0.06))
        runs = [
            MonteCarloEngine(
                graph, "micro-blossom-batch", shard_size=25, workers=workers
            ).run(600, seed=9, target_standard_error=0.06)
            for workers in (1, 3)
        ]
        assert _engine_fingerprint(runs[0]) == _engine_fingerprint(runs[1])

    def test_no_stop_without_observed_errors(self):
        graph = surface_code_decoding_graph(3, circuit_level_noise(0.001))
        result = MonteCarloEngine(graph, "reference", shard_size=50).run(
            100, seed=0, target_standard_error=0.1
        )
        # at p = 0.1% and 100 shots no logical error occurs: the run must not
        # early-stop on the degenerate 0 +/- 0 estimate
        assert result.errors == 0
        assert not result.stopped_early
        assert result.shots == 100


class TestLatencyHistogram:
    def test_mean_and_extremes_are_exact(self):
        histogram = LatencyHistogram()
        histogram.extend([1e-6, 2e-6, 3e-6])
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2e-6)
        assert histogram.min_seconds == pytest.approx(1e-6)
        assert histogram.max_seconds == pytest.approx(3e-6)

    def test_percentile_bin_accuracy(self):
        histogram = LatencyHistogram()
        values = [i * 1e-7 + 1e-8 for i in range(1, 200)]
        histogram.extend(values)
        exact = sorted(values)[int(0.99 * len(values)) - 1]
        assert histogram.percentile(99) == pytest.approx(exact, rel=0.25)
        assert histogram.percentile(0) <= histogram.percentile(50)
        assert histogram.percentile(50) <= histogram.percentile(100)
        assert histogram.percentile(100) == pytest.approx(max(values))

    def test_merge_accumulates(self):
        first = LatencyHistogram()
        second = LatencyHistogram()
        first.extend([1e-6, 5e-6])
        second.extend([2e-6])
        first.merge(second)
        assert first.count == 3
        assert first.sum_seconds == pytest.approx(8e-6)
        assert sum(first.counts) == 3

    def test_merge_rejects_different_binning(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(num_bins=8))

    def test_out_of_range_values_clamp_into_edge_bins(self):
        histogram = LatencyHistogram(low=1e-6, high=1e-3, num_bins=10)
        histogram.add(1e-9)
        histogram.add(1.0)
        assert histogram.counts[0] == 1
        assert histogram.counts[-1] == 1
        assert histogram.max_seconds == 1.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            LatencyHistogram(low=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(num_bins=0)
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)


class TestModelledLatency:
    def test_each_modelled_decoder_produces_positive_latency(self, noisy_d3):
        syndrome = next(
            s
            for s in SyndromeSampler(noisy_d3, seed=1).sample_batch(50)
            if s.defects
        )
        for name in ("micro-blossom", "micro-blossom-batch", "parity-blossom", "union-find"):
            from repro.api import get_decoder

            latency_fn = modelled_latency_fn(name, noisy_d3)
            outcome = get_decoder(name, noisy_d3).decode_detailed(syndrome)
            assert latency_fn(outcome) > 0.0

    def test_reference_has_no_model(self, noisy_d3):
        with pytest.raises(ValueError):
            modelled_latency_fn("reference", noisy_d3)

    def test_requires_distance_metadata(self, noisy_d3):
        from repro.graphs import DecodingGraph

        bare = DecodingGraph(noisy_d3.vertices, noisy_d3.edges)
        with pytest.raises(ValueError):
            modelled_latency_fn("parity-blossom", bare)

    def test_histogram_covers_every_decoded_shot(self, noisy_d3):
        engine = MonteCarloEngine(
            noisy_d3,
            "parity-blossom",
            shard_size=40,
            latency_fn=modelled_latency_fn("parity-blossom", noisy_d3),
        )
        result = engine.run(120, seed=6)
        assert result.histogram.count == result.decoded_shots
        assert 0 < result.decoded_shots <= 120
        assert result.histogram.mean > 0.0
