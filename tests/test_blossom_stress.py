"""Stress tests targeting deep blossom structures (formation, nesting, expansion).

High physical error rates produce dense defect clusters that force the primal
module through its hardest code paths: blossoms made of blossoms, shrinking
blossoms that must be expanded, and augmentations through blossom interiors.
Each case is still verified against the independent reference decoder.
"""

from __future__ import annotations

import pytest

from repro.core import MicroBlossomDecoder
from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    code_capacity_noise,
    repetition_code_decoding_graph,
    surface_code_decoding_graph,
)
from repro.matching import ReferenceDecoder
from repro.parity import ParityBlossomDecoder


def decode_and_check(graph, syndrome, reference):
    optimal = reference.decode(syndrome).weight
    outcomes = {}
    for name, decoder in (
        ("micro", MicroBlossomDecoder(graph)),
        ("parity", ParityBlossomDecoder(graph)),
    ):
        outcome = decoder.decode_detailed(syndrome)
        assert outcome.result.weight == optimal, name
        outcomes[name] = outcome
    return outcomes


class TestDenseSyndromes:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_high_noise_surface_code(self, seed):
        graph = surface_code_decoding_graph(5, code_capacity_noise(0.25))
        sampler = SyndromeSampler(graph, seed=seed)
        reference = ReferenceDecoder(graph)
        blossoms = 0
        expansions = 0
        for _ in range(6):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            outcomes = decode_and_check(graph, syndrome, reference)
            blossoms += outcomes["micro"].counters.get("blossoms_formed", 0)
            expansions += outcomes["micro"].counters.get("blossoms_expanded", 0)
        assert blossoms >= 1, "high-noise decoding should exercise blossom formation"

    def test_blossoms_are_expanded_somewhere(self):
        """Across a batch of dense circuit-level syndromes at least one
        shrinking blossom must hit y = 0 and be expanded (obstacle 2a)."""
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.15))
        sampler = SyndromeSampler(graph, seed=28)
        reference = ReferenceDecoder(graph)
        decoder = ParityBlossomDecoder(graph)
        expansions = 0
        for _ in range(10):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            outcome = decoder.decode_detailed(syndrome)
            assert outcome.result.weight == reference.decode(syndrome).weight
            expansions += outcome.counters.get("blossoms_expanded", 0)
        assert expansions >= 1

    def test_half_filled_syndrome(self):
        """An adversarial syndrome: every other vertex of one layer is a defect."""
        graph = surface_code_decoding_graph(5, code_capacity_noise(0.05))
        reference = ReferenceDecoder(graph)
        real = [v for v in range(graph.num_vertices) if not graph.is_virtual(v)]
        from repro.graphs import Syndrome

        defects = tuple(real[::2])
        syndrome = Syndrome(defects=defects)
        decode_and_check(graph, syndrome, reference)

    def test_all_vertices_defective(self):
        """The densest possible syndrome still decodes exactly."""
        graph = repetition_code_decoding_graph(7, code_capacity_noise(0.1))
        reference = ReferenceDecoder(graph)
        from repro.graphs import Syndrome

        defects = tuple(
            v for v in range(graph.num_vertices) if not graph.is_virtual(v)
        )
        syndrome = Syndrome(defects=defects)
        decode_and_check(graph, syndrome, reference)

    def test_circuit_level_high_noise_stream(self):
        graph = surface_code_decoding_graph(3, circuit_level_noise(0.15))
        sampler = SyndromeSampler(graph, seed=13)
        reference = ReferenceDecoder(graph)
        stream = MicroBlossomDecoder(graph, stream=True)
        for _ in range(10):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            assert stream.decode(syndrome).weight == reference.decode(syndrome).weight
