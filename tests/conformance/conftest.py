"""Package-scoped fixtures: one seeded shot set per noise family."""

from __future__ import annotations

import pytest

from repro.graphs import SyndromeSampler

from .harness import NOISE_FAMILIES, SHOTS_PER_FAMILY, reference_optima


@pytest.fixture(scope="package", params=sorted(NOISE_FAMILIES))
def conformance_case(request):
    """One noise family: its graph, seeded syndromes and reference optima.

    Syndromes keep their sampled erasure flags; the optima are computed on
    each shot's erased-variant graph (see :func:`harness.reference_optima`),
    so exactness assertions compare like with like.
    """
    graph = NOISE_FAMILIES[request.param]()
    sampler = SyndromeSampler(graph, seed=20260729)
    syndromes = [s for s in sampler.sample_batch(SHOTS_PER_FAMILY * 2) if s.defects][
        :SHOTS_PER_FAMILY
    ]
    assert len(syndromes) >= 10, "noise too weak to exercise the decoders"
    optima = reference_optima(graph, syndromes)
    return request.param, graph, syndromes, optima
