"""Shared machinery of the conformance suite.

Heralded erasures reweight the decoding graph per shot (erased edges decode
at weight zero), so every weight comparison in the suite goes through
:func:`erased_variant` — the same ``DecodingGraph.with_erasures`` variant the
erasure-aware registry wrapper decodes on.  For erasure-free shots the
variant *is* the base graph, so the helpers collapse to the original
single-graph harness.
"""

from __future__ import annotations

from repro.graphs import (
    DecodingGraph,
    Syndrome,
    circuit_level_noise,
    code_capacity_noise,
    correlated_burst_noise,
    erasure_noise,
    phenomenological_noise,
    surface_code_decoding_graph,
    time_varying_noise,
)
from repro.matching import ReferenceDecoder

#: Decoders guaranteed to realise the exact minimum-weight perfect matching.
_EXACT_BASE = {"micro-blossom", "micro-blossom-batch", "parity-blossom", "reference"}
#: ``lut+X`` replays outcomes produced by ``X`` itself, so it inherits (and
#: must preserve) the exactness of whatever it wraps.
EXACT_DECODERS = _EXACT_BASE | {f"lut+{name}" for name in _EXACT_BASE}

#: Every backend the LUT pre-decoder can wrap (the non-lut registry names).
LUT_BASES = (
    "micro-blossom",
    "micro-blossom-batch",
    "parity-blossom",
    "reference",
    "union-find",
)

#: Graph builder per noise family — all six families the sampler supports.
NOISE_FAMILIES = {
    "code_capacity": lambda: surface_code_decoding_graph(5, code_capacity_noise(0.06)),
    "phenomenological": lambda: surface_code_decoding_graph(
        3, phenomenological_noise(0.04)
    ),
    "circuit_level": lambda: surface_code_decoding_graph(3, circuit_level_noise(0.03)),
    "correlated_burst": lambda: surface_code_decoding_graph(
        3, correlated_burst_noise(0.02)
    ),
    "erasure": lambda: surface_code_decoding_graph(3, erasure_noise(0.012)),
    "time_varying": lambda: surface_code_decoding_graph(3, time_varying_noise(0.02)),
}

SHOTS_PER_FAMILY = 25


def erased_variant(graph: DecodingGraph, syndrome: Syndrome) -> DecodingGraph:
    """The graph the shot decodes on: erased edges at weight zero."""
    if not syndrome.erasures:
        return graph
    return graph.with_erasures(syndrome.erasures)


def reference_optima(graph: DecodingGraph, syndromes) -> list[int]:
    """Reference MWPM optimum per shot, on each shot's erased variant."""
    references: dict[tuple[int, ...], ReferenceDecoder] = {}
    optima = []
    for syndrome in syndromes:
        reference = references.get(syndrome.erasures)
        if reference is None:
            reference = ReferenceDecoder(erased_variant(graph, syndrome))
            references[syndrome.erasures] = reference
        optima.append(reference.decode(Syndrome(defects=syndrome.defects)).weight)
    return optima


def stream_decode(session, graph, syndrome):
    """Push a syndrome round by round and return (outcome, push counters).

    Heralded erasures are announced at ``begin`` — they arrive with the
    leakage/loss flags before any defect round, which is the wire contract
    the service streaming path follows too.
    """
    session.begin(graph, rounds_hint=graph.num_layers, erasures=syndrome.erasures)
    pushes = [
        session.push_round(round_defects)
        for round_defects in syndrome.defects_by_layer(graph)
    ]
    return session.finalize(), pushes
