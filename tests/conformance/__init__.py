"""Cross-decoder differential conformance harness.

Every registered decoder is driven over seeded random syndromes across every
noise family the sampler supports — the three i.i.d. families plus the
correlated-burst, heralded-erasure and time-varying families — checking the
structural contract each backend must satisfy on every shot, streamed and
batch, through the ``lut+`` wrappers, the Monte-Carlo engine and the decode
service.  See ``harness.py`` for the shared shot machinery.
"""
