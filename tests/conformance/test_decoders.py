"""Batch conformance: every backend × every noise family.

Checks the structural contract every decoder must satisfy on every shot:

* the correction annihilates every defect (no residual syndrome);
* the defect pairing is a *perfect* matching (each defect matched exactly
  once);
* the matching weight realised on the shot's (erased-variant) decoding graph
  never beats the reference MWPM optimum — and equals it for the exact
  decoders;
* ``lut+X`` is bit-identical to ``X``, hit or miss, and bypasses the table
  on erasure-carrying shots.
"""

from __future__ import annotations

import pytest

from repro.api import available_decoders, get_decoder
from repro.graphs import (
    NOISE_FAMILY_NAMES,
    Syndrome,
    SyndromeSampler,
    residual_defects,
)
from repro.graphs.syndrome import matching_weight

from .harness import EXACT_DECODERS, LUT_BASES, NOISE_FAMILIES, erased_variant


def test_registry_has_all_backends():
    assert EXACT_DECODERS | {"union-find", "lut+union-find"} <= set(available_decoders())
    assert {f"lut+{name}" for name in LUT_BASES} <= set(available_decoders())


def test_harness_covers_every_noise_family():
    """The differential grid spans exactly the sampler's noise families."""
    assert tuple(sorted(NOISE_FAMILIES)) == tuple(sorted(NOISE_FAMILY_NAMES))


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_decoder_conformance(conformance_case, name):
    family, graph, syndromes, optima = conformance_case
    decoder = get_decoder(name, graph)
    for syndrome, optimum in zip(syndromes, optima):
        label = (
            f"{name} on {family} defects={syndrome.defects} "
            f"erasures={syndrome.erasures}"
        )

        # 1. the correction must annihilate the syndrome on every shot
        correction = decoder.decode_to_correction(syndrome)
        assert residual_defects(graph, syndrome, correction) == (), label

        # 2. the defect pairing must be a perfect matching on every shot
        result = decoder.decode(syndrome)
        result.validate_perfect(syndrome.defects)

        # 3. realised matching weight — on the shot's erased variant, where
        #    heralded edges cost nothing — never beats the reference optimum
        realised = matching_weight(erased_variant(graph, syndrome), result)
        assert realised >= optimum, label
        if name in EXACT_DECODERS:
            assert result.weight == optimum, label
            assert realised == optimum, label


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_decode_detailed_correction_matches_decode(conformance_case, name):
    """The protocol surfaces agree: outcome corrections annihilate defects."""
    family, graph, syndromes, _ = conformance_case
    decoder = get_decoder(name, graph)
    for syndrome in syndromes[:8]:
        outcome = decoder.decode_detailed(syndrome)
        correction = outcome.correction_edges(graph)
        assert residual_defects(graph, syndrome, correction) == (), (
            f"{name} on {family}"
        )
        assert outcome.defect_count == syndrome.defect_count


@pytest.mark.parametrize("base", LUT_BASES)
def test_lut_is_bit_identical_to_fallback(conformance_case, base):
    """``lut+X`` returns exactly what ``X`` would, hit or miss, on every shot.

    The LUT acceptance contract: the table replays outcomes the fallback
    itself produced at build time, and misses fall through unchanged — so the
    correction edge set, matching weight and logical-flip verdict must be
    identical shot for shot across every noise family.  Erasure-carrying
    shots are misses by construction (the table stores base-graph answers),
    so under the erasure family the table only ever serves erasure-free
    shots.
    """
    family, graph, syndromes, _ = conformance_case
    fallback = get_decoder(base, graph)
    lut = get_decoder(f"lut+{base}", graph)
    for syndrome in syndromes:
        label = f"lut+{base} on {family} defects={syndrome.defects}"
        expected = fallback.decode_detailed(syndrome)
        got = lut.decode_detailed(syndrome)
        assert got.correction_edges(graph) == expected.correction_edges(graph), label
        assert got.weight == expected.weight, label
        assert got.is_exact == expected.is_exact, label
        expected_flip = graph.crosses_observable(expected.correction_edges(graph))
        assert graph.crosses_observable(got.correction_edges(graph)) == expected_flip, label
        assert lut.decode(syndrome).weight == fallback.decode(syndrome).weight, label
    erased_shots = sum(1 for s in syndromes if s.erasures)
    if erased_shots:
        # decode_detailed + decode both ran: two table bypasses per shot
        assert lut.stats()["misses"] >= 2 * erased_shots, family
    if any(not s.erasures for s in syndromes):
        assert lut.stats()["hits"] > 0, f"lut+{base} on {family}: table never hit"

    # zero-defect: the dedicated fast path must serve the empty syndrome
    empty = Syndrome(defects=())
    assert lut.decode_detailed(empty).correction_edges(graph) == set()
    assert lut.decode(empty).weight == 0
    assert lut.stats()["zero_defect_hits"] > 0


def test_lut_counts_erased_shots_as_misses():
    """An erasure-carrying syndrome never hits the table, even when its
    defect set has a resident entry — the erased variant decodes differently."""
    graph = NOISE_FAMILIES["erasure"]()
    lut = get_decoder("lut+union-find", graph)
    erased = next(
        s
        for s in SyndromeSampler(graph, seed=20260730).sample_batch(80)
        if s.erasures and s.defects
    )
    bare = Syndrome(defects=erased.defects)
    lut.decode_detailed(bare)  # may hit or miss; warms any table entry
    before = lut.stats()["misses"]
    outcome = lut.decode_detailed(erased)
    assert lut.stats()["misses"] == before + 1
    assert outcome.counters["lut_miss"] == 1
