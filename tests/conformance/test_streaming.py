"""Streamed-vs-batch conformance: round-pushed decoding is exactness-preserving.

For each registered decoder, pushing rounds one at a time (with any heralded
erasures announced at ``begin``) yields a ``DecodeOutcome`` whose matching
weight and correction are identical to batch ``decode`` on the same syndrome,
across every noise family of the seeded grid.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.api import available_decoders, get_decoder
from repro.core import MicroBlossomDecoder
from repro.graphs import (
    Syndrome,
    SyndromeSampler,
    erasure_noise,
    phenomenological_noise,
    surface_code_decoding_graph,
)
from repro.stream import get_streaming_decoder

from .harness import LUT_BASES, stream_decode


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_streamed_equals_batch_for_every_backend(conformance_case, name):
    family, graph, syndromes, _ = conformance_case
    batch = get_decoder(name, graph)
    stream = get_streaming_decoder(name, graph)
    for syndrome in syndromes:
        label = (
            f"{name} on {family} defects={syndrome.defects} "
            f"erasures={syndrome.erasures}"
        )
        outcome, pushes = stream_decode(stream, graph, syndrome)
        assert all(isinstance(push, Counter) for push in pushes)
        batch_outcome = batch.decode_detailed(syndrome)
        assert outcome.correction_edges(graph) == batch_outcome.correction_edges(
            graph
        ), label
        if outcome.result is not None and batch_outcome.result is not None:
            assert outcome.result.weight == batch_outcome.result.weight, label
        assert outcome.defect_count == syndrome.defect_count


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_streaming_zero_defect_and_empty_round_fast_paths(name):
    """Empty rounds cost (nearly) nothing and zero-defect streams are exact."""
    graph = surface_code_decoding_graph(3, phenomenological_noise(0.04))
    stream = get_streaming_decoder(name, graph)
    batch = get_decoder(name, graph)

    # an all-empty stream decodes to the empty matching / empty correction
    empty = Syndrome(defects=())
    outcome, _ = stream_decode(stream, graph, empty)
    assert outcome.correction_edges(graph) == batch.decode_to_correction(empty)
    assert outcome.correction_edges(graph) == set()
    assert outcome.weight == 0

    # a syndrome whose defects sit in the last round only: the leading empty
    # rounds are pure loads, and the streamed outcome still matches batch
    last_layer = graph.num_layers - 1
    defect = next(
        v for v in graph.vertices_in_layer(last_layer) if not graph.is_virtual(v)
    )
    syndrome = Syndrome(defects=(defect,))
    outcome, pushes = stream_decode(stream, graph, syndrome)
    assert outcome.correction_edges(graph) == batch.decode_to_correction(syndrome)
    # every round before the defect's contributes no primal/dual work
    for push in pushes[:-1]:
        assert push.get("instr_find_obstacle", 0) == 0, name


@pytest.mark.parametrize("base", LUT_BASES)
def test_lut_streamed_equals_fallback_streamed(base):
    """Streamed shots bypass the table and stay identical to the fallback."""
    graph = surface_code_decoding_graph(3, phenomenological_noise(0.04))
    sampler = SyndromeSampler(graph, seed=20260806)
    syndromes = [s for s in sampler.sample_batch(20) if s.defects][:8]
    assert syndromes
    for syndrome in syndromes + [Syndrome(defects=())]:
        expected, _ = stream_decode(get_streaming_decoder(base, graph), graph, syndrome)
        got, _ = stream_decode(
            get_streaming_decoder(f"lut+{base}", graph), graph, syndrome
        )
        assert got.correction_edges(graph) == expected.correction_edges(graph), base
        assert got.weight == expected.weight, base


def test_raw_micro_blossom_rejects_streamed_erasures():
    """The bare core decoder streams on fixed edge weights: heralds at
    ``begin`` must be refused loudly, pointing at the registry wrapper."""
    graph = surface_code_decoding_graph(3, erasure_noise(0.01))
    decoder = MicroBlossomDecoder(graph)
    with pytest.raises(ValueError, match="erasure-aware"):
        decoder.begin(rounds_hint=graph.num_layers, erasures=(0, 2))
    # erasure-free begins stay available after the refusal
    decoder.begin(rounds_hint=graph.num_layers)
    decoder.finalize()
