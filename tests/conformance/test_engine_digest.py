"""Monte-Carlo engine digests: worker-count independence, pinned per family.

``EngineResult.digest()`` hashes every deterministic per-shard statistic
(shots, errors, decoded shots, defects, erased flags, operation counters) and
none of the timing.  The literals below are the cross-machine contract: a
change to the sampler's word layout, the erasure plumbing or the shard
aggregation shows up here as a digest flip before it shows up anywhere
subtle.
"""

from __future__ import annotations

import pytest

from repro.evaluation.engine import MonteCarloEngine
from repro.graphs import (
    correlated_burst_noise,
    erasure_noise,
    phenomenological_noise,
    surface_code_decoding_graph,
    time_varying_noise,
)

#: (noise model, pinned digest of 256 union-find shots at seed 11, shard 64).
_PINNED = {
    "correlated_burst": (correlated_burst_noise(0.015), "112b01bb896fc82e"),
    "erasure": (erasure_noise(0.01), "0da139ca6b48f87f"),
    "time_varying": (time_varying_noise(0.015), "cc9cc6d360ac3247"),
    "phenomenological": (phenomenological_noise(0.02), "9015cd4c545a6f1a"),
}


@pytest.mark.parametrize("family", sorted(_PINNED))
def test_digest_is_worker_count_independent_and_pinned(family):
    model, pinned = _PINNED[family]
    graph = surface_code_decoding_graph(3, model)
    digests = {}
    results = {}
    for workers in (1, 4):
        engine = MonteCarloEngine(graph, "union-find", shard_size=64, workers=workers)
        result = engine.run(256, seed=11)
        digests[workers] = result.digest()
        results[workers] = result
    assert digests[1] == digests[4], family
    assert digests[1] == pinned, family
    assert results[1].errors == results[4].errors
    assert results[1].erased == results[4].erased
    if family == "erasure":
        assert results[1].erased > 0
    else:
        assert results[1].erased == 0


def test_erased_tally_counts_heralded_flags():
    """``EngineResult.erased`` sums the per-shard heralded-flag counts."""
    graph = surface_code_decoding_graph(3, erasure_noise(0.01))
    engine = MonteCarloEngine(graph, "union-find", shard_size=64, workers=1)
    result = engine.run(128, seed=5)
    assert result.erased == sum(shard.erased for shard in result.shards) > 0
