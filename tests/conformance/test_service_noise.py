"""The net tier replays the new noise families: trace pins and wire rules.

``NOISE_FAMILY_SMOKE_TRACE`` mixes every non-i.i.d. family through the full
service path.  Its hash is pinned (as is ``SMOKE_TRACE``'s, which must never
move — the new trace fields serialize only at non-default values), its
expansion is replay-stable, erasure-carrying requests must ship as codec-1
JSON frames (the binary layout has no erasure slot), and the service-load
healthy digest is worker-count independent.
"""

from __future__ import annotations

import pytest

from repro.evaluation.service_load import ServiceLoadEngine
from repro.service.net.protocol import (
    _LENGTH,
    CODEC_BINARY,
    decode_payload,
    encode_frame,
)
from repro.service.request import DecodeRequest
from repro.service.trace import (
    NOISE_FAMILY_SMOKE_TRACE,
    SMOKE_TRACE,
    TraceSpec,
    generate_trace,
)


@pytest.fixture(scope="module")
def noise_trace():
    return generate_trace(NOISE_FAMILY_SMOKE_TRACE)


def test_trace_hashes_are_pinned():
    # the pre-existing CI trace must keep its hash across the noise upgrade
    assert SMOKE_TRACE.trace_hash() == "dc69d9b30cc305ea"
    assert NOISE_FAMILY_SMOKE_TRACE.trace_hash() == "8a64e0f1199a2844"


def test_trace_covers_every_new_family_and_replays_bit_identically(noise_trace):
    families = {s.noise for s in NOISE_FAMILY_SMOKE_TRACE.scenarios}
    assert {"correlated_burst", "erasure", "time_varying"} <= families
    erased = [tr for tr in noise_trace.requests if tr.request.syndrome.erasures]
    assert erased, "the erasure scenario produced no heralded request"
    # spec round-trips through its wire form and re-expands identically
    respec = TraceSpec.from_dict(NOISE_FAMILY_SMOKE_TRACE.to_dict())
    assert respec == NOISE_FAMILY_SMOKE_TRACE
    replay = generate_trace(respec)
    assert [tr.request for tr in replay.requests] == [
        tr.request for tr in noise_trace.requests
    ]


def _round_trip(request: DecodeRequest) -> tuple[bool, DecodeRequest]:
    """(took the binary layout?, decoded request) of one codec-2 frame."""
    frame = {"kind": "request", "id": int(request.request_id), "request": request.to_dict()}
    payload = encode_frame(frame, codec=CODEC_BINARY)[_LENGTH.size :]
    decoded = decode_payload(payload)
    return payload[:1] == b"\xb2", DecodeRequest.from_dict(decoded["request"])


def test_erasure_requests_fall_back_to_json_frames(noise_trace):
    erased = next(
        tr.request for tr in noise_trace.requests if tr.request.syndrome.erasures
    )
    plain = next(
        tr.request for tr in noise_trace.requests if not tr.request.syndrome.erasures
    )
    was_binary, round_tripped = _round_trip(erased)
    assert not was_binary, "binary layout cannot carry heralded erasures"
    assert round_tripped == erased  # erasures survive the JSON fallback

    was_binary, round_tripped = _round_trip(plain)
    assert was_binary, "erasure-free requests must keep the compact layout"
    assert round_tripped == plain

    # a mixed batch frame degrades to JSON as a whole and still round-trips
    batch = {
        "kind": "request-batch",
        "id": 1,
        "requests": [plain.to_dict(), erased.to_dict()],
    }
    payload = encode_frame(batch, codec=CODEC_BINARY)[_LENGTH.size :]
    assert payload[:1] != b"\xb2"
    decoded = [DecodeRequest.from_dict(r) for r in decode_payload(payload)["requests"]]
    assert decoded == [plain, erased]


def test_service_digest_is_worker_count_independent():
    """Full in-process service replay, identity-verified, digest pinned."""
    digests = {}
    for workers in (1, 2):
        result = ServiceLoadEngine(NOISE_FAMILY_SMOKE_TRACE, workers=workers).run(
            verify_identity=True
        )
        assert result.completed == NOISE_FAMILY_SMOKE_TRACE.requests
        digests[workers] = result.healthy_digest
    assert digests[1] == digests[2]
    assert digests[1] == "823bcfc2dd1438d6"
