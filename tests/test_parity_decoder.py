"""Tests of the Parity Blossom software baseline decoder."""

from __future__ import annotations

import pytest

from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    phenomenological_noise,
    surface_code_decoding_graph,
)
from repro.matching import ReferenceDecoder
from repro.parity import ParityBlossomDecoder, ParityDecodeOutcome


@pytest.fixture(scope="module")
def parity_setup():
    graph = surface_code_decoding_graph(5, circuit_level_noise(0.02))
    return graph, ParityBlossomDecoder(graph), ReferenceDecoder(graph)


class TestExactness:
    def test_matches_reference_weight(self, parity_setup):
        graph, decoder, reference = parity_setup
        sampler = SyndromeSampler(graph, seed=31)
        for _ in range(25):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            assert decoder.decode(syndrome).weight == reference.decode(syndrome).weight

    def test_perfect_matching(self, parity_setup):
        graph, decoder, _ = parity_setup
        sampler = SyndromeSampler(graph, seed=32)
        for _ in range(10):
            syndrome = sampler.sample()
            decoder.decode(syndrome).validate_perfect(syndrome.defects)

    def test_phenomenological_noise(self):
        graph = surface_code_decoding_graph(5, phenomenological_noise(0.03))
        decoder = ParityBlossomDecoder(graph)
        reference = ReferenceDecoder(graph)
        sampler = SyndromeSampler(graph, seed=33)
        for _ in range(10):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            assert decoder.decode(syndrome).weight == reference.decode(syndrome).weight


class TestCpuCostAccounting:
    def test_defect_reads_match_defect_count(self, parity_setup):
        graph, decoder, _ = parity_setup
        sampler = SyndromeSampler(graph, seed=34)
        syndrome = None
        for _ in range(30):
            candidate = sampler.sample()
            if candidate.defect_count >= 2:
                syndrome = candidate
                break
        assert syndrome is not None
        outcome = decoder.decode_detailed(syndrome)
        assert isinstance(outcome, ParityDecodeOutcome)
        assert outcome.counters["defect_reads"] == syndrome.defect_count
        assert outcome.defect_count == syndrome.defect_count

    def test_dual_work_positive_for_nonempty_syndrome(self, parity_setup):
        graph, decoder, _ = parity_setup
        sampler = SyndromeSampler(graph, seed=35)
        syndrome = None
        for _ in range(30):
            candidate = sampler.sample()
            if candidate.defect_count:
                syndrome = candidate
                break
        assert syndrome is not None
        outcome = decoder.decode_detailed(syndrome)
        assert outcome.dual_work > 0
        assert outcome.primal_work > 0

    def test_empty_syndrome_outcome(self, parity_setup):
        graph, decoder, _ = parity_setup
        from repro.graphs import Syndrome

        outcome = decoder.decode_detailed(Syndrome(defects=()))
        assert outcome.result.pairs == []
        assert outcome.weight == 0

    def test_equivalence_with_micro_blossom(self, parity_setup):
        """The paper states Micro Blossom is logically equivalent to Parity
        Blossom: both must find matchings of identical total weight."""
        from repro.core import MicroBlossomDecoder

        graph, decoder, _ = parity_setup
        micro = MicroBlossomDecoder(graph)
        sampler = SyndromeSampler(graph, seed=36)
        for _ in range(15):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            assert decoder.decode(syndrome).weight == micro.decode(syndrome).weight
