"""Tests for the rotated-surface-code decoding graph construction."""

from __future__ import annotations

import pytest

from repro.graphs import (
    NoiseModelError,
    SurfaceCodeLayout,
    circuit_level_noise,
    code_capacity_noise,
    phenomenological_noise,
    surface_code_decoding_graph,
)


class TestLayout:
    @pytest.mark.parametrize("distance", [3, 5, 7, 9])
    def test_vertex_counts(self, distance):
        layout = SurfaceCodeLayout(distance)
        assert layout.rows == distance - 1
        assert layout.cols == (distance + 1) // 2
        assert layout.real_vertices_per_layer == (distance - 1) * (distance + 1) // 2
        assert layout.virtual_vertices_per_layer == 2

    @pytest.mark.parametrize("distance", [2, 4, 1, -3])
    def test_invalid_distance_rejected(self, distance):
        with pytest.raises(ValueError):
            SurfaceCodeLayout(distance)


class TestGraphStructure:
    def test_code_capacity_is_two_dimensional(self):
        graph = surface_code_decoding_graph(5, code_capacity_noise(0.05))
        assert graph.num_layers == 1
        assert all(edge.kind != "temporal" for edge in graph.edges)
        assert all(edge.kind != "diagonal" for edge in graph.edges)

    def test_phenomenological_default_rounds_equals_distance(self):
        graph = surface_code_decoding_graph(5, phenomenological_noise(0.01))
        assert graph.num_layers == 5
        assert any(edge.kind == "temporal" for edge in graph.edges)
        assert all(edge.kind != "diagonal" for edge in graph.edges)

    def test_circuit_level_has_diagonal_edges(self):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.01))
        assert any(edge.kind == "diagonal" for edge in graph.edges)

    def test_explicit_rounds(self):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.01), rounds=3)
        assert graph.num_layers == 3

    def test_circuit_level_needs_two_rounds(self):
        with pytest.raises(NoiseModelError):
            surface_code_decoding_graph(5, circuit_level_noise(0.01), rounds=1)

    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_vertex_count_formula(self, distance):
        graph = surface_code_decoding_graph(distance, phenomenological_noise(0.01))
        per_layer = (distance - 1) * (distance + 1) // 2 + 2
        assert graph.num_vertices == per_layer * distance

    def test_vertex_count_scales_as_d_cubed(self):
        small = surface_code_decoding_graph(3, circuit_level_noise(0.01)).num_vertices
        large = surface_code_decoding_graph(9, circuit_level_noise(0.01)).num_vertices
        # d^3 scaling: the ratio should be close to (9/3)^3 = 27 up to the
        # additive boundary terms.
        assert 10 < large / small < 40

    def test_metadata_records_configuration(self):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.002))
        assert graph.metadata["code"] == "rotated_surface"
        assert graph.metadata["distance"] == 5
        assert graph.metadata["noise_model"] == "circuit_level"
        assert graph.metadata["physical_error_rate"] == 0.002

    def test_two_virtual_vertices_per_layer(self):
        graph = surface_code_decoding_graph(5, phenomenological_noise(0.01))
        per_layer = {}
        for vertex in graph.virtual_vertices:
            layer = graph.vertices[vertex].layer
            per_layer[layer] = per_layer.get(layer, 0) + 1
        assert all(count == 2 for count in per_layer.values())
        assert len(per_layer) == graph.num_layers


class TestCodeDistance:
    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_minimum_logical_chain_has_d_edges(self, distance):
        """The cheapest error chain connecting the two boundaries (a logical
        error) must contain exactly ``d`` edges."""
        graph = surface_code_decoding_graph(distance, code_capacity_noise(0.01))
        top, bottom = graph.virtual_vertices
        path = graph.shortest_path_edges(top, bottom)
        assert len(path) == distance

    def test_boundaries_not_directly_connected(self):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.01))
        for top in graph.virtual_vertices:
            for bottom in graph.virtual_vertices:
                if top != bottom:
                    assert graph.edge_between(top, bottom) is None

    def test_observable_edges_are_top_boundary_cut(self):
        graph = surface_code_decoding_graph(3, code_capacity_noise(0.01))
        for edge_index in graph.observable_edges:
            edge = graph.edges[edge_index]
            assert graph.is_virtual(edge.u) or graph.is_virtual(edge.v)

    def test_logical_chain_flips_observable_once(self):
        graph = surface_code_decoding_graph(3, code_capacity_noise(0.01))
        top, bottom = graph.virtual_vertices
        chain = graph.shortest_path_edges(top, bottom)
        assert graph.crosses_observable(chain)
