"""Tests for the repetition-code decoding graph construction."""

from __future__ import annotations

import pytest

from repro.graphs import (
    NoiseModelError,
    circuit_level_noise,
    code_capacity_noise,
    phenomenological_noise,
    repetition_code_decoding_graph,
)


class TestStructure:
    @pytest.mark.parametrize("distance", [3, 5, 9])
    def test_vertex_count(self, distance):
        graph = repetition_code_decoding_graph(distance, code_capacity_noise(0.05))
        # (d - 1) stabilizers plus two virtual end vertices, single layer.
        assert graph.num_vertices == distance + 1
        assert len(graph.virtual_vertices) == 2

    def test_three_dimensional_layers(self):
        graph = repetition_code_decoding_graph(5, phenomenological_noise(0.02))
        assert graph.num_layers == 5
        assert graph.num_vertices == 5 * (4 + 2)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            repetition_code_decoding_graph(2, code_capacity_noise(0.05))

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            repetition_code_decoding_graph(
                5, phenomenological_noise(0.02), rounds=0
            )

    def test_circuit_level_requires_two_rounds(self):
        with pytest.raises(NoiseModelError):
            repetition_code_decoding_graph(5, circuit_level_noise(0.02), rounds=1)

    def test_circuit_level_has_diagonals(self):
        graph = repetition_code_decoding_graph(5, circuit_level_noise(0.02))
        assert any(edge.kind == "diagonal" for edge in graph.edges)

    @pytest.mark.parametrize("distance", [3, 5, 7])
    def test_code_distance(self, distance):
        """A logical error requires flipping all d data qubits in one round."""
        graph = repetition_code_decoding_graph(distance, code_capacity_noise(0.05))
        left, right = graph.virtual_vertices
        path = graph.shortest_path_edges(left, right)
        assert len(path) == distance

    def test_observable_is_left_boundary(self):
        graph = repetition_code_decoding_graph(5, code_capacity_noise(0.05))
        assert len(graph.observable_edges) == 1
        (edge_index,) = graph.observable_edges
        edge = graph.edges[edge_index]
        assert graph.is_virtual(edge.u) or graph.is_virtual(edge.v)

    def test_metadata(self):
        graph = repetition_code_decoding_graph(7, phenomenological_noise(0.01))
        assert graph.metadata["code"] == "repetition"
        assert graph.metadata["distance"] == 7
        assert graph.metadata["rounds"] == 7
