"""Golden pins of the shared content-hashing layer (`repro.api.hashing`).

Every cache key in the repo flows through these primitives: sweep-store
lookups and per-point seeds, decode-service session keys, the LUT outcome
cache, trace fingerprints.  The pinned hex values below are the stability
contract — if any of them changes, every previously-written store file,
BENCH document and cache key silently stops matching.  A failure here means
the canonical serialization changed, which is a breaking format change, not
a refactor.
"""

from __future__ import annotations

import pytest

from repro.api import content_hash, stable_seed
from repro.api.hashing import canonical_json
from repro.lut import outcome_cache_key
from repro.service import SMOKE_TRACE, CodeSpec, SessionKey
from repro.sweeps import SMOKE_SPEC, ResultStore, SweepSpec, run_sweep


def test_canonical_json_is_sorted_and_minimal():
    assert canonical_json({"b": 1, "a": [True, None]}) == '{"a":[true,null],"b":1}'
    # tuples and lists canonicalize identically; key order never matters
    assert canonical_json({"a": (1, 2)}) == canonical_json({"a": [1, 2]})


def test_content_hash_golden_values():
    assert content_hash({"shots": 100, "seed": 0}) == "ef31070b2e8df604"
    assert content_hash({"a": [1, 2, {"b": None}], "c": "x"}) == "2d65dc6bc9212e8a"
    assert content_hash({"name": "ümlaut", "n": 3}) == "4d81b95bca3b31d7"
    assert len(content_hash({"x": 1}, digits=64)) == 64
    with pytest.raises(ValueError):
        content_hash({}, digits=0)


def test_stable_seed_golden_values():
    assert stable_seed(42, "sweep") == 3728225706365999517
    assert stable_seed(7, "d=3/decoder=union-find") == 7862741715517147707
    assert 0 <= stable_seed(0, "anything") < 2**63


def test_pinned_smoke_artifact_hashes():
    # CI's perf-trajectory jobs key their artifacts on these two.
    assert SMOKE_SPEC.spec_hash() == "dfde37026f2cac30"
    assert SMOKE_TRACE.trace_hash() == "dc69d9b30cc305ea"


def test_pinned_sweep_point_seed_and_store_fingerprint():
    """Seed derivation and the store's canonical fingerprint are byte-stable.

    The LUT subsystem added an *optional* ``lut`` field to point records;
    points without one (every pre-existing store) must keep serializing —
    and therefore fingerprinting — exactly as before.
    """
    spec = SweepSpec("pin", (3,), (0.02,), ("union-find",), shots=32, seed=5)
    assert spec.spec_hash() == "4c01752800a2715a"
    point = spec.expand()[0]
    assert point.seed == 2636481910731877621
    assert point.key == (
        "d=3/noise=circuit_level/p=0.02/decoder=union-find/shots=32/"
        "seed=2636481910731877621/shard=256/target_se=none/latency=0"
    )
    store = ResultStore(None)
    run_sweep(spec, store)
    assert store.fingerprint() == (
        "fb431e1ff502d61431811adceaba9d4029b1c413d9ddc124238284b86684bfbc"
    )


def test_pinned_session_and_outcome_cache_keys():
    key = SessionKey(CodeSpec(distance=3, physical_error_rate=0.02), "union-find")
    assert key.key() == (
        "d=3/noise=circuit_level/p=0.02/rounds=default/decoder=union-find/"
        "config=a0ef96980b367e30"
    )

    class _Syndrome:
        defects = (1, 4)
        erasures = ()

    # erasure-free keys are byte-identical to pre-erasure releases
    assert outcome_cache_key(key.key(), _Syndrome()) == content_hash(
        {"session": key.key(), "defects": [1, 4]}
    )

    class _ErasedSyndrome:
        defects = (1, 4)
        erasures = (7,)

    # heralded erasures join the key (same defects, different decode)
    assert outcome_cache_key(key.key(), _ErasedSyndrome()) == content_hash(
        {"session": key.key(), "defects": [1, 4], "erasures": [7]}
    )
