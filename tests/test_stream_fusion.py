"""Tests of round-wise fusion (stream decoding, paper §6)."""

from __future__ import annotations

import pytest

from repro.core import MicroBlossomDecoder, PrimalModule
from repro.core.accelerator import MicroBlossomAccelerator
from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    phenomenological_noise,
    surface_code_decoding_graph,
)
from repro.matching import ReferenceDecoder


class TestRoundWiseFusion:
    @pytest.mark.parametrize("rounds", [2, 4, 6])
    def test_stream_is_exact_for_any_number_of_rounds(self, rounds):
        graph = surface_code_decoding_graph(
            5, circuit_level_noise(0.02), rounds=rounds
        )
        reference = ReferenceDecoder(graph)
        stream = MicroBlossomDecoder(graph, stream=True)
        sampler = SyndromeSampler(graph, seed=rounds)
        checked = 0
        for _ in range(12):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            checked += 1
            assert stream.decode(syndrome).weight == reference.decode(syndrome).weight
        assert checked > 0

    def test_fusion_breaks_temporary_boundary_matches(self):
        """A defect matched to a not-yet-loaded round must be re-examined when
        that round arrives (paper §6.2: break matchings with the fusion
        boundary)."""
        from repro.graphs import NoiseModel

        # Measurement errors are more likely than data errors, so temporal
        # edges are cheaper than boundary edges and the first-round defect
        # matches the fusion boundary (the not-yet-loaded round above it).
        noise = NoiseModel(
            "phenomenological", spatial=0.01, temporal=0.08, diagonal=0.0, boundary=0.01
        )
        graph = surface_code_decoding_graph(3, noise)
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=False)
        primal = PrimalModule(graph, accelerator)
        # Choose two defects in different layers that are vertically adjacent,
        # so the earlier one first matches the fusion boundary and must later
        # be fused with the defect from the next round.
        temporal_edge = next(e for e in graph.edges if e.kind == "temporal")
        lower = temporal_edge.u
        upper = temporal_edge.v
        if graph.vertices[lower].layer > graph.vertices[upper].layer:
            lower, upper = upper, lower
        defects = [lower, upper]
        for layer in range(graph.num_layers):
            layer_vertices = set(graph.vertices_in_layer(layer))
            accelerator.load(
                [d for d in defects if d in layer_vertices], layers={layer}
            )
            primal.break_boundary_matches(
                {v for v in layer_vertices if not graph.is_virtual(v)}
            )
            primal.run()
        result = primal.collect_matching()
        result.validate_perfect(defects)
        assert primal.counters["fusion_breaks"] >= 1

    def test_stream_post_final_work_smaller_than_total(self):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.02))
        decoder = MicroBlossomDecoder(graph, stream=True)
        sampler = SyndromeSampler(graph, seed=9)
        observed = False
        for _ in range(25):
            syndrome = sampler.sample()
            early_layers_defects = [
                d
                for d in syndrome.defects
                if graph.vertices[d].layer < graph.num_layers - 1
            ]
            if len(early_layers_defects) < 2:
                continue
            outcome = decoder.decode_detailed(syndrome)
            total = outcome.counters["instr_find_obstacle"]
            after_final = outcome.post_final_round_counters.get(
                "instr_find_obstacle", 0
            )
            if after_final < total:
                observed = True
                break
        assert observed, "stream decoding never moved work ahead of the final round"

    def test_loading_same_layer_twice_is_idempotent(self):
        graph = surface_code_decoding_graph(3, phenomenological_noise(0.02))
        accelerator = MicroBlossomAccelerator(graph)
        defect = next(
            v
            for v in graph.vertices_in_layer(0)
            if not graph.is_virtual(v)
        )
        accelerator.load([defect], layers={0})
        accelerator.load([], layers={0})
        assert accelerator.is_defect[defect]

    def test_stream_equals_batch_on_multi_round_syndromes(self):
        graph = surface_code_decoding_graph(3, phenomenological_noise(0.05))
        sampler = SyndromeSampler(graph, seed=21)
        batch = MicroBlossomDecoder(graph, stream=False)
        stream = MicroBlossomDecoder(graph, stream=True)
        multi_round_checked = 0
        for _ in range(40):
            syndrome = sampler.sample()
            layers = {graph.vertices[d].layer for d in syndrome.defects}
            if len(layers) < 2:
                continue
            multi_round_checked += 1
            assert stream.decode(syndrome).weight == batch.decode(syndrome).weight
        assert multi_round_checked > 0
