"""Tier-1 wrapper around the documentation gate (``tools/check_docs.py``).

The ``docs`` CI job runs the tool directly; these tests run the same three
checks through pytest so a broken documentation example also fails the
ordinary test suite (and shows up in local `pytest` runs before push).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


class TestDocumentation:
    def test_markdown_python_blocks_execute(self):
        failures = check_docs.check_code_blocks()
        assert not failures, "\n".join(failures)

    def test_public_api_doctests_pass(self):
        failures = check_docs.check_doctests()
        assert not failures, "\n".join(failures)

    def test_intra_repo_links_resolve(self):
        failures = check_docs.check_links()
        assert not failures, "\n".join(failures)

    def test_every_doc_page_is_linked_from_the_index(self):
        index = (REPO_ROOT / "docs" / "index.md").read_text()
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            if page.name == "index.md":
                continue
            assert f"({page.name})" in index, f"docs/index.md misses {page.name}"

    def test_checker_covers_service_modules(self):
        """The doctest surface must include the whole service package."""
        covered = set(check_docs.DOCTEST_MODULES)
        for module in (REPO_ROOT / "src" / "repro" / "service").glob("*.py"):
            if module.stem == "__init__":
                continue
            assert f"repro.service.{module.stem}" in covered
