"""Tests of the Union-Find decoder baseline."""

from __future__ import annotations

from repro.graphs import (
    Syndrome,
    SyndromeSampler,
    circuit_level_noise,
    code_capacity_noise,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.matching import ReferenceDecoder
from repro.unionfind import UnionFindDecoder


class TestCorrectionValidity:
    def test_empty_syndrome_empty_correction(self, surface_d3_circuit):
        decoder = UnionFindDecoder(surface_d3_circuit)
        assert decoder.decode_to_correction(Syndrome(defects=())) == set()

    def test_correction_annihilates_defects(self, surface_d5_circuit):
        decoder = UnionFindDecoder(surface_d5_circuit)
        sampler = SyndromeSampler(surface_d5_circuit, seed=41)
        for _ in range(30):
            syndrome = sampler.sample()
            correction = decoder.decode_to_correction(syndrome)
            assert residual_defects(surface_d5_circuit, syndrome, correction) == ()

    def test_single_error_corrected_exactly(self, surface_d3_circuit):
        decoder = UnionFindDecoder(surface_d3_circuit)
        sampler = SyndromeSampler(surface_d3_circuit, seed=42)
        edge = next(
            e
            for e in surface_d3_circuit.edges
            if not surface_d3_circuit.is_virtual(e.u)
            and not surface_d3_circuit.is_virtual(e.v)
        )
        syndrome = sampler.syndrome_from_errors([edge.index])
        correction = decoder.decode_to_correction(syndrome)
        assert residual_defects(surface_d3_circuit, syndrome, correction) == ()
        # The correction must not flip the logical observable differently from
        # the single error itself.
        assert surface_d3_circuit.crosses_observable(correction) == syndrome.logical_flip

    def test_single_defect_next_to_boundary(self, surface_d3_circuit):
        decoder = UnionFindDecoder(surface_d3_circuit)
        sampler = SyndromeSampler(surface_d3_circuit, seed=43)
        boundary_edge = next(iter(surface_d3_circuit.observable_edges))
        syndrome = sampler.syndrome_from_errors([boundary_edge])
        correction = decoder.decode_to_correction(syndrome)
        assert residual_defects(surface_d3_circuit, syndrome, correction) == ()

    def test_outcome_statistics(self, surface_d5_circuit):
        decoder = UnionFindDecoder(surface_d5_circuit)
        sampler = SyndromeSampler(surface_d5_circuit, seed=44)
        syndrome = None
        for _ in range(30):
            candidate = sampler.sample()
            if candidate.defect_count >= 2:
                syndrome = candidate
                break
        assert syndrome is not None
        outcome = decoder.decode_detailed(syndrome)
        assert outcome.growth_rounds >= 1
        assert outcome.counters["edges_grown"] >= 1


class TestAccuracyRelativeToMWPM:
    def test_not_much_worse_than_mwpm_in_aggregate(self):
        """Union-Find approximates MWPM: it may lose accuracy but must stay
        within a small factor at moderate noise (the paper quotes ~1.7x for
        Helios-class decoders and ~5x for plain UF at larger distances)."""
        graph = surface_code_decoding_graph(3, code_capacity_noise(0.08))
        sampler = SyndromeSampler(graph, seed=45)
        union_find = UnionFindDecoder(graph)
        reference = ReferenceDecoder(graph)
        uf_errors = 0
        mwpm_errors = 0
        samples = 300
        for _ in range(samples):
            syndrome = sampler.sample()
            correction = union_find.decode_to_correction(syndrome)
            if graph.crosses_observable(correction) != syndrome.logical_flip:
                uf_errors += 1
            from repro.graphs import is_logical_error

            if syndrome.defects:
                if is_logical_error(graph, syndrome, reference.decode(syndrome)):
                    mwpm_errors += 1
            elif syndrome.logical_flip:
                mwpm_errors += 1
        assert mwpm_errors > 0, "noise level too low to compare decoders"
        assert uf_errors >= mwpm_errors * 0.5
        assert uf_errors <= mwpm_errors * 6 + 10

    def test_never_fails_on_weight_one_errors(self):
        """Any single error must be decoded without a logical error (this is
        what 'distance d >= 3' means for a decoder)."""
        graph = surface_code_decoding_graph(3, circuit_level_noise(0.01))
        decoder = UnionFindDecoder(graph)
        sampler = SyndromeSampler(graph, seed=46)
        for edge in graph.edges:
            syndrome = sampler.syndrome_from_errors([edge.index])
            correction = decoder.decode_to_correction(syndrome)
            assert residual_defects(graph, syndrome, correction) == ()
            assert (
                graph.crosses_observable(correction) == syndrome.logical_flip
            ), f"single error on edge {edge.index} misdecoded"
