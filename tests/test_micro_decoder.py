"""End-to-end tests of the Micro Blossom decoder (batch and stream modes)."""

from __future__ import annotations

import pytest

from repro.core import DecodeOutcome, MicroBlossomDecoder
from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.graphs.syndrome import correction_edges
from repro.matching import ReferenceDecoder


@pytest.fixture(scope="module")
def decoding_setup():
    graph = surface_code_decoding_graph(5, circuit_level_noise(0.02))
    return graph, ReferenceDecoder(graph), SyndromeSampler(graph, seed=77)


class TestExactness:
    def test_matches_reference_weight(self, decoding_setup):
        graph, reference, sampler = decoding_setup
        decoder = MicroBlossomDecoder(graph)
        for _ in range(25):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            assert decoder.decode(syndrome).weight == reference.decode(syndrome).weight

    def test_matches_reference_without_prematching(self, decoding_setup):
        graph, reference, sampler = decoding_setup
        decoder = MicroBlossomDecoder(graph, enable_prematching=False)
        for _ in range(15):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            assert decoder.decode(syndrome).weight == reference.decode(syndrome).weight

    def test_stream_matches_batch_weight(self, decoding_setup):
        graph, _reference, sampler = decoding_setup
        batch = MicroBlossomDecoder(graph, stream=False)
        stream = MicroBlossomDecoder(graph, stream=True)
        for _ in range(15):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            assert stream.decode(syndrome).weight == batch.decode(syndrome).weight

    def test_correction_annihilates_all_defects(self, decoding_setup):
        graph, _reference, sampler = decoding_setup
        decoder = MicroBlossomDecoder(graph)
        for _ in range(15):
            syndrome = sampler.sample()
            result = decoder.decode(syndrome)
            correction = correction_edges(graph, result)
            assert residual_defects(graph, syndrome, correction) == ()

    def test_empty_syndrome(self, decoding_setup):
        graph, _, _ = decoding_setup
        from repro.graphs import Syndrome

        result = MicroBlossomDecoder(graph).decode(Syndrome(defects=()))
        assert result.pairs == []
        assert result.weight == 0


class TestOutcome:
    def test_decode_detailed_fields(self, decoding_setup):
        graph, _, sampler = decoding_setup
        decoder = MicroBlossomDecoder(graph, stream=True)
        syndrome = sampler.sample()
        outcome = decoder.decode_detailed(syndrome)
        assert isinstance(outcome, DecodeOutcome)
        assert outcome.defect_count == syndrome.defect_count
        assert outcome.stream is True
        assert outcome.prematching is True
        assert outcome.scale_retries == 0
        assert outcome.weight == outcome.result.weight
        assert "bus_words" in outcome.hardware_report
        assert outcome.counters["instr_find_obstacle"] >= 1

    def test_post_final_round_counters_subset_of_total(self, decoding_setup):
        graph, _, sampler = decoding_setup
        decoder = MicroBlossomDecoder(graph, stream=True)
        syndrome = None
        for _ in range(20):
            candidate = sampler.sample()
            if candidate.defect_count >= 2:
                syndrome = candidate
                break
        if syndrome is None:
            pytest.skip("no multi-defect syndrome sampled")
        outcome = decoder.decode_detailed(syndrome)
        for key, value in outcome.post_final_round_counters.items():
            assert value <= outcome.counters[key]

    def test_batch_post_counters_equal_totals(self, decoding_setup):
        graph, _, sampler = decoding_setup
        decoder = MicroBlossomDecoder(graph, stream=False)
        syndrome = sampler.sample()
        outcome = decoder.decode_detailed(syndrome)
        assert (
            outcome.post_final_round_counters["instr_find_obstacle"]
            == outcome.counters["instr_find_obstacle"]
        )

    def test_prematching_reduces_cpu_interactions(self):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.003))
        sampler = SyndromeSampler(graph, seed=5)
        with_prematch = MicroBlossomDecoder(graph, enable_prematching=True)
        without_prematch = MicroBlossomDecoder(graph, enable_prematching=False)
        conflicts_with = 0
        conflicts_without = 0
        for _ in range(30):
            syndrome = sampler.sample()
            if not syndrome.defects:
                continue
            conflicts_with += with_prematch.decode_detailed(syndrome).counters[
                "conflicts_reported"
            ]
            conflicts_without += without_prematch.decode_detailed(syndrome).counters[
                "conflicts_reported"
            ]
        assert conflicts_with < conflicts_without

    def test_prematched_pairs_counted(self, path_graph_builder):
        graph = path_graph_builder()
        decoder = MicroBlossomDecoder(graph)
        from repro.graphs import Syndrome

        outcome = decoder.decode_detailed(Syndrome(defects=(2, 3)))
        assert outcome.prematched_pairs == 1
        assert outcome.result.weight == graph.edges[0].weight
