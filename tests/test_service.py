"""Tests of the decode-service subsystem (`repro.service`).

Covers the layers the service spans:

* session keys and the shared config/content hashing
  (:mod:`repro.api.hashing`);
* the pure :class:`repro.service.MicroBatcher` (size flush, deadline flush,
  drain — all with a fake clock, no sleeps);
* the LRU :class:`repro.service.SessionCache` (reuse, eviction, counters);
* :class:`repro.service.DecodeService` end to end — bit-identity of served
  outcomes against direct decodes, deadline-driven flushes, backpressure and
  load-shed at a full admission queue, stream multiplexing;
* :class:`repro.evaluation.ServiceLoadEngine` — open/closed-loop replay,
  worker-count independence of the outcome digest, and the schema-validated
  ``BENCH_service.json`` document.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.api import (
    MicroBlossomConfig,
    content_hash,
    get_decoder,
    stable_seed,
)
from repro.evaluation import ServiceLoadEngine
from repro.graphs import SyndromeSampler
from repro.service import (
    SMOKE_TRACE,
    STATUS_ERROR,
    STATUS_SHED,
    CodeSpec,
    DecodeRequest,
    DecodeService,
    MicroBatcher,
    Scenario,
    ServiceBenchSchemaError,
    ServiceClosedError,
    ServiceOverloadedError,
    SessionCache,
    SessionKey,
    TraceSpec,
    generate_trace,
    make_trace,
    service_bench_document,
    validate_service_bench,
    write_service_bench,
)
from repro.stream import get_streaming_decoder
from repro.sweeps import SweepSpec

D3_CODE = CodeSpec(distance=3, physical_error_rate=0.02)
D3_KEY = SessionKey(D3_CODE, "micro-blossom")
UF_KEY = SessionKey(D3_CODE, "union-find")


def sample_syndromes(code: CodeSpec, count: int, seed: int = 7):
    graph = code.build_graph()
    return graph, SyndromeSampler(graph, seed=seed).sample_batch(count)


# ---------------------------------------------------------------------------
# hashing / session keys
# ---------------------------------------------------------------------------
class TestHashing:
    def test_content_hash_canonical(self):
        assert content_hash({"a": 1, "b": (2, 3)}) == content_hash({"b": [2, 3], "a": 1})
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_stable_seed_matches_sweep_derivation(self):
        from repro.sweeps.spec import derive_point_seed

        assert derive_point_seed(42, "k") == stable_seed(42, "k")

    def test_spec_hash_built_on_shared_primitive(self):
        """The refactored spec hash must keep its pre-refactor value shape."""
        spec = SweepSpec("s", (3,), (0.01,), ("union-find",), shots=8)
        assert len(spec.spec_hash()) == 16
        int(spec.spec_hash(), 16)  # hex

    def test_config_hash_distinguishes_class_and_fields(self):
        base = MicroBlossomConfig()
        assert base.config_hash() == MicroBlossomConfig().config_hash()
        assert base.config_hash() != MicroBlossomConfig(scale=4).config_hash()
        assert (
            UF_KEY.config.config_hash() != D3_KEY.config.config_hash()
        ), "different config classes must hash differently"

    def test_session_key_normalises_default_config(self):
        explicit = SessionKey(D3_CODE, "micro-blossom", MicroBlossomConfig())
        assert explicit == D3_KEY
        assert explicit.key() == D3_KEY.key()
        assert "config=" in explicit.key()

    def test_session_key_rejects_wrong_config_class(self):
        with pytest.raises(TypeError):
            SessionKey(D3_CODE, "union-find", MicroBlossomConfig())

    def test_code_spec_validation(self):
        with pytest.raises(ValueError):
            CodeSpec(distance=4)
        with pytest.raises(ValueError):
            CodeSpec(distance=3, physical_error_rate=0.0)
        with pytest.raises(ValueError):
            CodeSpec(distance=3, rounds=0)


# ---------------------------------------------------------------------------
# micro-batcher (pure, fake clock)
# ---------------------------------------------------------------------------
class TestMicroBatcher:
    def test_size_flush(self):
        batcher = MicroBatcher(max_batch_size=3, max_wait_seconds=1.0)
        assert batcher.add("k", 1, now=0.0) is None
        assert batcher.add("k", 2, now=0.1) is None
        batch = batcher.add("k", 3, now=0.2)
        assert batch is not None and batch.items == [1, 2, 3]
        assert batcher.pending_requests == 0

    def test_deadline_set_by_first_request_never_extended(self):
        batcher = MicroBatcher(max_batch_size=100, max_wait_seconds=0.5)
        batcher.add("k", 1, now=10.0)
        batcher.add("k", 2, now=10.4)
        assert batcher.next_deadline() == pytest.approx(10.5)
        assert batcher.due(now=10.49) == []
        [batch] = batcher.due(now=10.5)
        assert batch.items == [1, 2]
        assert batcher.next_deadline() is None

    def test_keys_batch_independently(self):
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=1.0)
        assert batcher.add("a", 1, now=0.0) is None
        assert batcher.add("b", 2, now=0.0) is None
        assert batcher.pending_batches == 2
        full = batcher.add("a", 3, now=0.1)
        assert full.key == "a" and full.items == [1, 3]
        assert batcher.pending_batches == 1

    def test_due_returns_in_deadline_order(self):
        batcher = MicroBatcher(max_batch_size=10, max_wait_seconds=0.2)
        batcher.add("late", 1, now=1.0)
        batcher.add("early", 2, now=0.5)
        flushed = batcher.due(now=5.0)
        assert [batch.key for batch in flushed] == ["early", "late"]

    def test_drain_empties_everything(self):
        batcher = MicroBatcher(max_batch_size=10, max_wait_seconds=5.0)
        batcher.add("a", 1, now=0.0)
        batcher.add("b", 2, now=0.0)
        assert sorted(b.key for b in batcher.drain()) == ["a", "b"]
        assert batcher.drain() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_seconds=-1.0)


# ---------------------------------------------------------------------------
# session cache
# ---------------------------------------------------------------------------
class TestSessionCache:
    def test_reuse_counts_hits_and_misses(self):
        cache = SessionCache(max_sessions=4)
        first = cache.acquire(UF_KEY)
        second = cache.acquire(UF_KEY)
        assert first is second
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert len(cache) == 1

    def test_lru_eviction_order_and_counter(self):
        built: list[str] = []

        def factory(key):
            built.append(key.decoder)
            from repro.service.cache import build_session

            return build_session(key)

        cache = SessionCache(max_sessions=2, session_factory=factory)
        key_ref = SessionKey(D3_CODE, "reference")
        cache.acquire(D3_KEY)
        cache.acquire(UF_KEY)
        cache.acquire(D3_KEY)  # refresh: UF is now least-recently-used
        cache.acquire(key_ref)  # evicts UF
        assert cache.stats.evictions == 1
        assert UF_KEY not in cache and D3_KEY in cache and key_ref in cache
        cache.acquire(UF_KEY)  # rebuild after eviction
        assert built.count("union-find") == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionCache(max_sessions=0)


# ---------------------------------------------------------------------------
# the service end to end
# ---------------------------------------------------------------------------
class TestDecodeService:
    def test_outcomes_bit_identical_to_direct_decode(self):
        graph, syndromes = sample_syndromes(D3_CODE, 24)
        requests = [
            DecodeRequest(D3_KEY if i % 2 else UF_KEY, syndrome, request_id=i)
            for i, syndrome in enumerate(syndromes)
        ]
        with DecodeService(workers=3, max_batch_size=5, max_wait_seconds=0.001) as svc:
            responses = svc.decode_many(requests)
        direct = {
            "micro-blossom": get_decoder("micro-blossom", graph),
            "union-find": get_decoder("union-find", graph),
        }
        for request, response in zip(requests, responses):
            assert response.ok and response.request.request_id == request.request_id
            expected = direct[request.session.decoder].decode_detailed(request.syndrome)
            assert response.outcome.correction_edges(graph) == expected.correction_edges(graph)
            assert response.outcome.weight == expected.weight
            assert response.outcome.counters == expected.counters
            assert response.batch_size >= 1
            assert response.latency_seconds >= response.queue_delay_seconds >= 0.0

    def test_deadline_flush_serves_partial_batches(self):
        """3 requests with a size bound of 64 can only complete via deadline."""
        _, syndromes = sample_syndromes(D3_CODE, 3)
        with DecodeService(workers=1, max_batch_size=64, max_wait_seconds=0.005) as service:
            responses = service.decode_many(
                [DecodeRequest(UF_KEY, s) for s in syndromes], timeout=30
            )
        assert [r.batch_size for r in responses] == [3, 3, 3]
        assert service.stats.batches == 1
        assert service.stats.batch_sizes == Counter({3: 1})

    def test_size_flush_caps_batches(self):
        _, syndromes = sample_syndromes(D3_CODE, 8)
        with DecodeService(workers=2, max_batch_size=2, max_wait_seconds=5.0) as service:
            responses = service.decode_many(
                [DecodeRequest(UF_KEY, s) for s in syndromes], timeout=30
            )
        # A 5 s deadline can never fire in this test; only size flushes can.
        assert all(r.batch_size == 2 for r in responses)
        assert service.stats.batches == 4

    def test_shed_policy_answers_immediately_when_full(self):
        _, syndromes = sample_syndromes(D3_CODE, 3)
        service = DecodeService(workers=1, queue_capacity=2, overload_policy="shed")
        futures = [service.submit(DecodeRequest(UF_KEY, s)) for s in syndromes]
        # Not started: the first two fill the queue, the third is shed now.
        shed = futures[2].result(timeout=1)
        assert shed.status == STATUS_SHED and not shed.ok and shed.outcome is None
        assert service.stats.shed == 1
        service.start()
        assert futures[0].result(timeout=30).ok
        assert futures[1].result(timeout=30).ok
        service.close()

    def test_block_policy_raises_on_timeout(self):
        _, syndromes = sample_syndromes(D3_CODE, 3)
        service = DecodeService(workers=1, queue_capacity=2, overload_policy="block")
        service.submit(DecodeRequest(UF_KEY, syndromes[0]))
        service.submit(DecodeRequest(UF_KEY, syndromes[1]))
        with pytest.raises(ServiceOverloadedError):
            service.submit(DecodeRequest(UF_KEY, syndromes[2]), timeout=0.01)
        service.start()
        service.close()

    def test_submit_after_close_raises(self):
        _, syndromes = sample_syndromes(D3_CODE, 1)
        service = DecodeService(workers=1)
        service.start()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(DecodeRequest(UF_KEY, syndromes[0]))

    def test_close_without_start_fails_queued_futures(self):
        _, syndromes = sample_syndromes(D3_CODE, 1)
        service = DecodeService(workers=1)
        future = service.submit(DecodeRequest(UF_KEY, syndromes[0]))
        service.close()
        with pytest.raises(ServiceClosedError):
            future.result(timeout=1)

    def test_close_drains_admitted_work(self):
        _, syndromes = sample_syndromes(D3_CODE, 6)
        service = DecodeService(workers=2, max_batch_size=3, max_wait_seconds=10.0)
        service.start()
        futures = [service.submit(DecodeRequest(UF_KEY, s)) for s in syndromes]
        service.close()  # deadline far away: close must flush the pending batch
        assert all(f.result(timeout=1).ok for f in futures)

    def test_sessions_reused_across_batches(self):
        _, syndromes = sample_syndromes(D3_CODE, 9)
        with DecodeService(workers=1, max_batch_size=3, max_wait_seconds=0.001) as service:
            service.decode_many([DecodeRequest(UF_KEY, s) for s in syndromes])
        stats = service.sessions.stats
        assert stats.misses == 1
        assert stats.hits >= 2  # batches 2 and 3 reuse the cached session

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DecodeService(workers=0)
        with pytest.raises(ValueError):
            DecodeService(queue_capacity=0)
        with pytest.raises(ValueError):
            DecodeService(overload_policy="drop")

    def test_decode_is_submit_plus_wait(self):
        graph, syndromes = sample_syndromes(D3_CODE, 1)
        with DecodeService(workers=1, max_wait_seconds=0.001) as service:
            response = service.decode(DecodeRequest(UF_KEY, syndromes[0]), timeout=30)
        expected = get_decoder("union-find", graph).decode_detailed(syndromes[0])
        assert response.outcome.correction_edges(graph) == expected.correction_edges(
            graph
        )

    def test_lifecycle_is_idempotent(self):
        service = DecodeService(workers=1)
        assert not service.started and not service.closed
        service.start()
        service.start()  # no-op
        assert service.started
        service.close()
        service.close()  # no-op
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.start()

    def test_failing_session_build_fails_the_batch_as_error_responses(self):
        """A session build that keeps crashing resolves the whole batch with
        STATUS_ERROR responses — never future exceptions, never a hang."""

        def broken_factory(key):
            raise RuntimeError("no session for you")

        _, syndromes = sample_syndromes(D3_CODE, 2)
        with DecodeService(
            workers=1, max_wait_seconds=0.001, session_factory=broken_factory
        ) as service:
            futures = [service.submit(DecodeRequest(UF_KEY, s)) for s in syndromes]
            for future in futures:
                response = future.result(timeout=30)
                assert response.status == STATUS_ERROR
                assert not response.ok
                assert "no session for you" in response.error
        assert service.stats.errors == 2
        assert service.stats.completed == 0
        assert service.stats.submitted == 2

    def test_session_build_retry_recovers_and_counts(self):
        """A build that crashes once succeeds within the retry budget; the
        requests decode normally and the retry is counted."""
        from repro.service.cache import build_session

        attempts = {"n": 0}

        def flaky_factory(key):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("transient build crash")
            return build_session(key)

        _, syndromes = sample_syndromes(D3_CODE, 3)
        with DecodeService(
            workers=1,
            max_wait_seconds=0.001,
            session_factory=flaky_factory,
            session_build_retries=2,
        ) as service:
            responses = service.decode_many([DecodeRequest(UF_KEY, s) for s in syndromes])
        assert all(r.ok for r in responses)
        assert service.stats.retries == 1
        assert service.stats.errors == 0

    def test_stats_snapshot_shape(self):
        _, syndromes = sample_syndromes(D3_CODE, 4)
        with DecodeService(workers=2, max_wait_seconds=0.001) as service:
            service.decode_many([DecodeRequest(UF_KEY, s) for s in syndromes])
        snapshot = service.stats_snapshot()
        assert snapshot["submitted"] == snapshot["completed"] == 4
        assert snapshot["shed"] == 0
        assert snapshot["errors"] == 0 and snapshot["retries"] == 0
        assert sum(size * count for size, count in snapshot["batch_sizes"].items()) == 4
        assert snapshot["sessions"]["misses"] == 1
        assert snapshot["sessions"]["live"] == 1
        assert snapshot["faults"] is None

    def test_session_stats_read_through_locked_snapshot(self):
        """Regression: DecodeService.stats_snapshot must read session counters
        via SessionCache.stats_snapshot() (one locked read), not attribute by
        attribute — a torn read could see hits+misses out of step."""
        cache = SessionCache(max_sessions=2)
        cache.acquire(UF_KEY)
        cache.acquire(UF_KEY)
        snapshot = cache.stats_snapshot()
        assert snapshot == {"hits": 1, "misses": 1, "evictions": 0, "live": 1}
        # mutating the snapshot must not touch the cache's own counters
        snapshot["hits"] = 99
        assert cache.stats.hits == 1

    def test_shed_requests_count_as_submitted(self):
        """Regression: a shed request is still offered load — `submitted`
        must include it or `submitted == completed + shed + errors` breaks."""
        service = DecodeService(workers=1, queue_capacity=1, overload_policy="shed")
        _, syndromes = sample_syndromes(D3_CODE, 3)
        # White-box: no dispatcher running, so the full-queue condition is
        # deterministic — the first request is admitted, the rest shed.
        futures = [service.submit(DecodeRequest(UF_KEY, s)) for s in syndromes]
        assert not futures[0].done()
        assert [f.result(timeout=1).status for f in futures[1:]] == [STATUS_SHED] * 2
        assert service.stats.submitted == 3
        assert service.stats.shed == 2
        service.close()  # never started: fails the one admitted future

    def test_cache_hit_records_zero_queue_delay_sample(self):
        """Regression: outcome-cache hits complete without queueing but must
        still contribute a 0.0 queue-delay sample so histogram counts stay in
        lock-step with `completed`."""
        _, syndromes = sample_syndromes(D3_CODE, 2)
        request = DecodeRequest(UF_KEY, syndromes[0])
        with DecodeService(
            workers=1, max_wait_seconds=0.001, outcome_cache_bytes=1 << 20
        ) as service:
            service.decode(request)
            cached = service.decode(request)
        assert cached.cached
        assert service.stats.cache_hits == 1
        assert service.stats.queue_delay.count == service.stats.completed == 2
        assert service.stats.latency.count == 2

    @pytest.mark.parametrize("policy", ["block", "shed"])
    @pytest.mark.parametrize("cache_bytes", [None, 1 << 20])
    def test_drained_stats_invariant(self, policy, cache_bytes):
        """After close(): submitted == completed + shed + errors, and
        batched + cache_hits == completed + errors, under both overload
        policies, with and without the outcome cache."""
        _, syndromes = sample_syndromes(D3_CODE, 6)
        requests = [DecodeRequest(UF_KEY, s) for s in syndromes]
        requests.append(DecodeRequest(UF_KEY, syndromes[0]))  # repeat: cacheable
        with DecodeService(
            workers=2,
            max_wait_seconds=0.0005,
            queue_capacity=4,
            overload_policy=policy,
            outcome_cache_bytes=cache_bytes,
        ) as service:
            responses = [f.result(timeout=30) for f in map(service.submit, requests)]
        stats = service.stats
        assert stats.submitted == len(requests)
        assert stats.submitted == stats.completed + stats.shed + stats.errors
        batched = sum(size * count for size, count in stats.batch_sizes.items())
        assert batched + stats.cache_hits == stats.completed + stats.errors
        assert stats.completed == sum(1 for r in responses if r.ok)


# ---------------------------------------------------------------------------
# streams through the service scheduler
# ---------------------------------------------------------------------------
class TestServiceStream:
    @pytest.mark.parametrize("decoder", ["micro-blossom", "union-find"])
    def test_stream_outcome_identical_to_direct_streaming(self, decoder):
        key = SessionKey(D3_CODE, decoder)
        graph = key.code.build_graph()
        sampler = SyndromeSampler(graph, seed=13)
        shots = [sampler.sample_rounds() for _ in range(5)]
        with DecodeService(workers=2) as service:
            stream = service.open_stream(key)
            served = [stream.decode_rounds(rounds) for _, rounds in shots]
        direct = get_streaming_decoder(decoder, graph)
        for (_, rounds), outcome in zip(shots, served):
            direct.begin(graph)
            for round_defects in rounds:
                direct.push_round(round_defects)
            expected = direct.finalize()
            assert outcome.correction_edges(graph) == expected.correction_edges(graph)
            assert outcome.weight == expected.weight

    def test_push_futures_resolve_to_round_costs(self):
        key = SessionKey(D3_CODE, "union-find")
        graph = key.code.build_graph()
        _, rounds = SyndromeSampler(graph, seed=3).sample_rounds()
        with DecodeService(workers=2) as service:
            stream = service.open_stream(key)
            assert stream.begin().result(timeout=30) is None
            costs = [stream.push_round(r).result(timeout=30) for r in rounds]
            outcome = stream.finalize().result(timeout=30)
        assert all(isinstance(cost, Counter) for cost in costs)
        assert outcome.defect_count == sum(len(r) for r in rounds)
        assert service.stats.stream_ops == len(rounds) + 2

    def test_decode_rounds_surfaces_push_errors(self):
        """A failed push must raise, never yield a silently partial outcome."""
        key = SessionKey(D3_CODE, "union-find")
        graph = key.code.build_graph()
        # A real (non-virtual) vertex from round 1, pushed as round 0.
        wrong_layer = next(
            v.index for v in graph.vertices if not v.is_virtual and v.layer == 1
        )
        with DecodeService(workers=2) as service:
            stream = service.open_stream(key)
            with pytest.raises(ValueError, match="belongs to round"):
                stream.decode_rounds([[wrong_layer], []], timeout=30)

    def test_open_stream_requires_started_service(self):
        service = DecodeService(workers=1)
        with pytest.raises(ServiceClosedError):
            service.open_stream(D3_KEY)

    def test_stream_ops_are_never_shed(self):
        """Dropping a round would corrupt the stream: overload must raise.

        White-box: the queue is filled directly (no dispatcher running) so
        the full-queue condition is deterministic.
        """
        from repro.service.service import ServiceStream

        service = DecodeService(workers=1, queue_capacity=1, overload_policy="shed")
        stream = ServiceStream(service, UF_KEY)
        service._queue.put_nowait(object())  # fill the bounded queue
        with pytest.raises(ServiceOverloadedError):
            stream.begin()
        service._queue.get_nowait()  # remove the filler before close()
        service.close()


# ---------------------------------------------------------------------------
# traces and the load engine
# ---------------------------------------------------------------------------
class TestTraces:
    def test_generation_is_deterministic(self):
        spec = make_trace("t", [3], [0.02], ["union-find"], requests=10, seed=5)
        first = generate_trace(spec)
        second = generate_trace(spec)
        for a, b in zip(first.requests, second.requests):
            assert a.request.syndrome == b.request.syndrome
            assert a.scenario_index == b.scenario_index
            assert a.arrival_offset_seconds == b.arrival_offset_seconds

    def test_open_loop_rate_draws_increasing_offsets(self):
        spec = TraceSpec(
            "t",
            (Scenario(3, physical_error_rate=0.02),),
            requests=16,
            rate_rps=10_000.0,
        )
        offsets = [t.arrival_offset_seconds for t in generate_trace(spec).requests]
        assert offsets == sorted(offsets) and offsets[0] > 0.0

    def test_trace_hash_ignores_name_but_not_parameters(self):
        base = make_trace("a", [3], [0.02], ["union-find"], requests=8, seed=1)
        renamed = make_trace("b", [3], [0.02], ["union-find"], requests=8, seed=1)
        reseeded = make_trace("a", [3], [0.02], ["union-find"], requests=8, seed=2)
        assert base.trace_hash() == renamed.trace_hash()
        assert base.trace_hash() != reseeded.trace_hash()

    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(SMOKE_TRACE.to_dict()))
        assert TraceSpec.from_file(path) == SMOKE_TRACE

    def test_validation(self):
        scenario = Scenario(3, physical_error_rate=0.02)
        with pytest.raises(ValueError):
            TraceSpec("", (scenario,), requests=1)
        with pytest.raises(ValueError):
            TraceSpec("t", (), requests=1)
        with pytest.raises(ValueError):
            TraceSpec("t", (scenario,), requests=0)
        with pytest.raises(ValueError):
            TraceSpec("t", (scenario,), requests=1, arrival="batch")
        with pytest.raises(ValueError):
            TraceSpec("t", (scenario,), requests=1, rate_rps=0.0)
        with pytest.raises(ValueError):
            Scenario(3, weight=0.0)


class TestServiceLoadEngine:
    TRACE = TraceSpec(
        "load",
        (
            Scenario(distance=3, physical_error_rate=0.02, decoder="micro-blossom"),
            Scenario(distance=3, physical_error_rate=0.03, decoder="union-find"),
        ),
        requests=32,
        seed=9,
    )

    def test_outcome_digest_independent_of_workers(self):
        digests = set()
        for workers in (1, 3):
            result = ServiceLoadEngine(self.TRACE, workers=workers, max_wait_seconds=0.0005).run()
            assert result.completed == 32 and result.shed == 0
            digests.add((result.outcome_digest, result.errors))
        assert len(digests) == 1, "worker count changed service outcomes"

    def test_verify_identity_passes(self):
        result = ServiceLoadEngine(self.TRACE, workers=2).run(verify_identity=True)
        assert result.identity_checked == 32
        assert result.identity_mismatches == 0

    def test_closed_loop_completes_every_request(self):
        spec = TraceSpec(
            "closed",
            (Scenario(3, physical_error_rate=0.02, decoder="union-find"),),
            requests=12,
            seed=2,
            arrival="closed",
            clients=3,
        )
        result = ServiceLoadEngine(spec, workers=2).run()
        assert result.completed == 12
        assert result.latency.count == 12
        assert result.throughput_rps > 0

    def test_rejects_non_trace_input(self):
        with pytest.raises(TypeError):
            ServiceLoadEngine({"requests": 4})


# ---------------------------------------------------------------------------
# BENCH_service.json
# ---------------------------------------------------------------------------
class TestServiceBench:
    @pytest.fixture(scope="class")
    def run(self):
        spec = TraceSpec(
            "bench",
            (Scenario(3, physical_error_rate=0.02, decoder="union-find"),),
            requests=16,
            seed=4,
        )
        result = ServiceLoadEngine(spec, workers=2).run(verify_identity=True)
        return spec, result

    def test_document_validates_and_writes(self, run, tmp_path):
        spec, result = run
        document = service_bench_document(spec, result, commit="abc", timestamp="t")
        validate_service_bench(document)
        path = write_service_bench(document, tmp_path / "BENCH_service.json")
        assert validate_service_bench(json.loads(path.read_text())) is None

    def test_batch_histogram_accounts_for_every_completed_request(self, run):
        spec, result = run
        document = service_bench_document(spec, result, commit="abc", timestamp="t")
        assert (
            sum(int(k) * v for k, v in document["batch_size_histogram"].items())
            == document["completed"]
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("throughput_rps"),
            lambda d: d.__setitem__("schema_version", 99),
            lambda d: d.__setitem__("completed", d["requests"] + 1),
            lambda d: d["batch_size_histogram"].__setitem__("0", 1),
            lambda d: d["identity"].__setitem__("mismatches", 10**6),
            lambda d: d.__setitem__("outcome_digest", ""),
            lambda d: d.pop("fairness"),
            lambda d: d.__setitem__("error_responses", 1),
            lambda d: d["fairness"].__setitem__("min_completion_ratio", 2.0),
            lambda d: d.__setitem__("healthy_digest", ""),
            lambda d: d.__setitem__("hostile_mix", []),
            lambda d: d.__setitem__("shed_rate", -0.1),
        ],
    )
    def test_schema_violations_raise(self, run, mutate):
        spec, result = run
        document = service_bench_document(spec, result, commit="abc", timestamp="t")
        mutate(document)
        with pytest.raises(ServiceBenchSchemaError):
            validate_service_bench(document)

    def test_smoke_trace_is_pinned(self):
        """CI's serve-bench --smoke workload must not drift silently."""
        assert SMOKE_TRACE.requests == 96
        assert SMOKE_TRACE.seed == 2026
        assert len(SMOKE_TRACE.scenarios) == 4
        assert SMOKE_TRACE.trace_hash() == "dc69d9b30cc305ea"
