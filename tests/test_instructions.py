"""Tests for the accelerator instruction-set encoding (Table 3)."""

from __future__ import annotations

import pytest

from repro.core.instructions import (
    MAX_GROW_LENGTH,
    MAX_NODE_INDEX,
    Instruction,
    Opcode,
    decode_instruction,
    encode_instruction,
    find_conflict_word,
    grow_word,
    load_defects_word,
    reset_word,
    set_cover_word,
    set_direction_word,
)


class TestRoundTrip:
    def test_reset(self):
        word = reset_word()
        decoded = decode_instruction(word)
        assert decoded.opcode is Opcode.RESET

    def test_find_conflict(self):
        decoded = decode_instruction(find_conflict_word())
        assert decoded.opcode is Opcode.FIND_CONFLICT

    @pytest.mark.parametrize("length", [0, 1, 37, MAX_GROW_LENGTH])
    def test_grow(self, length):
        decoded = decode_instruction(grow_word(length))
        assert decoded.opcode is Opcode.GROW
        assert decoded.length == length

    @pytest.mark.parametrize("node", [0, 5, 1000, MAX_NODE_INDEX])
    @pytest.mark.parametrize("direction", [-1, 0, 1])
    def test_set_direction(self, node, direction):
        decoded = decode_instruction(set_direction_word(node, direction))
        assert decoded.opcode is Opcode.SET_DIRECTION
        assert decoded.node == node
        assert decoded.direction == direction

    @pytest.mark.parametrize("source,target", [(0, 1), (7, 7), (MAX_NODE_INDEX, 3)])
    def test_set_cover(self, source, target):
        decoded = decode_instruction(set_cover_word(source, target))
        assert decoded.opcode is Opcode.SET_COVER
        assert decoded.cover_source == source
        assert decoded.cover_target == target

    @pytest.mark.parametrize("layer", [0, 3, 30])
    def test_load_defects(self, layer):
        decoded = decode_instruction(load_defects_word(layer))
        assert decoded.opcode is Opcode.LOAD_DEFECTS
        assert decoded.payload == layer


class TestValidation:
    def test_grow_length_too_large(self):
        with pytest.raises(ValueError):
            grow_word(MAX_GROW_LENGTH + 1)

    def test_node_index_too_large(self):
        with pytest.raises(ValueError):
            set_direction_word(MAX_NODE_INDEX + 1, 1)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            set_direction_word(0, 2)

    def test_set_direction_requires_arguments(self):
        with pytest.raises(ValueError):
            encode_instruction(Instruction(opcode=Opcode.SET_DIRECTION))

    def test_set_cover_requires_arguments(self):
        with pytest.raises(ValueError):
            encode_instruction(Instruction(opcode=Opcode.SET_COVER))

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            decode_instruction(1 << 33)

    def test_words_are_32_bit(self):
        for word in (
            reset_word(),
            find_conflict_word(),
            grow_word(12345),
            set_direction_word(321, -1),
            set_cover_word(11, 22),
            load_defects_word(9),
        ):
            assert 0 <= word < (1 << 32)

    def test_distinct_opcode_encodings(self):
        words = {
            reset_word(),
            find_conflict_word(),
            grow_word(0),
            load_defects_word(0),
            set_cover_word(0, 0),
        }
        assert len(words) == 5

    def test_instruction_encode_method(self):
        instruction = Instruction(opcode=Opcode.GROW, length=5)
        assert instruction.encode() == grow_word(5)
