"""Tests for the accelerator model: pre-matching, fusion loading, bus counters."""

from __future__ import annotations

import pytest

from repro.core import (
    Conflict,
    Finished,
    GrowLength,
    MicroBlossomAccelerator,
    PrimalModule,
)
from repro.graphs import GraphBuilder


def run_until_finished(accelerator, primal):
    primal.run()
    return primal.collect_matching()


class TestPreMatchingRegularEdge:
    def test_isolated_pair_never_reaches_cpu(self, path_graph_builder):
        """Equation 1: an isolated error produces no CPU interaction at all."""
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=True)
        accelerator.load([2, 3])
        primal = PrimalModule(graph, accelerator)
        primal.run()
        # The defect pair is handled entirely in hardware.
        assert accelerator.counters["conflicts_reported"] == 0
        assert primal.counters["nodes_discovered"] == 0
        pairs = accelerator.prematched_pairs()
        assert len(pairs) == 1
        assert {pairs[0].defect, pairs[0].peer} == {2, 3}
        assert not pairs[0].peer_is_boundary

    def test_prematching_disabled_reports_conflicts(self, path_graph_builder):
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=False)
        accelerator.load([2, 3])
        primal = PrimalModule(graph, accelerator)
        primal.run()
        assert accelerator.counters["conflicts_reported"] >= 1
        assert accelerator.prematched_pairs() == []
        assert primal.counters["nodes_discovered"] == 2

    def test_boundary_prematch(self, path_graph_builder):
        """Equations 2/3: an isolated error next to the boundary."""
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=True)
        accelerator.load([1])
        primal = PrimalModule(graph, accelerator)
        primal.run()
        pairs = accelerator.prematched_pairs()
        assert accelerator.counters["conflicts_reported"] == 0
        assert len(pairs) == 1
        assert pairs[0].defect == 1
        assert pairs[0].peer_is_boundary

    def test_disturbed_prematch_is_escalated_to_cpu(self):
        """A third Cover breaking an isolated Conflict hands it to software."""
        builder = GraphBuilder()
        vertices = [builder.add_vertex(0, 0, i) for i in range(5)]
        virtual = builder.add_vertex(0, 0, 5, is_virtual=True)
        for left, right in zip(vertices, vertices[1:]):
            builder.add_edge(left, right, 0.1, 0.1)
        builder.add_edge(vertices[4], virtual, 0.1, 0.1)
        graph = builder.build()
        # Three defects in a row: the middle pair may pre-match transiently,
        # but the third defect disturbs it, so the CPU must resolve the chain.
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=True)
        accelerator.load([0, 1, 2])
        primal = PrimalModule(graph, accelerator)
        primal.run()
        result = primal.collect_matching()
        for prematch in accelerator.prematched_pairs():
            if prematch.peer_is_boundary:
                result.pairs.append((prematch.defect, -1))
            else:
                result.pairs.append((prematch.defect, prematch.peer))
        result.validate_perfect([0, 1, 2])


class TestEffectiveDirections:
    def test_prematched_nodes_stop_growing(self, path_graph_builder):
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=True)
        accelerator.load([2, 3])
        # Drive the dual phase manually until it reports completion.
        for _ in range(20):
            obstacle = accelerator.find_obstacle()
            if isinstance(obstacle, Finished):
                break
            assert isinstance(obstacle, GrowLength)
            accelerator.grow(obstacle.length)
        else:
            pytest.fail("accelerator never finished")
        radius_2 = accelerator.radius_of(2)
        radius_3 = accelerator.radius_of(3)
        weight = graph.edges[0].weight * accelerator.scale
        assert radius_2 + radius_3 == weight

    def test_no_conflict_between_two_prematched_nodes(self, path_graph_builder):
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=True)
        accelerator.load([2, 3])
        obstacle = accelerator.find_obstacle()
        while isinstance(obstacle, GrowLength):
            accelerator.grow(obstacle.length)
            obstacle = accelerator.find_obstacle()
        assert isinstance(obstacle, Finished)
        assert not isinstance(obstacle, Conflict)


class TestBusAccounting:
    def test_bus_words_counted(self, path_graph_builder):
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph)
        baseline = accelerator.counters["bus_words"]
        accelerator.load([1])
        accelerator.find_obstacle()
        accelerator.grow(3)
        accelerator.set_direction(1, 0)
        assert accelerator.counters["bus_words"] >= baseline + 4

    def test_hardware_report_keys(self, path_graph_builder):
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph)
        accelerator.load([1])
        accelerator.find_obstacle()
        report = accelerator.hardware_report()
        for key in (
            "bus_words",
            "response_reads",
            "grow_instructions",
            "find_obstacle_instructions",
            "conflicts_reported",
            "defects_loaded",
        ):
            assert key in report
        assert report["defects_loaded"] == 1
        assert report["find_obstacle_instructions"] == 1

    def test_create_and_expand_blossom_count_cover_words(self, path_graph_builder):
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph)
        accelerator.load([1, 2, 3])
        before = accelerator.counters["bus_words"]
        blossom = graph.num_vertices
        accelerator.create_blossom([1, 2, 3], blossom)
        accelerator.expand_blossom(blossom, {1: 1, 2: 2, 3: 3})
        assert accelerator.counters["bus_words"] == before + 6
