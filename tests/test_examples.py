"""Every example script must run end to end with small parameters."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLE_COMMANDS = {
    "quickstart.py": ["--distance", "3", "--error-rate", "0.01", "--seed", "3"],
    "stream_decoding.py": [
        "--distance",
        "3",
        "--rounds",
        "2",
        "3",
        "--samples",
        "3",
    ],
    "accuracy_comparison.py": ["--distances", "3", "--samples", "60"],
    "resource_planning.py": ["--distances", "3", "13"],
}


def run_example(name: str, arguments: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *arguments],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("name,arguments", sorted(EXAMPLE_COMMANDS.items()))
def test_example_runs(name, arguments):
    completed = run_example(name, arguments)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print their results"


def test_all_examples_are_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_COMMANDS), (
        "every example script must have a smoke test entry"
    )


def test_quickstart_reports_exactness():
    completed = run_example("quickstart.py", EXAMPLE_COMMANDS["quickstart.py"])
    assert "exact" in completed.stdout
    assert "µs" in completed.stdout


def test_resource_planning_mentions_boards():
    completed = run_example(
        "resource_planning.py", EXAMPLE_COMMANDS["resource_planning.py"]
    )
    assert "VMK180" in completed.stdout
    assert "VP1902" in completed.stdout
