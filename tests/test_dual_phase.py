"""Unit tests for the cover-based dual phase (DualGraphState)."""

from __future__ import annotations

import pytest

from repro.core import (
    Conflict,
    DualPhaseError,
    Finished,
    GrowLength,
    GROW,
    HOLD,
    SHRINK,
)
from repro.core.dual import DualGraphState


@pytest.fixture()
def path_graph(path_graph_builder):
    return path_graph_builder()


def internal_weight(graph, dual):
    """Internal (scaled) weight of the uniform edges of the path graph."""
    return graph.edges[0].weight * dual.scale


class TestLoading:
    def test_load_marks_defects_and_default_direction(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 3])
        assert dual.is_defect[1] and dual.is_defect[3]
        assert dual.radius_of(1) == 0
        assert dual.direction_of(1) == GROW
        assert dual.direction_of(2) == HOLD

    def test_load_rejects_virtual_defect(self, path_graph):
        dual = DualGraphState(path_graph)
        with pytest.raises(DualPhaseError):
            dual.load([0])

    def test_partial_layer_load_leaves_other_layers_boundary(self, surface_d3_circuit):
        dual = DualGraphState(surface_d3_circuit)
        layer0 = surface_d3_circuit.vertices_in_layer(0)
        defect = next(
            v for v in layer0 if not surface_d3_circuit.is_virtual(v)
        )
        dual.load([defect], layers={0})
        other_layer_vertex = surface_d3_circuit.vertices_in_layer(1)[0]
        assert dual.is_boundary_node(other_layer_vertex)
        assert not dual.is_boundary_node(defect)

    def test_load_defect_outside_loaded_layers_raises(self, surface_d3_circuit):
        dual = DualGraphState(surface_d3_circuit)
        layer1_defect = next(
            v
            for v in surface_d3_circuit.vertices_in_layer(1)
            if not surface_d3_circuit.is_virtual(v)
        )
        with pytest.raises(DualPhaseError):
            dual.load([layer1_defect], layers={0})

    def test_reset_clears_state(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1])
        dual.reset()
        assert dual.loaded_defects() == []

    def test_invalid_scale_rejected(self, path_graph):
        with pytest.raises(ValueError):
            DualGraphState(path_graph, scale=0)


class TestGrowthAndConflicts:
    def test_single_defect_reaches_boundary(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1])
        obstacle = dual.find_obstacle()
        assert isinstance(obstacle, GrowLength)
        assert obstacle.length == internal_weight(path_graph, dual)
        dual.grow(obstacle.length)
        conflict = dual.find_obstacle()
        assert isinstance(conflict, Conflict)
        assert conflict.node_1 == 1
        assert dual.is_boundary_node(conflict.node_2)
        assert conflict.touch_2 == 0  # the left virtual vertex

    def test_two_defects_conflict_in_the_middle(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 3])
        obstacle = dual.find_obstacle()
        assert isinstance(obstacle, GrowLength)
        # Vertices 1 and 3 are two edges apart; they grow toward each other at
        # combined rate 2, but each also approaches its own boundary at rate 1.
        w = internal_weight(path_graph, dual)
        assert obstacle.length == w
        dual.grow(obstacle.length)
        conflict = dual.find_obstacle()
        assert isinstance(conflict, Conflict)
        involved = {conflict.node_1, conflict.node_2}
        assert involved <= {1, 3, 0, 4}

    def test_growth_stops_at_uncovered_vertex(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1])
        obstacle = dual.find_obstacle()
        # The first stop is exactly at the neighbouring vertices (distance w).
        assert obstacle.length == internal_weight(path_graph, dual)

    def test_no_defects_is_finished(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([])
        assert isinstance(dual.find_obstacle(), Finished)

    def test_hold_direction_stops_growth(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1])
        dual.set_direction(1, HOLD)
        assert isinstance(dual.find_obstacle(), Finished)
        dual.grow(5)
        assert dual.radius_of(1) == 0

    def test_grow_requires_positive_length(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1])
        with pytest.raises(ValueError):
            dual.grow(0)

    def test_set_direction_validation(self, path_graph):
        dual = DualGraphState(path_graph)
        with pytest.raises(ValueError):
            dual.set_direction(1, 3)

    def test_conflict_reports_tight_touch_pair(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 2])
        obstacle = dual.find_obstacle()
        dual.grow(obstacle.length)
        conflict = dual.find_obstacle()
        assert isinstance(conflict, Conflict)
        touches = {conflict.touch_1, conflict.touch_2}
        # The tight edge is realised by the two defects themselves or by a
        # defect and its adjacent boundary vertex.
        assert touches <= {0, 1, 2}


class TestBlossomBookkeeping:
    def test_create_blossom_reroots_defects(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 2, 3])
        blossom_id = path_graph.num_vertices
        dual.create_blossom([1, 2, 3], blossom_id)
        assert dual.defect_root[1] == blossom_id
        assert dual.defect_root[2] == blossom_id
        assert dual.direction_of(blossom_id) == GROW

    def test_create_blossom_rejects_duplicate_id(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 2])
        with pytest.raises(DualPhaseError):
            dual.create_blossom([1, 2], 1)

    def test_expand_blossom_restores_roots(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 2, 3])
        blossom_id = path_graph.num_vertices
        dual.create_blossom([1, 2, 3], blossom_id)
        dual.expand_blossom(blossom_id, {1: 1, 2: 2, 3: 3})
        assert dual.defect_root[1] == 1
        assert dual.direction_of(blossom_id) == HOLD

    def test_expand_blossom_requires_complete_mapping(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 2, 3])
        blossom_id = path_graph.num_vertices
        dual.create_blossom([1, 2, 3], blossom_id)
        with pytest.raises(DualPhaseError):
            dual.expand_blossom(blossom_id, {1: 1})

    def test_expand_blossom_checks_root(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 2])
        with pytest.raises(DualPhaseError):
            dual.expand_blossom(99, {1: 1})

    def test_grow_tracks_blossom_direction(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 2, 3])
        blossom_id = path_graph.num_vertices
        dual.create_blossom([1, 2, 3], blossom_id)
        dual.set_direction(blossom_id, SHRINK)
        obstacle = dual.find_obstacle()
        assert isinstance(obstacle, Finished) or isinstance(obstacle, GrowLength)


class TestCounters:
    def test_counters_track_instructions(self, path_graph):
        dual = DualGraphState(path_graph)
        dual.load([1, 3])
        dual.find_obstacle()
        dual.grow(2)
        dual.set_direction(1, HOLD)
        assert dual.counters["instr_load"] == 1
        assert dual.counters["instr_find_obstacle"] == 1
        assert dual.counters["instr_grow"] == 1
        assert dual.counters["instr_set_direction"] == 1
        assert dual.counters["total_growth"] == 2

    def test_weight_units_conversion(self, path_graph):
        dual = DualGraphState(path_graph, scale=2)
        assert dual.weight_units(4) == 2.0
