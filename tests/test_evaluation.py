"""Tests of the Monte-Carlo harness, scaling fits, and experiment runners."""

from __future__ import annotations

import math

import pytest

from repro.evaluation import (
    DEFAULT_MWPM_SCALING,
    amdahl_profile,
    collect_latency_samples,
    effective_error_grid,
    estimate_logical_error_rate,
    expected_defect_count,
    expected_error_count,
    fit_accuracy_ratio_trend,
    fit_logical_error_scaling,
    format_rows,
    improvement_breakdown,
    latency_distribution,
    latency_sweep,
    resource_usage_table,
    stream_vs_batch,
    wilson_interval,
)
from repro.evaluation.experiments import build_graph
from repro.graphs import SyndromeSampler
from repro.matching import ReferenceDecoder
from repro.unionfind import UnionFindDecoder


class TestMonteCarlo:
    def test_logical_error_rate_estimate(self):
        graph = build_graph(3, 0.03)
        reference = ReferenceDecoder(graph)
        result = estimate_logical_error_rate(graph, reference, 150, seed=1)
        assert result.samples == 150
        assert 0.0 <= result.rate <= 1.0
        assert result.standard_error >= 0.0

    def test_union_find_decoder_supported(self):
        graph = build_graph(3, 0.03)
        union_find = UnionFindDecoder(graph)
        result = estimate_logical_error_rate(graph, union_find, 100, seed=2)
        assert 0.0 <= result.rate <= 1.0

    def test_expected_defect_count_matches_empirical(self):
        graph = build_graph(3, 0.02)
        predicted = expected_defect_count(graph)
        sampler = SyndromeSampler(graph, seed=3)
        samples = 600
        observed = sum(sampler.sample().defect_count for _ in range(samples)) / samples
        assert observed == pytest.approx(predicted, rel=0.25)

    def test_expected_error_count(self):
        graph = build_graph(3, 0.02)
        assert expected_error_count(graph) == pytest.approx(
            sum(e.probability for e in graph.edges)
        )

    def test_invalid_sample_count(self):
        graph = build_graph(3, 0.02)
        with pytest.raises(ValueError):
            estimate_logical_error_rate(graph, ReferenceDecoder(graph), 0)

    def test_wilson_interval_contains_point_estimate(self):
        low, high = wilson_interval(5, 100)
        assert low < 0.05 < high
        with pytest.raises(ValueError):
            wilson_interval(1, 0)

    def test_zero_failure_estimate_surfaces_rule_of_three_bound(self):
        from repro.evaluation import LogicalErrorRateResult

        degenerate = LogicalErrorRateResult(samples=300, errors=0)
        assert degenerate.zero_failures
        assert degenerate.rate == 0.0
        assert degenerate.standard_error == pytest.approx(0.0, abs=1e-10)
        assert degenerate.upper_bound == pytest.approx(0.01)
        observed = LogicalErrorRateResult(samples=300, errors=6)
        assert not observed.zero_failures
        assert observed.upper_bound > observed.rate

    def test_explicit_sampler_honors_workers(self):
        graph = build_graph(3, 0.03)
        sequential = estimate_logical_error_rate(
            graph, "reference", 80, sampler=SyndromeSampler(graph, seed=21)
        )
        parallel = estimate_logical_error_rate(
            graph, "reference", 80, sampler=SyndromeSampler(graph, seed=21), workers=3
        )
        assert (sequential.samples, sequential.errors) == (
            parallel.samples,
            parallel.errors,
        )

    def test_explicit_sampler_rejects_early_stopping(self):
        graph = build_graph(3, 0.03)
        with pytest.raises(ValueError):
            estimate_logical_error_rate(
                graph,
                "reference",
                50,
                sampler=SyndromeSampler(graph, seed=1),
                target_standard_error=0.01,
            )

    def test_collect_latency_samples(self):
        graph = build_graph(3, 0.02)
        reference = ReferenceDecoder(graph)

        def decode_with_latency(syndrome):
            if not syndrome.defects:
                return 0.1e-6, bool(syndrome.logical_flip)
            correction = reference.decode_to_correction(syndrome)
            wrong = graph.crosses_observable(correction) != syndrome.logical_flip
            return 1e-6 + 0.1e-6 * syndrome.defect_count, wrong

        result = collect_latency_samples(graph, decode_with_latency, 40, seed=5)
        assert len(result.samples) == 40
        assert result.average_latency > 0.0
        assert 0.0 <= result.logical_error_rate <= 1.0
        assert result.average_defects > 0.0
        assert len(result.latencies) == 40

    def test_collect_latency_samples_accepts_explicit_sampler(self):
        graph = build_graph(3, 0.02)
        sampler = SyndromeSampler(graph, seed=5)
        result = collect_latency_samples(
            graph, lambda syndrome: (1e-6, False), 10, sampler=sampler
        )
        follow_up = SyndromeSampler(graph, seed=5)
        follow_up.sample_batch(10)
        # the provided sampler's stream was consumed, not a fresh seeded one
        assert sampler.sample() == follow_up.sample()


class TestScalingFits:
    def test_fit_recovers_synthetic_parameters(self):
        amplitude, threshold = 0.1, 0.01
        points = []
        for distance in (3, 5, 7):
            for p in (0.001, 0.002, 0.004):
                p_l = amplitude * (p / threshold) ** ((distance + 1) / 2)
                points.append((distance, p, p_l))
        fitted = fit_logical_error_scaling(points)
        assert fitted.amplitude == pytest.approx(amplitude, rel=0.05)
        assert fitted.threshold == pytest.approx(threshold, rel=0.05)

    def test_fit_requires_positive_points(self):
        with pytest.raises(ValueError):
            fit_logical_error_scaling([(3, 0.001, 0.0)])

    def test_prediction_clamped_to_one(self):
        assert DEFAULT_MWPM_SCALING.predict(3, 0.4) == 1.0

    def test_prediction_decreases_with_distance(self):
        high = DEFAULT_MWPM_SCALING.predict(3, 0.001)
        low = DEFAULT_MWPM_SCALING.predict(9, 0.001)
        assert low < high

    def test_accuracy_trend_fit(self):
        trend = fit_accuracy_ratio_trend([(3, 1.2), (5, 1.4), (7, 1.7)])
        assert trend.predict(9) > trend.predict(3)
        assert trend.predict(3) >= 1.0

    def test_accuracy_trend_single_point(self):
        trend = fit_accuracy_ratio_trend([(5, 1.5)])
        assert trend.predict(11) == pytest.approx(1.5)

    def test_accuracy_trend_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_accuracy_ratio_trend([])


class TestExperimentRunners:
    def test_amdahl_profile_rows(self):
        rows = amdahl_profile(distances=(3,), samples=5, seed=0)
        assert len(rows) == 1
        row = rows[0]
        assert 0.0 < row["dual_fraction"] < 1.0
        assert row["potential_speedup"] > 1.0

    def test_latency_sweep_rows(self):
        rows = latency_sweep(distances=(3,), error_rates=(0.002,), samples=5, seed=1)
        decoders = {row["decoder"] for row in rows}
        assert decoders == {"parity-blossom", "micro-blossom"}
        assert all(row["mean_latency_us"] > 0 for row in rows)

    def test_latency_distribution_structure(self):
        result = latency_distribution(distance=3, samples=30, seed=2)
        for name in ("parity-blossom", "micro-blossom"):
            entry = result[name]
            assert entry["average_latency_us"] > 0
            assert set(entry["cutoffs_us"]) == {1.0, 0.1, 0.01}
            assert len(entry["latencies_us"]) == 30

    def test_improvement_breakdown_has_four_configurations(self):
        rows = improvement_breakdown(distances=(3,), samples=5, seed=3)
        assert len(rows) == 4
        assert rows[0]["configuration"].startswith("parity")
        assert rows[0]["speedup_vs_cpu"] == pytest.approx(1.0)

    def test_stream_vs_batch_rows(self):
        rows = stream_vs_batch(distance=3, rounds_list=(2, 3), samples=5, seed=4)
        assert [row["rounds"] for row in rows] == [2, 3]
        assert all(row["stream_latency_us"] > 0 for row in rows)

    def test_effective_error_grid_structure(self):
        rows = effective_error_grid(distances=(3, 9), error_rates=(0.0001, 0.005))
        assert len(rows) == 4
        for row in rows:
            assert row["best_decoder"] in {"helios", "parity-blossom", "micro-blossom"}
            for decoder in ("helios", "parity-blossom", "micro-blossom"):
                assert row[f"{decoder}_ratio"] >= 0.0
                assert not math.isnan(row[f"{decoder}_ratio"])

    def test_effective_error_grid_shape_matches_paper(self):
        """Micro Blossom should win in the bulk of the grid; the software
        decoder is competitive only at the very smallest p·d corner."""
        rows = effective_error_grid(
            distances=(3, 9, 13), error_rates=(0.0001, 0.001, 0.005)
        )
        by_key = {(row["distance"], row["physical_error_rate"]): row for row in rows}
        assert by_key[(9, 0.001)]["best_decoder"] == "micro-blossom"
        assert by_key[(13, 0.001)]["best_decoder"] == "micro-blossom"
        small_corner = by_key[(3, 0.0001)]
        assert small_corner["parity-blossom_ratio"] < small_corner["helios_ratio"]

    def test_resource_usage_rows(self):
        rows = resource_usage_table(distances=(3, 13))
        assert rows[0]["distance"] == 3
        assert rows[1]["paper_luts"] == 553_000
        assert rows[1]["luts"] > rows[0]["luts"]

    def test_format_rows(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 2, "b": "y"}]
        text = format_rows(rows, ["a", "b"])
        assert "1.235" in text
        assert "y" in text
        assert len(text.splitlines()) == 4
