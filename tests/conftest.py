"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    GraphBuilder,
    SyndromeSampler,
    circuit_level_noise,
    code_capacity_noise,
    phenomenological_noise,
    repetition_code_decoding_graph,
    surface_code_decoding_graph,
)


@pytest.fixture(scope="session")
def surface_d3_circuit():
    """Distance-3 rotated surface code under circuit-level noise."""
    return surface_code_decoding_graph(3, circuit_level_noise(0.01))


@pytest.fixture(scope="session")
def surface_d5_circuit():
    """Distance-5 rotated surface code under circuit-level noise."""
    return surface_code_decoding_graph(5, circuit_level_noise(0.005))


@pytest.fixture(scope="session")
def surface_d5_code_capacity():
    """Distance-5 rotated surface code under code-capacity noise (2D graph)."""
    return surface_code_decoding_graph(5, code_capacity_noise(0.05))


@pytest.fixture(scope="session")
def repetition_d5_phenomenological():
    """Distance-5 repetition code under phenomenological noise."""
    return repetition_code_decoding_graph(5, phenomenological_noise(0.02))


@pytest.fixture()
def sampler_d3(surface_d3_circuit):
    return SyndromeSampler(surface_d3_circuit, seed=1234)


@pytest.fixture()
def path_graph_builder():
    """A tiny hand-built path graph: virtual - a - b - c - virtual.

    Useful for unit tests of the dual phase where every weight and distance
    must be known exactly.  All edges use probability 0.1 against a reference
    of 0.1, so every quantised weight is the maximum (14) and the internal
    doubled weight is 28.
    """

    def build(weights=None):
        builder = GraphBuilder()
        left = builder.add_vertex(0, 0, -1, is_virtual=True)
        a = builder.add_vertex(0, 0, 0)
        b = builder.add_vertex(0, 0, 1)
        c = builder.add_vertex(0, 0, 2)
        right = builder.add_vertex(0, 0, 3, is_virtual=True)
        builder.add_edge(left, a, 0.1, 0.1, observable=True, kind="boundary")
        builder.add_edge(a, b, 0.1, 0.1, kind="spatial")
        builder.add_edge(b, c, 0.1, 0.1, kind="spatial")
        builder.add_edge(c, right, 0.1, 0.1, kind="boundary")
        return builder.build()

    return build
