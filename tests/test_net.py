"""Network serving: routing, shared memory, digest identity, drain, faults.

The contract under test is the one ``docs/service.md`` states: the network
tier is a *pure transport*.  Any worker/process count serves bit-identical
outcomes (equal ``healthy_digest``), a dead worker yields isolated errors —
never a hang — and SIGTERM drains in-flight work before exit.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.evaluation.service_load import ServiceLoadEngine
from repro.service import CodeSpec, Scenario, ServiceConfig, TraceSpec
from repro.service.net import (
    HashRing,
    NetClient,
    NetServer,
    SharedGraphPack,
    SyndromeSlab,
    protocol,
    replay_network,
)
from repro.service.net.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    PROTOCOL_VERSION,
    ProtocolError,
    read_frame_sync,
    write_frame_sync,
)
from repro.service.net.bench import prewarm_specs, scaling_bench
from repro.service.trace import generate_trace

#: Small two-scenario trace: fast to replay, still exercises mixed routing.
NET_TRACE = TraceSpec(
    "net-test",
    (
        Scenario(3, physical_error_rate=0.02, decoder="micro-blossom"),
        Scenario(3, physical_error_rate=0.03, decoder="union-find"),
    ),
    requests=32,
    seed=11,
)

NET_CONFIG = ServiceConfig(max_batch_size=8, max_wait_seconds=0.001)


class TestHashRing:
    def test_deterministic_across_instances(self):
        hashes = [f"{value:016x}" for value in range(0, 2**64, 2**58)]
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 2, 1, 0])  # insertion order must not matter
        assert [a.route(h) for h in hashes] == [b.route(h) for h in hashes]

    def test_remove_only_moves_dead_workers_keys(self):
        ring = HashRing([0, 1, 2, 3])
        hashes = [f"{value:016x}" for value in range(0, 2**64, 2**56)]
        before = {h: ring.route(h) for h in hashes}
        ring.remove(2)
        for h, owner in before.items():
            if owner == 2:
                assert ring.route(h) != 2
            else:
                assert ring.route(h) == owner

    def test_empty_ring_raises_lookup_error(self):
        ring = HashRing([0])
        ring.remove(0)
        with pytest.raises(LookupError):
            ring.route("0" * 16)

    def test_distribution_covers_all_workers(self):
        ring = HashRing([0, 1, 2, 3])
        assignment = ring.assignment(f"{value:016x}" for value in range(0, 2**64, 2**54))
        assert all(assignment[worker] for worker in (0, 1, 2, 3))


class TestSharedMemory:
    def test_graph_pack_roundtrip(self):
        spec = CodeSpec(3, physical_error_rate=0.02)
        graph = spec.build_graph()
        pack = SharedGraphPack.create({spec.key(): graph})
        try:
            attached = SharedGraphPack.attach(pack.name)
            rebuilt = attached.graph(spec.key())
            assert rebuilt.vertices == graph.vertices
            assert rebuilt.edges == graph.edges
            assert rebuilt.metadata == graph.metadata
            assert attached.keys() == [spec.key()]
            attached.close()
        finally:
            pack.close()

    def test_syndrome_slab_roundtrip_and_exhaustion(self):
        slab = SyndromeSlab.create(slots=2, slot_capacity=4)
        try:
            a = slab.write([1, 2, 3])
            b = slab.write([])
            assert slab.read(a, 3) == (1, 2, 3)
            assert slab.read(b, 0) == ()
            assert slab.write([7]) is None  # exhausted -> inline fallback
            slab.free(a)
            c = slab.write([9, 9])
            assert slab.read(c, 2) == (9, 9)
            assert slab.write(list(range(5))) is None  # over slot capacity
            with pytest.raises(ValueError):
                slab.read(99, 1)
        finally:
            slab.close()


class TestDigestIdentity:
    def test_digest_identical_across_process_counts(self):
        inproc = ServiceLoadEngine(NET_TRACE, config=NET_CONFIG).run()
        entry, results = scaling_bench(
            NET_TRACE, process_counts=(1, 2, 4), config=NET_CONFIG
        )
        assert entry["digest_match"] is True
        for count, result in results.items():
            assert result.healthy_digest == inproc.healthy_digest, count
            assert result.completed == inproc.completed
            assert result.error_responses == 0
        efficiencies = [row["efficiency"] for row in entry["series"]]
        assert entry["series"][0]["efficiency"] == pytest.approx(1.0)
        assert all(e > 0 for e in efficiencies)
        assert entry["cpu_count"] >= 1

    def test_handshake_reports_config_hash_and_workers(self):
        server = NetServer(
            NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE)
        )
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                assert client.server_workers == 2
                assert client.server_config_hash == NET_CONFIG.config_hash()
        finally:
            server.stop()

    def test_stream_over_network_matches_direct(self):
        from repro.stream import get_streaming_decoder

        from repro.graphs import SyndromeSampler

        trace = generate_trace(NET_TRACE)
        key = NET_TRACE.scenarios[0].session_key()
        graph = trace.graphs[0]
        _, rounds = SyndromeSampler(graph, seed=5).sample_rounds()
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                stream = client.open_stream(key)
                wire = stream.decode_rounds(rounds)
        finally:
            server.stop()
        direct = get_streaming_decoder(key.decoder, graph, key.config)
        direct.begin(graph)
        for defects in rounds:
            direct.push_round(defects)
        outcome = direct.finalize()
        from repro.api.outcome import DecodeOutcome

        rebuilt = DecodeOutcome.from_dict(wire["outcome"])
        assert rebuilt.correction_edges(graph) == outcome.correction_edges(graph)
        assert rebuilt.weight == outcome.weight


class TestWorkerDeath:
    def test_killed_worker_errors_are_isolated(self):
        trace = generate_trace(NET_TRACE)
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            ring = HashRing([0, 1])
            victim = 0
            with NetClient(host, port) as client:
                baseline = client.decode_many(
                    [traced.request for traced in trace.requests]
                )
                assert all(response.ok for response in baseline)
                os.kill(server._workers[victim].process.pid, signal.SIGKILL)
                server._workers[victim].process.join(5.0)
                deadline = time.monotonic() + 5.0
                while server._workers[victim].alive and time.monotonic() < deadline:
                    time.sleep(0.01)
                responses = client.decode_many(
                    [traced.request for traced in trace.requests], timeout=30.0
                )
                for traced, before, after in zip(
                    trace.requests, baseline, responses
                ):
                    routed = ring.route(traced.request.session.key_hash())
                    if routed == victim:
                        # a key of the dead arc either re-routed cleanly or
                        # errored in isolation -- but never hangs (the
                        # decode_many timeout above is the hang gate)
                        assert after.status in ("ok", "error")
                    else:
                        assert after.ok
                        graph = trace.graphs[traced.scenario_index]
                        assert after.outcome.correction_edges(graph) == (
                            before.outcome.correction_edges(graph)
                        )
                # once the death has been routed around, everything succeeds
                final = client.decode_many(
                    [traced.request for traced in trace.requests], timeout=30.0
                )
                assert all(response.ok for response in final)
        finally:
            server.stop()

    def test_kill_mid_burst_never_hangs(self):
        trace = generate_trace(NET_TRACE)
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                futures = [
                    client.submit(traced.request)
                    for traced in trace.requests * 4
                ]
                os.kill(server._workers[1].process.pid, signal.SIGKILL)
                statuses = {future.result(timeout=30.0).status for future in futures}
                assert statuses <= {"ok", "error"}
        finally:
            server.stop()


class TestDrainAndReconnect:
    def test_stop_drains_inflight(self):
        trace = generate_trace(NET_TRACE)
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        client = NetClient(host, port)
        try:
            futures = [client.submit(traced.request) for traced in trace.requests]
            server.stop()
            responses = [future.result(timeout=30.0) for future in futures]
            assert all(response.ok for response in responses)
        finally:
            client.close()

    def test_reconnect_after_restart_resumes_session(self):
        trace = generate_trace(NET_TRACE)
        request = trace.requests[0].request
        graph = trace.graphs[trace.requests[0].scenario_index]

        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                before = client.decode(request, timeout=30.0)
        finally:
            server.stop()

        restarted = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = restarted.start()
        try:
            with NetClient(host, port) as client:
                after = client.decode(request, timeout=30.0)
        finally:
            restarted.stop()
        assert before.ok and after.ok
        assert after.outcome.correction_edges(graph) == before.outcome.correction_edges(
            graph
        )
        assert after.outcome.weight == before.outcome.weight


class TestSigtermDrain:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in (os.path.abspath("src"),)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve-net",
                "--serve",
                "--processes",
                "2",
                "--port",
                "0",
                "--prewarm-distances",
                "3",
                "--prewarm-error-rates",
                "0.02,0.03",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert banner.startswith("serving on "), banner
            address = banner.split()[2]
            host, port = address.rsplit(":", 1)

            trace = generate_trace(NET_TRACE)
            with NetClient(host, int(port), timeout=60.0) as client:
                futures = [
                    client.submit(traced.request) for traced in trace.requests
                ]
                process.send_signal(signal.SIGTERM)
                # SIGTERM drains: every in-flight request still resolves.
                responses = [future.result(timeout=30.0) for future in futures]
            assert all(response.ok for response in responses)
            assert process.wait(timeout=30.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)


class TestNetworkReplay:
    def test_replay_against_running_server(self):
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        server.start()
        try:
            result = replay_network(NET_TRACE, server=server)
        finally:
            server.stop()
        inproc = ServiceLoadEngine(NET_TRACE, config=NET_CONFIG).run()
        assert result.healthy_digest == inproc.healthy_digest
        assert result.completed == inproc.completed


class TestErasuresOverNetwork:
    """Heralded erasures must survive both wire hops: client → server
    (binary codec falls back to canonical JSON per frame) and server →
    worker (the syndrome-slab handoff carries defects only, so the worker's
    reconstruction must re-attach ``erasures`` from the wire form —
    regression: dropping them decoded on the unerased graph, same pairs but
    wrong weights)."""

    def test_noise_family_trace_digest_matches_in_process(self):
        from repro.service.trace import NOISE_FAMILY_SMOKE_TRACE

        server = NetServer(
            NET_CONFIG, processes=2, prewarm=prewarm_specs(NOISE_FAMILY_SMOKE_TRACE)
        )
        server.start()
        try:
            result = replay_network(NOISE_FAMILY_SMOKE_TRACE, server=server)
        finally:
            server.stop()
        inproc = ServiceLoadEngine(NOISE_FAMILY_SMOKE_TRACE, config=NET_CONFIG).run()
        assert result.error_responses == 0
        assert result.healthy_digest == inproc.healthy_digest

    def test_erased_syndrome_weight_matches_direct_decode(self):
        from repro.api import DecoderSession
        from repro.graphs import (
            SyndromeSampler,
            erasure_noise,
            surface_code_decoding_graph,
        )
        from repro.service import DecodeRequest, SessionKey
        from repro.service.request import STATUS_OK

        spec = CodeSpec(distance=3, physical_error_rate=0.015, noise="erasure")
        graph = surface_code_decoding_graph(3, erasure_noise(0.015))
        shots = SyndromeSampler(graph, seed=42).sample_batch(300)
        erased = [s for s in shots if s.erasures and s.defects][:6]
        assert erased, "sampling rate too low to herald any erased defects"
        session = DecoderSession(graph, "micro-blossom")
        key = SessionKey(spec, "micro-blossom")
        server = NetServer(NET_CONFIG, processes=2, prewarm=(spec,))
        server.start()
        try:
            host, port = server.host, server.port
            client = NetClient(host, port)
            requests = [DecodeRequest(key, shot) for shot in erased]
            # decode_many packs request-batch frames; the extra single
            # submit covers the per-request slab path too.
            responses = client.decode_many(requests) + [
                client.decode(DecodeRequest(key, erased[0]))
            ]
            for request, response in zip(requests + [requests[0]], responses):
                assert response.status == STATUS_OK, response.error
                direct = session.decode(request.syndrome)
                served = response.outcome.result
                assert sorted(served.pairs) == sorted(direct.pairs)
                assert served.weight == direct.weight
            client.close()
        finally:
            server.stop()


class TestConnectionRobustness:
    def test_client_survives_idle_gap_longer_than_handshake_timeout(self):
        """The handshake timeout must not tear down an idle steady-state
        connection: the reader thread blocks without a deadline, so a pause
        with no inbound frames is not a connection failure."""
        trace = generate_trace(NET_TRACE)
        server = NetServer(NET_CONFIG, processes=1, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port, timeout=0.3) as client:
                time.sleep(0.9)  # idle for 3x the handshake timeout
                response = client.decode(trace.requests[0].request, timeout=30.0)
                assert response.ok
        finally:
            server.stop()

    def test_submit_after_connection_loss_raises_instead_of_hanging(self):
        trace = generate_trace(NET_TRACE)
        server = NetServer(NET_CONFIG, processes=1, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        client = NetClient(host, port)
        try:
            assert client.decode(trace.requests[0].request, timeout=30.0).ok
            server.stop()
            deadline = time.monotonic() + 10.0
            while client._broken is None and time.monotonic() < deadline:
                time.sleep(0.01)
            assert client._broken is not None
            # A future registered after the reader died would never resolve;
            # the client must fail fast instead.
            with pytest.raises(ConnectionError):
                client.submit(trace.requests[0].request)
        finally:
            client.close()

    def test_malformed_requests_refused_without_killing_connection_or_slab(self):
        """A null syndrome or non-integer defects is a per-frame refusal:
        the connection stays up and every slab slot goes back to the free
        list (a leak here would exhaust the slab for the server's life)."""
        trace = generate_trace(NET_TRACE)
        server = NetServer(
            NET_CONFIG, processes=1, prewarm=prewarm_specs(NET_TRACE), slab_slots=4
        )
        host, port = server.start()
        try:
            free_before = len(server._slab._free)
            session_wire = trace.requests[0].request.session.to_dict()
            sock = socket.create_connection((host, port), timeout=30.0)
            try:
                write_frame_sync(
                    sock,
                    {"kind": "hello", "version": PROTOCOL_VERSION, "client": "hostile"},
                )
                assert read_frame_sync(sock)["kind"] == "welcome"
                write_frame_sync(
                    sock,
                    {
                        "kind": "request",
                        "id": 1,
                        "request": {"session": session_wire, "syndrome": None},
                    },
                )
                # More bad-defect frames than the slab has slots: each must
                # hand its slot back or the last ones would falsely exhaust.
                bad = 8
                for offset in range(bad):
                    write_frame_sync(
                        sock,
                        {
                            "kind": "request",
                            "id": 2 + offset,
                            "request": {
                                "session": session_wire,
                                "syndrome": {"defects": ["bogus"]},
                            },
                        },
                    )
                for _ in range(1 + bad):
                    frame = read_frame_sync(sock)
                    assert frame["kind"] == "error"
                    assert "bad request" in frame["error"]
                assert len(server._slab._free) == free_before
                # The connection is still perfectly serviceable.
                write_frame_sync(
                    sock,
                    {
                        "kind": "request",
                        "id": 99,
                        "request": trace.requests[0].request.to_dict(),
                    },
                )
                frame = read_frame_sync(sock)
                assert frame["kind"] == "response"
                assert frame["response"]["status"] == "ok"
                write_frame_sync(sock, {"kind": "bye"})
            finally:
                sock.close()
            deadline = time.monotonic() + 5.0
            while len(server._slab._free) != free_before and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(server._slab._free) == free_before
        finally:
            server.stop()

    def test_client_disconnect_mid_stream_cleans_up_server_state(self):
        key = NET_TRACE.scenarios[0].session_key()
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            client = NetClient(host, port)
            stream = client.open_stream(key, timeout=30.0)
            stream.begin().result(30.0)
            stream.push_round([]).result(30.0)
            assert server._streams
            client.close()  # no finalize: the stream is abandoned mid-flight
            deadline = time.monotonic() + 10.0
            while server._streams and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not server._streams
        finally:
            server.stop()


class TestWireV2:
    """Codec negotiation, batching, coalescing, and v1 interop end to end."""

    def test_mixed_version_interop_v1_client_same_answers(self):
        """A legacy JSON-v1 client against a v2 server decodes the exact
        same bits as a binary client on the same connection pool."""
        trace = generate_trace(NET_TRACE)
        requests = [traced.request for traced in trace.requests]
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as v2, NetClient(host, port, codecs=(1,)) as v1:
                assert v2.codec == CODEC_BINARY
                assert v1.codec == CODEC_JSON
                v2_responses = v2.decode_many(requests, timeout=30.0)
                v1_responses = v1.decode_many(requests, timeout=30.0)
        finally:
            server.stop()
        for traced, a, b in zip(trace.requests, v2_responses, v1_responses):
            assert a.ok and b.ok
            graph = trace.graphs[traced.scenario_index]
            assert a.outcome.correction_edges(graph) == b.outcome.correction_edges(graph)
            assert a.outcome.weight == b.outcome.weight

    def test_wire_stats_and_batch_frames(self):
        trace = generate_trace(NET_TRACE)
        requests = [traced.request for traced in trace.requests]
        server = NetServer(NET_CONFIG, processes=2, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                responses = client.decode_many(requests, timeout=30.0)
                stats = client.wire_stats()
        finally:
            server.stop()
        assert all(response.ok for response in responses)
        assert stats["codec"] == CODEC_BINARY
        assert stats["frames_sent"] >= 1
        assert stats["bytes_sent"] > 0
        assert stats["frames_received"] >= 1
        assert stats["bytes_received"] > 0
        histogram = stats["batch_histogram"]
        # decode_many packs one batch per predicted worker; every request is
        # accounted for and at least one genuine multi-member batch went out.
        assert sum(int(size) * count for size, count in histogram.items()) == len(requests)
        assert max(int(size) for size in histogram) >= 2

    def test_submit_coalescer_batches_under_pipeline(self):
        """Nagle-style coalescing: a burst of ``submit`` calls resolves
        correctly and at least some requests share a request-batch frame."""
        trace = generate_trace(NET_TRACE)
        server = NetServer(NET_CONFIG, processes=1, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                futures = [
                    client.submit(traced.request) for traced in trace.requests * 4
                ]
                responses = [future.result(timeout=30.0) for future in futures]
                stats = client.wire_stats()
        finally:
            server.stop()
        assert all(response.ok for response in responses)
        histogram = stats["batch_histogram"]
        assert sum(int(size) * count for size, count in histogram.items()) == len(futures)
        # The first submit goes out alone (idle fast path); under the
        # resulting pipeline later submissions must have coalesced.
        assert max(int(size) for size in histogram) >= 2

    def test_decode_many_splits_oversized_batches(self, monkeypatch):
        """A batch whose frame would exceed MAX_FRAME_BYTES is split client
        side; every member still gets exactly one answer."""
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 4096)
        trace = generate_trace(NET_TRACE)
        requests = [traced.request for traced in trace.requests]
        server = NetServer(NET_CONFIG, processes=1, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                responses = client.decode_many(requests, timeout=30.0)
                stats = client.wire_stats()
        finally:
            server.stop()
        assert all(response.ok for response in responses)
        histogram = stats["batch_histogram"]
        assert sum(int(size) * count for size, count in histogram.items()) == len(requests)
        # One process means one routing group: without the split this would
        # be a single batch of len(requests).
        assert sum(histogram.values()) >= 2
        assert max(int(size) for size in histogram) < len(requests)

    def test_single_oversized_syndrome_fails_with_clear_error(self, monkeypatch):
        """One syndrome too big for any frame fails its own future with an
        actionable message instead of tearing the connection down."""
        from repro.graphs.syndrome import Syndrome
        from repro.service import DecodeRequest

        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 4096)
        trace = generate_trace(NET_TRACE)
        key = trace.requests[0].request.session
        huge = DecodeRequest(key, Syndrome(defects=tuple(range(1200))))
        normal = trace.requests[0].request
        server = NetServer(NET_CONFIG, processes=1, prewarm=prewarm_specs(NET_TRACE))
        host, port = server.start()
        try:
            with NetClient(host, port) as client:
                with pytest.raises(ProtocolError, match="request too large for one frame"):
                    client.decode_many([huge, normal], timeout=30.0)
                # The connection survived the refusal.
                assert client.decode(normal, timeout=30.0).ok
        finally:
            server.stop()


class TestSaturation:
    def test_saturate_finds_knee_and_keeps_digest(self):
        engine = ServiceLoadEngine(NET_TRACE, config=NET_CONFIG)
        saturation = engine.saturate(client_ladder=(1, 2, 4))
        assert [point.clients for point in saturation.points] == [1, 2, 4]
        assert saturation.knee_clients in (1, 2, 4)
        assert saturation.digest_match is True
        assert saturation.peak_throughput_rps > 0

    def test_find_knee_marks_flat_ladder(self):
        from repro.evaluation.service_load import SaturationPoint, find_knee

        def point(clients, rps):
            return SaturationPoint(clients, 10, 10, 1.0, rps, 1.0, 2.0, "d")

        points = [point(1, 100.0), point(2, 190.0), point(4, 195.0), point(8, 196.0)]
        assert find_knee(points, 0.10).clients == 2
        rising = [point(1, 100.0), point(2, 200.0), point(4, 400.0)]
        assert find_knee(rising, 0.10).clients == 4
