"""Tests for error sampling, syndromes and matching-result evaluation."""

from __future__ import annotations

import pytest

from repro.graphs import (
    BOUNDARY,
    MatchingResult,
    SyndromeSampler,
    circuit_level_noise,
    correction_edges,
    is_logical_error,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.graphs.syndrome import matching_weight


class TestSampler:
    def test_seeded_sampler_is_deterministic(self, surface_d3_circuit):
        first = SyndromeSampler(surface_d3_circuit, seed=7).sample_batch(5)
        second = SyndromeSampler(surface_d3_circuit, seed=7).sample_batch(5)
        assert [s.defects for s in first] == [s.defects for s in second]
        assert [s.error_edges for s in first] == [s.error_edges for s in second]

    def test_different_seeds_differ(self, surface_d3_circuit):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.05))
        first = SyndromeSampler(graph, seed=1).sample_batch(10)
        second = SyndromeSampler(graph, seed=2).sample_batch(10)
        assert [s.error_edges for s in first] != [s.error_edges for s in second]

    def test_defects_exclude_virtual_vertices(self, surface_d3_circuit, sampler_d3):
        for _ in range(20):
            syndrome = sampler_d3.sample()
            for defect in syndrome.defects:
                assert not surface_d3_circuit.is_virtual(defect)

    def test_syndrome_from_errors_parity(self, surface_d3_circuit, sampler_d3):
        graph = surface_d3_circuit
        edge = graph.edges[0]
        syndrome = sampler_d3.syndrome_from_errors([edge.index])
        expected = {
            v for v in (edge.u, edge.v) if not graph.is_virtual(v)
        }
        assert set(syndrome.defects) == expected

    def test_two_errors_on_shared_vertex_cancel(self, surface_d3_circuit, sampler_d3):
        graph = surface_d3_circuit
        # Find two edges sharing a real vertex.
        shared = None
        for vertex in range(graph.num_vertices):
            if graph.is_virtual(vertex):
                continue
            incident = graph.neighbors(vertex)
            if len(incident) >= 2:
                shared = (vertex, incident[0][0], incident[1][0])
                break
        assert shared is not None
        vertex, edge_a, edge_b = shared
        syndrome = sampler_d3.syndrome_from_errors([edge_a, edge_b])
        assert vertex not in syndrome.defects

    def test_logical_flip_recorded(self, surface_d3_circuit, sampler_d3):
        observable_edge = next(iter(surface_d3_circuit.observable_edges))
        syndrome = sampler_d3.syndrome_from_errors([observable_edge])
        assert syndrome.logical_flip is True

    def test_defects_in_layers(self, surface_d3_circuit, sampler_d3):
        syndrome = sampler_d3.syndrome_from_errors(
            [e.index for e in surface_d3_circuit.edges[:4]]
        )
        subset = syndrome.defects_in_layers(surface_d3_circuit, {0})
        assert all(surface_d3_circuit.vertices[d].layer == 0 for d in subset)

    def test_defects_in_layers_accepts_any_iterable(self, surface_d3_circuit):
        graph = surface_d3_circuit
        sampler = SyndromeSampler(graph, seed=17)
        syndrome = next(
            s for s in sampler.sample_batch(100) if s.defect_count >= 2
        )
        layers = sorted({graph.vertices[d].layer for d in syndrome.defects})
        expected = syndrome.defects_in_layers(graph, set(layers))
        assert expected == syndrome.defects
        # list, range and one-shot generator must behave exactly like a set
        assert syndrome.defects_in_layers(graph, list(layers)) == expected
        assert (
            syndrome.defects_in_layers(graph, range(graph.num_layers)) == expected
        )
        generator = (layer for layer in layers)
        assert syndrome.defects_in_layers(graph, generator) == expected
        assert syndrome.defects_in_layers(graph, iter([])) == ()


class TestMatchingResult:
    def test_validate_perfect_accepts_complete_matching(self):
        result = MatchingResult(pairs=[(1, 2), (3, BOUNDARY)])
        result.validate_perfect([1, 2, 3])

    def test_validate_perfect_rejects_missing_defect(self):
        result = MatchingResult(pairs=[(1, 2)])
        with pytest.raises(ValueError):
            result.validate_perfect([1, 2, 3])

    def test_validate_perfect_rejects_duplicate(self):
        result = MatchingResult(pairs=[(1, 2), (2, BOUNDARY)])
        with pytest.raises(ValueError):
            result.validate_perfect([1, 2])

    def test_matched_vertices(self):
        result = MatchingResult(pairs=[(4, 5), (6, BOUNDARY)])
        assert sorted(result.matched_vertices()) == [4, 5, 6]


class TestEvaluation:
    def test_correction_annihilates_defects(self, surface_d3_circuit, sampler_d3):
        graph = surface_d3_circuit
        edge = next(
            e
            for e in graph.edges
            if not graph.is_virtual(e.u) and not graph.is_virtual(e.v)
        )
        syndrome = sampler_d3.syndrome_from_errors([edge.index])
        result = MatchingResult(pairs=[(edge.u, edge.v)])
        correction = correction_edges(graph, result)
        assert residual_defects(graph, syndrome, correction) == ()

    def test_correct_matching_avoids_logical_error(self, surface_d3_circuit, sampler_d3):
        graph = surface_d3_circuit
        edge = next(
            e
            for e in graph.edges
            if not graph.is_virtual(e.u) and not graph.is_virtual(e.v)
        )
        syndrome = sampler_d3.syndrome_from_errors([edge.index])
        result = MatchingResult(pairs=[(edge.u, edge.v)])
        assert is_logical_error(graph, syndrome, result) is False

    def test_boundary_match_uses_nearest_virtual_when_unspecified(
        self, surface_d3_circuit, sampler_d3
    ):
        graph = surface_d3_circuit
        observable_edge = next(iter(graph.observable_edges))
        edge = graph.edges[observable_edge]
        defect = edge.u if not graph.is_virtual(edge.u) else edge.v
        syndrome = sampler_d3.syndrome_from_errors([observable_edge])
        result = MatchingResult(pairs=[(defect, BOUNDARY)])
        correction = correction_edges(graph, result)
        assert residual_defects(graph, syndrome, correction) == ()

    def test_wrong_matching_is_logical_error(self):
        graph = surface_code_decoding_graph(3, circuit_level_noise(0.01))
        sampler = SyndromeSampler(graph, seed=0)
        observable_edge = next(iter(graph.observable_edges))
        edge = graph.edges[observable_edge]
        defect = edge.u if not graph.is_virtual(edge.u) else edge.v
        syndrome = sampler.syndrome_from_errors([observable_edge])
        # Match the defect to the *other* boundary: the correction plus the
        # error now forms a boundary-to-boundary chain, i.e. a logical error.
        far_boundary = [
            v
            for v in graph.virtual_vertices
            if v != graph.nearest_virtual(defect)[1]
            and graph.vertices[v].layer == graph.vertices[defect].layer
        ]
        result = MatchingResult(
            pairs=[(defect, BOUNDARY)], boundary_vertices={defect: far_boundary[0]}
        )
        assert is_logical_error(graph, syndrome, result) is True

    def test_is_logical_error_requires_ground_truth(self, surface_d3_circuit):
        from repro.graphs import Syndrome

        syndrome = Syndrome(defects=())
        with pytest.raises(ValueError):
            is_logical_error(surface_d3_circuit, syndrome, MatchingResult())

    def test_matching_weight_pairs_and_boundary(self, path_graph_builder):
        graph = path_graph_builder()
        weight = graph.edges[0].weight
        result = MatchingResult(
            pairs=[(1, 3), (2, BOUNDARY)], boundary_vertices={2: 0}
        )
        assert matching_weight(graph, result) == 2 * weight + 2 * weight

    def test_matching_weight_uses_nearest_boundary_by_default(self, path_graph_builder):
        graph = path_graph_builder()
        weight = graph.edges[0].weight
        result = MatchingResult(pairs=[(1, BOUNDARY)])
        assert matching_weight(graph, result) == weight
