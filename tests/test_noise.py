"""Unit tests for the noise models."""

from __future__ import annotations

import pytest

from repro.graphs import (
    NOISE_FAMILY_NAMES,
    NoiseModel,
    NoiseModelError,
    circuit_level_noise,
    code_capacity_noise,
    correlated_burst_noise,
    erasure_noise,
    noise_model_by_name,
    phenomenological_noise,
    time_varying_noise,
)


class TestFactories:
    def test_code_capacity_has_no_temporal_errors(self):
        model = code_capacity_noise(0.01)
        assert model.temporal == 0.0
        assert model.diagonal == 0.0
        assert not model.is_three_dimensional

    def test_phenomenological_has_temporal_errors(self):
        model = phenomenological_noise(0.01)
        assert model.temporal == 0.01
        assert model.diagonal == 0.0
        assert model.is_three_dimensional

    def test_circuit_level_has_diagonal_errors(self):
        model = circuit_level_noise(0.01)
        assert model.diagonal > 0.0
        assert model.is_three_dimensional

    def test_circuit_level_hook_fraction_scales_diagonal(self):
        full = circuit_level_noise(0.01, hook_fraction=1.0)
        half = circuit_level_noise(0.01, hook_fraction=0.5)
        assert half.diagonal == pytest.approx(full.diagonal / 2)

    def test_invalid_hook_fraction_rejected(self):
        with pytest.raises(NoiseModelError):
            circuit_level_noise(0.01, hook_fraction=0.0)
        with pytest.raises(NoiseModelError):
            circuit_level_noise(0.01, hook_fraction=1.5)


class TestRicherFamilies:
    def test_correlated_burst_defaults(self):
        model = correlated_burst_noise(0.01)
        assert model.name == "correlated_burst"
        assert model.burst_multiplier == 4.0
        assert 0.0 < model.burst_entry < 1.0
        assert 0.0 < model.burst_exit <= 1.0
        assert model.is_dynamic
        assert model.is_three_dimensional

    def test_erasure_default_rate_tracks_p(self):
        assert erasure_noise(0.01).erasure == pytest.approx(0.02)
        assert erasure_noise(0.2).erasure == pytest.approx(0.25)  # clamped
        assert erasure_noise(0.01, erasure=0.1).erasure == 0.1
        assert erasure_noise(0.01).is_dynamic

    def test_time_varying_schedule_cycles(self):
        model = time_varying_noise(0.01, schedule=(1.0, 2.0, 0.5))
        assert model.round_multiplier(0) == 1.0
        assert model.round_multiplier(1) == 2.0
        assert model.round_multiplier(4) == 2.0  # cycles mod len(schedule)
        assert not model.is_dynamic  # static reweighting, not per-shot state
        assert model.minimum_probability == pytest.approx(0.005)

    def test_time_varying_rejects_empty_schedule(self):
        with pytest.raises(NoiseModelError):
            time_varying_noise(0.01, schedule=())

    def test_burst_peak_probability_capped(self):
        # boosted peak 0.2 * 4 = 0.8 >= 0.5 must be refused up front
        with pytest.raises(NoiseModelError):
            correlated_burst_noise(0.2)

    def test_schedule_peak_probability_capped(self):
        with pytest.raises(NoiseModelError):
            time_varying_noise(0.3, schedule=(1.0, 2.0))

    @pytest.mark.parametrize(
        "field, value",
        [
            ("burst_multiplier", 0.5),
            ("burst_entry", 1.0),
            ("burst_exit", 0.0),
            ("erasure", 0.5),
            ("schedule", (0.0,)),
        ],
    )
    def test_invalid_dynamic_fields_rejected(self, field, value):
        with pytest.raises(NoiseModelError):
            NoiseModel(
                "custom",
                spatial=0.01,
                temporal=0.01,
                diagonal=0.0,
                boundary=0.01,
                **{field: value},
            )

    def test_serialization_omits_defaults(self):
        """Static families keep their historical wire form byte for byte."""
        data = phenomenological_noise(0.01).to_dict()
        assert set(data) == {"name", "spatial", "temporal", "diagonal", "boundary"}
        rich = correlated_burst_noise(0.01).to_dict()
        assert {"burst_multiplier", "burst_entry", "burst_exit"} <= set(rich)
        assert "erasure" not in rich and "schedule" not in rich

    @pytest.mark.parametrize(
        "model",
        [
            correlated_burst_noise(0.01),
            erasure_noise(0.01),
            time_varying_noise(0.01, schedule=(1.0, 1.5, 0.5)),
        ],
        ids=lambda m: m.name,
    )
    def test_round_trip(self, model):
        assert NoiseModel.from_dict(model.to_dict()) == model
        assert NoiseModel.from_dict(model.to_dict()).model_hash() == model.model_hash()


class TestValidation:
    def test_zero_spatial_probability_rejected(self):
        with pytest.raises(NoiseModelError):
            NoiseModel("custom", spatial=0.0, temporal=0.0, diagonal=0.0, boundary=0.0)

    @pytest.mark.parametrize("bad", [-0.01, 0.5, 0.9])
    def test_out_of_range_probability_rejected(self, bad):
        with pytest.raises(NoiseModelError):
            NoiseModel("custom", spatial=bad, temporal=0.0, diagonal=0.0, boundary=0.01)

    def test_minimum_probability_ignores_zero_entries(self):
        model = NoiseModel(
            "custom", spatial=0.01, temporal=0.0, diagonal=0.0, boundary=0.002
        )
        assert model.minimum_probability == 0.002

    def test_probability_for_kind(self):
        model = circuit_level_noise(0.01)
        assert model.probability_for_kind("spatial") == 0.01
        assert model.probability_for_kind("temporal") == 0.01
        assert model.probability_for_kind("diagonal") == pytest.approx(0.005)
        assert model.probability_for_kind("boundary") == 0.01


class TestByName:
    def test_family_name_list_is_pinned(self):
        """The public family list is part of the wire/CLI contract."""
        assert NOISE_FAMILY_NAMES == (
            "circuit_level",
            "code_capacity",
            "correlated_burst",
            "erasure",
            "phenomenological",
            "time_varying",
        )

    @pytest.mark.parametrize("name", NOISE_FAMILY_NAMES)
    def test_known_names(self, name):
        model = noise_model_by_name(name, 0.01)
        assert model.name == name
        assert model.spatial == 0.01

    def test_unknown_name_rejected_with_family_list(self):
        with pytest.raises(NoiseModelError) as excinfo:
            noise_model_by_name("depolarizing", 0.01)
        message = str(excinfo.value)
        for name in NOISE_FAMILY_NAMES:
            assert name in message
