"""Unit tests for the noise models."""

from __future__ import annotations

import pytest

from repro.graphs import (
    NoiseModel,
    NoiseModelError,
    circuit_level_noise,
    code_capacity_noise,
    noise_model_by_name,
    phenomenological_noise,
)


class TestFactories:
    def test_code_capacity_has_no_temporal_errors(self):
        model = code_capacity_noise(0.01)
        assert model.temporal == 0.0
        assert model.diagonal == 0.0
        assert not model.is_three_dimensional

    def test_phenomenological_has_temporal_errors(self):
        model = phenomenological_noise(0.01)
        assert model.temporal == 0.01
        assert model.diagonal == 0.0
        assert model.is_three_dimensional

    def test_circuit_level_has_diagonal_errors(self):
        model = circuit_level_noise(0.01)
        assert model.diagonal > 0.0
        assert model.is_three_dimensional

    def test_circuit_level_hook_fraction_scales_diagonal(self):
        full = circuit_level_noise(0.01, hook_fraction=1.0)
        half = circuit_level_noise(0.01, hook_fraction=0.5)
        assert half.diagonal == pytest.approx(full.diagonal / 2)

    def test_invalid_hook_fraction_rejected(self):
        with pytest.raises(NoiseModelError):
            circuit_level_noise(0.01, hook_fraction=0.0)
        with pytest.raises(NoiseModelError):
            circuit_level_noise(0.01, hook_fraction=1.5)


class TestValidation:
    def test_zero_spatial_probability_rejected(self):
        with pytest.raises(NoiseModelError):
            NoiseModel("custom", spatial=0.0, temporal=0.0, diagonal=0.0, boundary=0.0)

    @pytest.mark.parametrize("bad", [-0.01, 0.5, 0.9])
    def test_out_of_range_probability_rejected(self, bad):
        with pytest.raises(NoiseModelError):
            NoiseModel("custom", spatial=bad, temporal=0.0, diagonal=0.0, boundary=0.01)

    def test_minimum_probability_ignores_zero_entries(self):
        model = NoiseModel(
            "custom", spatial=0.01, temporal=0.0, diagonal=0.0, boundary=0.002
        )
        assert model.minimum_probability == 0.002

    def test_probability_for_kind(self):
        model = circuit_level_noise(0.01)
        assert model.probability_for_kind("spatial") == 0.01
        assert model.probability_for_kind("temporal") == 0.01
        assert model.probability_for_kind("diagonal") == pytest.approx(0.005)
        assert model.probability_for_kind("boundary") == 0.01


class TestByName:
    @pytest.mark.parametrize(
        "name", ["code_capacity", "phenomenological", "circuit_level"]
    )
    def test_known_names(self, name):
        model = noise_model_by_name(name, 0.01)
        assert model.name == name
        assert model.spatial == 0.01

    def test_unknown_name_rejected(self):
        with pytest.raises(NoiseModelError):
            noise_model_by_name("depolarizing", 0.01)
