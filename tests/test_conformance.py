"""Randomized cross-decoder conformance suite.

Every decoder in the registry is driven over the same seeded random syndromes
across all three noise families, checking the structural contract every
backend must satisfy on every shot:

* the correction annihilates every defect (no residual syndrome);
* the defect pairing is a *perfect* matching (each defect matched exactly
  once);
* the matching weight realised on the decoding graph never beats the
  reference MWPM optimum — and equals it for the exact decoders;
* pushing the same syndrome round by round through the streaming protocol
  (``begin`` / ``push_round`` / ``finalize``) yields an outcome identical —
  matching weight and correction — to the backend's own batch decode.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.api import available_decoders, get_decoder
from repro.graphs import (
    Syndrome,
    SyndromeSampler,
    circuit_level_noise,
    code_capacity_noise,
    phenomenological_noise,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.graphs.syndrome import matching_weight
from repro.matching import ReferenceDecoder
from repro.stream import get_streaming_decoder

#: Decoders guaranteed to realise the exact minimum-weight perfect matching.
_EXACT_BASE = {"micro-blossom", "micro-blossom-batch", "parity-blossom", "reference"}
#: ``lut+X`` replays outcomes produced by ``X`` itself, so it inherits (and
#: must preserve) the exactness of whatever it wraps.
EXACT_DECODERS = _EXACT_BASE | {f"lut+{name}" for name in _EXACT_BASE}

#: Every backend the LUT pre-decoder can wrap (the non-lut registry names).
LUT_BASES = ("micro-blossom", "micro-blossom-batch", "parity-blossom", "reference", "union-find")

NOISE_FAMILIES = {
    "code_capacity": lambda: surface_code_decoding_graph(
        5, code_capacity_noise(0.06)
    ),
    "phenomenological": lambda: surface_code_decoding_graph(
        3, phenomenological_noise(0.04)
    ),
    "circuit_level": lambda: surface_code_decoding_graph(
        3, circuit_level_noise(0.03)
    ),
}

SHOTS_PER_FAMILY = 25


@pytest.fixture(scope="module", params=sorted(NOISE_FAMILIES))
def conformance_case(request):
    """One noise family: its graph, seeded syndromes and reference optima."""
    graph = NOISE_FAMILIES[request.param]()
    sampler = SyndromeSampler(graph, seed=20260729)
    syndromes = [
        s for s in sampler.sample_batch(SHOTS_PER_FAMILY * 2) if s.defects
    ][:SHOTS_PER_FAMILY]
    assert len(syndromes) >= 10, "noise too weak to exercise the decoders"
    reference = ReferenceDecoder(graph)
    optima = [reference.decode(s).weight for s in syndromes]
    return request.param, graph, syndromes, optima


def test_registry_has_all_backends():
    assert EXACT_DECODERS | {"union-find", "lut+union-find"} <= set(available_decoders())
    assert {f"lut+{name}" for name in LUT_BASES} <= set(available_decoders())


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_decoder_conformance(conformance_case, name):
    family, graph, syndromes, optima = conformance_case
    decoder = get_decoder(name, graph)
    for syndrome, optimum in zip(syndromes, optima):
        label = f"{name} on {family} defects={syndrome.defects}"

        # 1. the correction must annihilate the syndrome on every shot
        correction = decoder.decode_to_correction(syndrome)
        assert residual_defects(graph, syndrome, correction) == (), label

        # 2. the defect pairing must be a perfect matching on every shot
        result = decoder.decode(syndrome)
        result.validate_perfect(syndrome.defects)

        # 3. realised matching weight never beats the reference MWPM optimum
        realised = matching_weight(graph, result)
        assert realised >= optimum, label
        if name in EXACT_DECODERS:
            assert result.weight == optimum, label
            assert realised == optimum, label


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_decode_detailed_correction_matches_decode(conformance_case, name):
    """The protocol surfaces agree: outcome corrections annihilate defects."""
    family, graph, syndromes, _ = conformance_case
    decoder = get_decoder(name, graph)
    for syndrome in syndromes[:8]:
        outcome = decoder.decode_detailed(syndrome)
        correction = outcome.correction_edges(graph)
        assert residual_defects(graph, syndrome, correction) == (), (
            f"{name} on {family}"
        )
        assert outcome.defect_count == syndrome.defect_count


def _stream_decode(session, graph, syndrome):
    """Push a syndrome round by round and return (outcome, push counters)."""
    session.begin(graph, rounds_hint=graph.num_layers)
    pushes = [
        session.push_round(round_defects)
        for round_defects in syndrome.defects_by_layer(graph)
    ]
    return session.finalize(), pushes


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_streamed_equals_batch_for_every_backend(conformance_case, name):
    """Round-pushed decoding is exactness-preserving on every backend.

    The acceptance contract of the streaming subsystem: for each registered
    decoder, pushing rounds one at a time yields a ``DecodeOutcome`` whose
    matching weight and correction are identical to batch ``decode`` on the
    same syndrome, across every noise family of the seeded grid.
    """
    family, graph, syndromes, _ = conformance_case
    batch = get_decoder(name, graph)
    stream = get_streaming_decoder(name, graph)
    for syndrome in syndromes:
        label = f"{name} on {family} defects={syndrome.defects}"
        outcome, pushes = _stream_decode(stream, graph, syndrome)
        assert all(isinstance(push, Counter) for push in pushes)
        batch_outcome = batch.decode_detailed(syndrome)
        assert outcome.correction_edges(graph) == batch_outcome.correction_edges(
            graph
        ), label
        if outcome.result is not None and batch_outcome.result is not None:
            assert outcome.result.weight == batch_outcome.result.weight, label
        assert outcome.defect_count == syndrome.defect_count


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_streaming_zero_defect_and_empty_round_fast_paths(name):
    """Empty rounds cost (nearly) nothing and zero-defect streams are exact."""
    graph = surface_code_decoding_graph(3, phenomenological_noise(0.04))
    stream = get_streaming_decoder(name, graph)
    batch = get_decoder(name, graph)

    # an all-empty stream decodes to the empty matching / empty correction
    empty = Syndrome(defects=())
    outcome, _ = _stream_decode(stream, graph, empty)
    assert outcome.correction_edges(graph) == batch.decode_to_correction(empty)
    assert outcome.correction_edges(graph) == set()
    assert outcome.weight == 0

    # a syndrome whose defects sit in the last round only: the leading empty
    # rounds are pure loads, and the streamed outcome still matches batch
    last_layer = graph.num_layers - 1
    defect = next(
        v for v in graph.vertices_in_layer(last_layer) if not graph.is_virtual(v)
    )
    syndrome = Syndrome(defects=(defect,))
    outcome, pushes = _stream_decode(stream, graph, syndrome)
    assert outcome.correction_edges(graph) == batch.decode_to_correction(syndrome)
    # every round before the defect's contributes no primal/dual work
    for push in pushes[:-1]:
        assert push.get("instr_find_obstacle", 0) == 0, name


@pytest.mark.parametrize("base", LUT_BASES)
def test_lut_is_bit_identical_to_fallback(conformance_case, base):
    """``lut+X`` returns exactly what ``X`` would, hit or miss, on every shot.

    The LUT acceptance contract: the table replays outcomes the fallback
    itself produced at build time, and misses fall through unchanged — so the
    correction edge set, matching weight and logical-flip verdict must be
    identical shot for shot across every noise family, with the table
    actually serving a non-trivial share of the shots.
    """
    family, graph, syndromes, _ = conformance_case
    fallback = get_decoder(base, graph)
    lut = get_decoder(f"lut+{base}", graph)
    for syndrome in syndromes:
        label = f"lut+{base} on {family} defects={syndrome.defects}"
        expected = fallback.decode_detailed(syndrome)
        got = lut.decode_detailed(syndrome)
        assert got.correction_edges(graph) == expected.correction_edges(graph), label
        assert got.weight == expected.weight, label
        assert got.is_exact == expected.is_exact, label
        expected_flip = graph.crosses_observable(expected.correction_edges(graph))
        assert graph.crosses_observable(got.correction_edges(graph)) == expected_flip, label
        assert lut.decode(syndrome).weight == fallback.decode(syndrome).weight, label
    assert lut.stats()["hits"] > 0, f"lut+{base} on {family}: table never hit"

    # zero-defect: the dedicated fast path must serve the empty syndrome
    empty = Syndrome(defects=())
    assert lut.decode_detailed(empty).correction_edges(graph) == set()
    assert lut.decode(empty).weight == 0
    assert lut.stats()["zero_defect_hits"] > 0


@pytest.mark.parametrize("base", LUT_BASES)
def test_lut_streamed_equals_fallback_streamed(base):
    """Streamed shots bypass the table and stay identical to the fallback."""
    graph = surface_code_decoding_graph(3, phenomenological_noise(0.04))
    sampler = SyndromeSampler(graph, seed=20260806)
    syndromes = [s for s in sampler.sample_batch(20) if s.defects][:8]
    assert syndromes
    for syndrome in syndromes + [Syndrome(defects=())]:
        expected, _ = _stream_decode(get_streaming_decoder(base, graph), graph, syndrome)
        got, _ = _stream_decode(get_streaming_decoder(f"lut+{base}", graph), graph, syndrome)
        assert got.correction_edges(graph) == expected.correction_edges(graph), base
        assert got.weight == expected.weight, base
