"""Randomized cross-decoder conformance suite.

Every decoder in the registry is driven over the same seeded random syndromes
across all three noise families, checking the structural contract every
backend must satisfy on every shot:

* the correction annihilates every defect (no residual syndrome);
* the defect pairing is a *perfect* matching (each defect matched exactly
  once);
* the matching weight realised on the decoding graph never beats the
  reference MWPM optimum — and equals it for the exact decoders.
"""

from __future__ import annotations

import pytest

from repro.api import available_decoders, get_decoder
from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    code_capacity_noise,
    phenomenological_noise,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.graphs.syndrome import matching_weight
from repro.matching import ReferenceDecoder

#: Decoders guaranteed to realise the exact minimum-weight perfect matching.
EXACT_DECODERS = {"micro-blossom", "micro-blossom-batch", "parity-blossom", "reference"}

NOISE_FAMILIES = {
    "code_capacity": lambda: surface_code_decoding_graph(
        5, code_capacity_noise(0.06)
    ),
    "phenomenological": lambda: surface_code_decoding_graph(
        3, phenomenological_noise(0.04)
    ),
    "circuit_level": lambda: surface_code_decoding_graph(
        3, circuit_level_noise(0.03)
    ),
}

SHOTS_PER_FAMILY = 25


@pytest.fixture(scope="module", params=sorted(NOISE_FAMILIES))
def conformance_case(request):
    """One noise family: its graph, seeded syndromes and reference optima."""
    graph = NOISE_FAMILIES[request.param]()
    sampler = SyndromeSampler(graph, seed=20260729)
    syndromes = [
        s for s in sampler.sample_batch(SHOTS_PER_FAMILY * 2) if s.defects
    ][:SHOTS_PER_FAMILY]
    assert len(syndromes) >= 10, "noise too weak to exercise the decoders"
    reference = ReferenceDecoder(graph)
    optima = [reference.decode(s).weight for s in syndromes]
    return request.param, graph, syndromes, optima


def test_registry_has_all_backends():
    assert EXACT_DECODERS | {"union-find"} <= set(available_decoders())


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_decoder_conformance(conformance_case, name):
    family, graph, syndromes, optima = conformance_case
    decoder = get_decoder(name, graph)
    for syndrome, optimum in zip(syndromes, optima):
        label = f"{name} on {family} defects={syndrome.defects}"

        # 1. the correction must annihilate the syndrome on every shot
        correction = decoder.decode_to_correction(syndrome)
        assert residual_defects(graph, syndrome, correction) == (), label

        # 2. the defect pairing must be a perfect matching on every shot
        result = decoder.decode(syndrome)
        result.validate_perfect(syndrome.defects)

        # 3. realised matching weight never beats the reference MWPM optimum
        realised = matching_weight(graph, result)
        assert realised >= optimum, label
        if name in EXACT_DECODERS:
            assert result.weight == optimum, label
            assert realised == optimum, label


@pytest.mark.parametrize("name", sorted(available_decoders()))
def test_decode_detailed_correction_matches_decode(conformance_case, name):
    """The protocol surfaces agree: outcome corrections annihilate defects."""
    family, graph, syndromes, _ = conformance_case
    decoder = get_decoder(name, graph)
    for syndrome in syndromes[:8]:
        outcome = decoder.decode_detailed(syndrome)
        correction = outcome.correction_edges(graph)
        assert residual_defects(graph, syndrome, correction) == (), (
            f"{name} on {family}"
        )
        assert outcome.defect_count == syndrome.defect_count
