"""Tests of the FPGA resource model (Table 4)."""

from __future__ import annotations

import pytest

from repro.resources import (
    PAPER_TABLE_4,
    VMK180_LUTS,
    VP1902_LUTS,
    estimate_resources,
    maximum_distance_for_luts,
    minimum_frequency_for_sub_microsecond,
    paper_edge_count,
    paper_row,
    paper_vertex_count,
    resource_table,
    vpu_state_bits,
)


class TestGraphSizeFormulas:
    @pytest.mark.parametrize("distance", sorted(PAPER_TABLE_4))
    def test_vertex_count_matches_table(self, distance):
        assert paper_vertex_count(distance) == PAPER_TABLE_4[distance]["V"]

    @pytest.mark.parametrize("distance", sorted(PAPER_TABLE_4))
    def test_edge_count_matches_table(self, distance):
        assert paper_edge_count(distance) == PAPER_TABLE_4[distance]["E"]

    def test_edge_count_extrapolates_cubically(self):
        e17 = paper_edge_count(17)
        e15 = paper_edge_count(15)
        assert e17 > e15
        assert e17 < e15 * 2

    def test_invalid_distance_rejected(self):
        with pytest.raises(ValueError):
            paper_vertex_count(4)


class TestResourceEstimates:
    @pytest.mark.parametrize("distance", sorted(PAPER_TABLE_4))
    def test_lut_estimate_within_twenty_percent(self, distance):
        estimate = estimate_resources(distance)
        published = PAPER_TABLE_4[distance]["luts"]
        assert abs(estimate.luts - published) / published < 0.20

    @pytest.mark.parametrize("distance", sorted(PAPER_TABLE_4))
    def test_vpu_bits_close_to_table(self, distance):
        estimate = estimate_resources(distance)
        published = PAPER_TABLE_4[distance]["vpu_bits"]
        assert abs(estimate.vpu_state_bits - published) <= 4

    def test_epu_bits_match_table(self):
        for distance in PAPER_TABLE_4:
            assert estimate_resources(distance).epu_state_bits == 4

    def test_resources_grow_monotonically(self):
        estimates = resource_table()
        luts = [e.luts for e in estimates]
        memory = [e.fpga_memory_bits for e in estimates]
        assert luts == sorted(luts)
        assert memory == sorted(memory)

    def test_clock_frequency_from_table(self):
        assert estimate_resources(13).clock_frequency_mhz == pytest.approx(62.0)

    def test_custom_graph_sizes(self, surface_d3_circuit):
        estimate = estimate_resources(
            3,
            num_vertices=surface_d3_circuit.num_vertices,
            num_edges=surface_d3_circuit.num_edges,
        )
        assert estimate.num_vertices == surface_d3_circuit.num_vertices
        assert estimate.num_edges == surface_d3_circuit.num_edges

    def test_paper_row_lookup(self):
        assert paper_row(13)["luts"] == 553_000
        assert paper_row(17) is None

    def test_fits_on(self):
        assert estimate_resources(13).fits_on(VMK180_LUTS)
        assert not estimate_resources(21).fits_on(VMK180_LUTS)


class TestScalingConclusions:
    def test_vmk180_supports_up_to_d15(self):
        """§8.4: the VMK180 (900 k LUTs) supports up to d = 15."""
        assert maximum_distance_for_luts(VMK180_LUTS) == 15

    def test_vp1902_supports_about_d31(self):
        """§8.4: the largest SoC (8.5 M LUTs) supports up to about d = 31."""
        assert maximum_distance_for_luts(VP1902_LUTS) in (29, 31, 33)

    def test_minimum_frequency_anchor(self):
        """§8.4: sub-µs latency at d = 15 needs at least 68 MHz."""
        assert minimum_frequency_for_sub_microsecond(15) == pytest.approx(68.0)

    def test_minimum_frequency_scales_with_d_squared(self):
        f15 = minimum_frequency_for_sub_microsecond(15)
        f30 = minimum_frequency_for_sub_microsecond(30)
        assert f30 == pytest.approx(4 * f15)

    def test_vpu_bits_grow_with_graph_size(self):
        assert vpu_state_bits(2000, 15) > vpu_state_bits(24, 3)
