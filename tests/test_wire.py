"""Wire-codec round-trips and golden pins for the service request types.

The network protocol's frames carry exactly what ``to_dict`` emits, hashed
and framed as canonical JSON — so these dict forms ARE the wire format.  The
golden pins below freeze them: any change to a pinned string is a protocol
break that needs a :data:`repro.service.net.PROTOCOL_VERSION` bump, not a
silent reshuffle.  The binary codec (codec 2) has its own byte-level pins
plus hypothesis round-trip properties over both codecs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import UnionFindConfig
from repro.api.hashing import canonical_json
from repro.graphs.syndrome import Syndrome
from repro.service import CodeSpec, DecodeRequest, DecodeResponse, SessionKey
from repro.service.net.protocol import (
    CODEC_BINARY,
    CODEC_JSON,
    PROTOCOL_VERSION,
    SUPPORTED_CODECS,
    ProtocolError,
    decode_payload,
    encode_frame,
    negotiate_codec,
)


def _key() -> SessionKey:
    return SessionKey(CodeSpec(3, physical_error_rate=0.02), "union-find")


def _request() -> DecodeRequest:
    return DecodeRequest(
        session=_key(),
        syndrome=Syndrome(defects=(1, 4), logical_flip=False),
        request_id=7,
    )


class TestGoldenPins:
    """Frozen canonical-JSON wire forms.  A failing pin = a wire break."""

    def test_code_spec_pin(self):
        assert canonical_json(CodeSpec(3, physical_error_rate=0.02).to_dict()) == (
            '{"distance":3,"noise":"circuit_level","physical_error_rate":0.02,'
            '"rounds":null}'
        )

    def test_session_key_pin(self):
        assert canonical_json(_key().to_dict()) == (
            '{"code":{"distance":3,"noise":"circuit_level",'
            '"physical_error_rate":0.02,"rounds":null},'
            '"config":{"fields":{},"type":"UnionFindConfig"},'
            '"decoder":"union-find"}'
        )

    def test_syndrome_pin(self):
        assert canonical_json(Syndrome(defects=(1, 4), logical_flip=False).to_dict()) == (
            '{"defects":[1,4],"error_edges":[],"logical_flip":false}'
        )

    def test_request_pin(self):
        assert canonical_json(_request().to_dict()) == (
            '{"request_id":7,"session":{"code":{"distance":3,'
            '"noise":"circuit_level","physical_error_rate":0.02,"rounds":null},'
            '"config":{"fields":{},"type":"UnionFindConfig"},'
            '"decoder":"union-find"},'
            '"syndrome":{"defects":[1,4],"error_edges":[],"logical_flip":false}}'
        )

    def test_session_key_hash_pin(self):
        # Routing depends on this hash: moving it re-routes every session.
        assert _key().key_hash() == "09247a96af1cf97c"

    def test_protocol_version_pin(self):
        assert PROTOCOL_VERSION == 1


class TestRoundTrips:
    def test_code_spec(self):
        spec = CodeSpec(5, noise="phenomenological", physical_error_rate=0.01, rounds=3)
        assert CodeSpec.from_dict(spec.to_dict()) == spec

    def test_session_key(self):
        key = SessionKey(
            CodeSpec(3, physical_error_rate=0.02),
            "union-find",
            UnionFindConfig(),
        )
        rebuilt = SessionKey.from_dict(key.to_dict())
        assert rebuilt.key() == key.key()
        assert rebuilt.key_hash() == key.key_hash()

    def test_session_key_null_config_uses_registry_default(self):
        wire = _key().to_dict()
        wire["config"] = None
        assert SessionKey.from_dict(wire).key() == _key().key()

    def test_syndrome(self):
        syndrome = Syndrome(defects=(0, 3, 9), error_edges=(2,), logical_flip=True)
        rebuilt = Syndrome.from_dict(syndrome.to_dict())
        assert rebuilt.defects == syndrome.defects
        assert rebuilt.error_edges == syndrome.error_edges
        assert rebuilt.logical_flip is True

    def test_request(self):
        request = _request()
        rebuilt = DecodeRequest.from_dict(request.to_dict())
        assert rebuilt.session.key() == request.session.key()
        assert rebuilt.syndrome.defects == request.syndrome.defects
        assert rebuilt.request_id == 7

    def test_response_roundtrip_carries_outcome(self):
        from repro.api.registry import get_decoder

        request = _request()
        graph = request.session.code.build_graph()
        outcome = get_decoder("union-find", graph).decode_detailed(request.syndrome)
        response = DecodeResponse(
            request=request,
            status="ok",
            outcome=outcome,
            queue_delay_seconds=0.25,
            latency_seconds=0.5,
            batch_size=3,
            cached=True,
        )
        rebuilt = DecodeResponse.from_dict(response.to_dict())
        assert rebuilt.status == "ok"
        assert rebuilt.cached is True
        assert rebuilt.batch_size == 3
        assert rebuilt.queue_delay_seconds == 0.25
        assert rebuilt.outcome.correction_edges(graph) == outcome.correction_edges(graph)
        assert rebuilt.outcome.weight == outcome.weight
        assert rebuilt.request.session.key() == request.session.key()

    def test_error_response_roundtrip(self):
        response = DecodeResponse(
            request=_request(), status="error", error="PoisonedSyndromeError: boom"
        )
        rebuilt = DecodeResponse.from_dict(response.to_dict())
        assert rebuilt.status == "error"
        assert rebuilt.outcome is None
        assert rebuilt.error == "PoisonedSyndromeError: boom"


class TestFraming:
    def test_frame_roundtrip(self):
        frame = {"kind": "request", "id": 3, "request": _request().to_dict()}
        encoded = encode_frame(frame)
        length = int.from_bytes(encoded[:4], "big")
        assert length == len(encoded) - 4
        assert decode_payload(encoded[4:]) == frame

    def test_frame_bytes_are_canonical(self):
        # Key order must not leak into the bytes: same content, same frame.
        a = encode_frame({"kind": "bye", "id": 1})
        b = encode_frame({"id": 1, "kind": "bye"})
        assert a == b

    def test_frame_must_be_object_with_kind(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1,2,3]")
        with pytest.raises(ProtocolError):
            decode_payload(b'{"id":1}')
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")


def _response_payload() -> dict:
    """A pinned response body exercising every binary-layout branch."""
    return {
        "status": "ok",
        "outcome": {
            "result": {"pairs": [[1, 4]], "boundary_vertices": {}, "weight": 2},
            "correction": None,
            "defect_count": 2,
            "counters": {"grow": 3},
            "scale_retries": 0,
        },
        "queue_delay_seconds": 0.25,
        "latency_seconds": 0.5,
        "batch_size": 3,
        "cached": True,
        "error": None,
    }


#: Frozen codec-2 payload bytes.  These pin the binary layout the same way
#: the canonical-JSON strings above pin codec 1: a changed byte is a wire
#: break for every deployed v2 peer, not a refactor.
_BINARY_REQUEST_PIN = (
    "b20103000000000000009f0000007b22636f6465223a7b2264697374616e6365223a332c"
    "226e6f697365223a22636972637569745f6c6576656c222c22706879736963616c5f6572"
    "726f725f72617465223a302e30322c22726f756e6473223a6e756c6c7d2c22636f6e6669"
    "67223a7b226669656c6473223a7b7d2c2274797065223a22556e696f6e46696e64436f6e"
    "666967227d2c226465636f646572223a22756e696f6e2d66696e64227d01020000000100"
    "000004000000000000000700000000000000"
)
_BINARY_RESPONSE_PIN = (
    "b2020300000000000000020000006f6b03000000000000d03f000000000000e03f030000"
    "00010200000000000000010000000100000004000000000000000200000000000000"
    "010000000400000067726f770300000000000000"
)
_BINARY_BATCH_PIN = (
    "b20301009f0000007b22636f6465223a7b2264697374616e6365223a332c226e6f697365"
    "223a22636972637569745f6c6576656c222c22706879736963616c5f6572726f725f7261"
    "7465223a302e30322c22726f756e6473223a6e756c6c7d2c22636f6e666967223a7b2266"
    "69656c6473223a7b7d2c2274797065223a22556e696f6e46696e64436f6e666967227d2c"
    "226465636f646572223a22756e696f6e2d66696e64227d0200000001000000000000000000"
    "0700000000000000010200000001000000040000000000000002000000000000000000"
    "080000000000000000010000000900000000000000"
)


class TestBinaryCodec:
    """Codec-2 byte pins, codec sniffing, negotiation, and fallbacks."""

    def test_request_bytes_pin(self):
        frame = {"kind": "request", "id": 3, "request": _request().to_dict()}
        assert encode_frame(frame, CODEC_BINARY)[4:].hex() == _BINARY_REQUEST_PIN

    def test_response_bytes_pin(self):
        frame = {"kind": "response", "id": 3, "response": _response_payload()}
        assert encode_frame(frame, CODEC_BINARY)[4:].hex() == _BINARY_RESPONSE_PIN

    def test_request_batch_bytes_pin(self):
        session = _request().to_dict()["session"]
        frame = {
            "kind": "request-batch",
            "requests": [
                {"id": 1, "request": _request().to_dict()},
                {
                    "id": 2,
                    "request": {
                        "session": session,
                        "syndrome": {
                            "defects": [9],
                            "error_edges": [],
                            "logical_flip": None,
                        },
                        "request_id": 8,
                    },
                },
            ],
        }
        assert encode_frame(frame, CODEC_BINARY)[4:].hex() == _BINARY_BATCH_PIN

    def test_binary_payloads_decode_to_the_logical_frame(self):
        for pin in (_BINARY_REQUEST_PIN, _BINARY_RESPONSE_PIN, _BINARY_BATCH_PIN):
            payload = bytes.fromhex(pin)
            frame = decode_payload(payload)
            # Re-encoding the decoded frame reproduces the pinned bytes:
            # decode is the exact inverse of encode, not a lossy projection.
            assert encode_frame(frame, CODEC_BINARY)[4:] == payload

    def test_batch_decode_shares_session_objects(self):
        frame = decode_payload(bytes.fromhex(_BINARY_BATCH_PIN))
        members = frame["requests"]
        assert members[0]["request"]["session"] is members[1]["request"]["session"]

    def test_magic_byte_sniffing(self):
        # A binary payload starts 0xB2; a JSON one starts '{' — one reader.
        assert bytes.fromhex(_BINARY_REQUEST_PIN)[:1] == b"\xb2"
        json_payload = encode_frame({"kind": "bye"}, CODEC_JSON)[4:]
        assert json_payload[:1] == b"{"

    def test_control_frames_stay_json_on_codec_2(self):
        payload = encode_frame({"kind": "drain", "reason": "stopping"}, CODEC_BINARY)[4:]
        assert payload[:1] == b"{"

    def test_unrepresentable_frame_falls_back_to_json(self):
        # A null frame id has no binary layout; the frame silently rides
        # codec 1 and decodes identically.
        frame = {"kind": "request", "id": None, "request": _request().to_dict()}
        payload = encode_frame(frame, CODEC_BINARY)[4:]
        assert payload[:1] == b"{"
        assert decode_payload(payload) == frame

    def test_truncated_binary_frame_raises(self):
        payload = bytes.fromhex(_BINARY_REQUEST_PIN)
        for cut in (1, 2, 11, len(payload) - 3):
            with pytest.raises(ProtocolError):
                decode_payload(payload[:cut])

    def test_unknown_binary_kind_raises(self):
        with pytest.raises(ProtocolError, match="unknown binary frame kind"):
            decode_payload(b"\xb2\x7f" + b"\x00" * 16)

    def test_negotiation(self):
        assert negotiate_codec([2, 1]) == CODEC_BINARY
        assert negotiate_codec([1]) == CODEC_JSON
        assert negotiate_codec(None) == CODEC_JSON  # legacy hello, no codecs
        assert negotiate_codec([]) == CODEC_JSON
        assert negotiate_codec([2, 1], limit=CODEC_JSON) == CODEC_JSON
        assert negotiate_codec([99, "2", 2]) == CODEC_BINARY  # junk ignored
        assert negotiate_codec([99, None]) == CODEC_JSON
        assert SUPPORTED_CODECS == (CODEC_BINARY, CODEC_JSON)


_JSON_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)
_SESSION = st.dictionaries(st.text(max_size=10), _JSON_SCALARS, max_size=4)
_SYNDROME = st.fixed_dictionaries(
    {
        "defects": st.lists(st.integers(0, 2**32 - 1), max_size=8),
        "error_edges": st.lists(st.integers(0, 2**32 - 1), max_size=4),
        "logical_flip": st.sampled_from([None, True, False]),
    }
)
_REQUEST = st.fixed_dictionaries(
    {
        "session": _SESSION,
        "syndrome": _SYNDROME,
        "request_id": st.integers(-(2**63), 2**63 - 1),
    }
)
_I32 = st.integers(-(2**31), 2**31 - 1)
_OUTCOME = st.fixed_dictionaries(
    {
        "result": st.one_of(
            st.none(),
            st.fixed_dictionaries(
                {
                    "pairs": st.lists(
                        st.lists(_I32, min_size=2, max_size=2), max_size=4
                    ),
                    "boundary_vertices": st.dictionaries(
                        _I32.map(str), _I32, max_size=3
                    ),
                    "weight": st.integers(-(2**63), 2**63 - 1),
                }
            ),
        ),
        "correction": st.one_of(
            st.none(), st.lists(st.integers(0, 2**32 - 1), max_size=6)
        ),
        "defect_count": st.integers(0, 2**32 - 1),
        "counters": st.dictionaries(
            st.text(max_size=12), st.integers(-(2**63), 2**63 - 1), max_size=4
        ),
        "scale_retries": st.integers(0, 2**32 - 1),
    }
)
_RESPONSE = st.fixed_dictionaries(
    {
        "status": st.sampled_from(["ok", "shed", "error"]),
        "outcome": st.one_of(st.none(), _OUTCOME),
        "queue_delay_seconds": st.floats(
            min_value=0.0, allow_nan=False, allow_infinity=False
        ),
        "latency_seconds": st.floats(
            min_value=0.0, allow_nan=False, allow_infinity=False
        ),
        "batch_size": st.integers(0, 2**32 - 1),
        "cached": st.booleans(),
        "error": st.one_of(st.none(), st.text(max_size=30)),
    }
)


class TestCodecProperties:
    """Hypothesis round-trips: decode(encode(frame)) == frame on both codecs.

    The generated frames stay inside each binary layout's value ranges, so
    on codec 2 these exercise the struct-packed path (not the fallback);
    codec 1 covers the same frames through canonical JSON.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        frame_id=st.integers(-(2**63), 2**63 - 1),
        request=_REQUEST,
        codec=st.sampled_from(SUPPORTED_CODECS),
    )
    def test_request_roundtrip(self, frame_id, request, codec):
        frame = {"kind": "request", "id": frame_id, "request": request}
        assert decode_payload(encode_frame(frame, codec)[4:]) == frame

    @settings(max_examples=60, deadline=None)
    @given(
        frame_id=st.integers(-(2**63), 2**63 - 1),
        response=_RESPONSE,
        codec=st.sampled_from(SUPPORTED_CODECS),
    )
    def test_response_roundtrip(self, frame_id, response, codec):
        frame = {"kind": "response", "id": frame_id, "response": response}
        assert decode_payload(encode_frame(frame, codec)[4:]) == frame

    @settings(max_examples=40, deadline=None)
    @given(
        members=st.lists(
            st.fixed_dictionaries(
                {"id": st.integers(-(2**63), 2**63 - 1), "request": _REQUEST}
            ),
            min_size=1,
            max_size=5,
        ),
        codec=st.sampled_from(SUPPORTED_CODECS),
    )
    def test_request_batch_roundtrip(self, members, codec):
        frame = {"kind": "request-batch", "requests": members}
        assert decode_payload(encode_frame(frame, codec)[4:]) == frame

    @settings(max_examples=40, deadline=None)
    @given(
        members=st.lists(
            st.fixed_dictionaries(
                {"id": st.integers(-(2**63), 2**63 - 1), "response": _RESPONSE}
            ),
            min_size=1,
            max_size=5,
        ),
        codec=st.sampled_from(SUPPORTED_CODECS),
    )
    def test_response_batch_roundtrip(self, members, codec):
        frame = {"kind": "response-batch", "responses": members}
        assert decode_payload(encode_frame(frame, codec)[4:]) == frame
