"""Wire-codec round-trips and golden pins for the service request types.

The network protocol's frames carry exactly what ``to_dict`` emits, hashed
and framed as canonical JSON — so these dict forms ARE the wire format.  The
golden pins below freeze them: any change to a pinned string is a protocol
break that needs a :data:`repro.service.net.PROTOCOL_VERSION` bump, not a
silent reshuffle.
"""

import pytest

from repro.api.config import UnionFindConfig
from repro.api.hashing import canonical_json
from repro.graphs.syndrome import Syndrome
from repro.service import CodeSpec, DecodeRequest, DecodeResponse, SessionKey
from repro.service.net.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_payload,
    encode_frame,
)


def _key() -> SessionKey:
    return SessionKey(CodeSpec(3, physical_error_rate=0.02), "union-find")


def _request() -> DecodeRequest:
    return DecodeRequest(
        session=_key(),
        syndrome=Syndrome(defects=(1, 4), logical_flip=False),
        request_id=7,
    )


class TestGoldenPins:
    """Frozen canonical-JSON wire forms.  A failing pin = a wire break."""

    def test_code_spec_pin(self):
        assert canonical_json(CodeSpec(3, physical_error_rate=0.02).to_dict()) == (
            '{"distance":3,"noise":"circuit_level","physical_error_rate":0.02,'
            '"rounds":null}'
        )

    def test_session_key_pin(self):
        assert canonical_json(_key().to_dict()) == (
            '{"code":{"distance":3,"noise":"circuit_level",'
            '"physical_error_rate":0.02,"rounds":null},'
            '"config":{"fields":{},"type":"UnionFindConfig"},'
            '"decoder":"union-find"}'
        )

    def test_syndrome_pin(self):
        assert canonical_json(Syndrome(defects=(1, 4), logical_flip=False).to_dict()) == (
            '{"defects":[1,4],"error_edges":[],"logical_flip":false}'
        )

    def test_request_pin(self):
        assert canonical_json(_request().to_dict()) == (
            '{"request_id":7,"session":{"code":{"distance":3,'
            '"noise":"circuit_level","physical_error_rate":0.02,"rounds":null},'
            '"config":{"fields":{},"type":"UnionFindConfig"},'
            '"decoder":"union-find"},'
            '"syndrome":{"defects":[1,4],"error_edges":[],"logical_flip":false}}'
        )

    def test_session_key_hash_pin(self):
        # Routing depends on this hash: moving it re-routes every session.
        assert _key().key_hash() == "09247a96af1cf97c"

    def test_protocol_version_pin(self):
        assert PROTOCOL_VERSION == 1


class TestRoundTrips:
    def test_code_spec(self):
        spec = CodeSpec(5, noise="phenomenological", physical_error_rate=0.01, rounds=3)
        assert CodeSpec.from_dict(spec.to_dict()) == spec

    def test_session_key(self):
        key = SessionKey(
            CodeSpec(3, physical_error_rate=0.02),
            "union-find",
            UnionFindConfig(),
        )
        rebuilt = SessionKey.from_dict(key.to_dict())
        assert rebuilt.key() == key.key()
        assert rebuilt.key_hash() == key.key_hash()

    def test_session_key_null_config_uses_registry_default(self):
        wire = _key().to_dict()
        wire["config"] = None
        assert SessionKey.from_dict(wire).key() == _key().key()

    def test_syndrome(self):
        syndrome = Syndrome(defects=(0, 3, 9), error_edges=(2,), logical_flip=True)
        rebuilt = Syndrome.from_dict(syndrome.to_dict())
        assert rebuilt.defects == syndrome.defects
        assert rebuilt.error_edges == syndrome.error_edges
        assert rebuilt.logical_flip is True

    def test_request(self):
        request = _request()
        rebuilt = DecodeRequest.from_dict(request.to_dict())
        assert rebuilt.session.key() == request.session.key()
        assert rebuilt.syndrome.defects == request.syndrome.defects
        assert rebuilt.request_id == 7

    def test_response_roundtrip_carries_outcome(self):
        from repro.api.registry import get_decoder

        request = _request()
        graph = request.session.code.build_graph()
        outcome = get_decoder("union-find", graph).decode_detailed(request.syndrome)
        response = DecodeResponse(
            request=request,
            status="ok",
            outcome=outcome,
            queue_delay_seconds=0.25,
            latency_seconds=0.5,
            batch_size=3,
            cached=True,
        )
        rebuilt = DecodeResponse.from_dict(response.to_dict())
        assert rebuilt.status == "ok"
        assert rebuilt.cached is True
        assert rebuilt.batch_size == 3
        assert rebuilt.queue_delay_seconds == 0.25
        assert rebuilt.outcome.correction_edges(graph) == outcome.correction_edges(graph)
        assert rebuilt.outcome.weight == outcome.weight
        assert rebuilt.request.session.key() == request.session.key()

    def test_error_response_roundtrip(self):
        response = DecodeResponse(
            request=_request(), status="error", error="PoisonedSyndromeError: boom"
        )
        rebuilt = DecodeResponse.from_dict(response.to_dict())
        assert rebuilt.status == "error"
        assert rebuilt.outcome is None
        assert rebuilt.error == "PoisonedSyndromeError: boom"


class TestFraming:
    def test_frame_roundtrip(self):
        frame = {"kind": "request", "id": 3, "request": _request().to_dict()}
        encoded = encode_frame(frame)
        length = int.from_bytes(encoded[:4], "big")
        assert length == len(encoded) - 4
        assert decode_payload(encoded[4:]) == frame

    def test_frame_bytes_are_canonical(self):
        # Key order must not leak into the bytes: same content, same frame.
        a = encode_frame({"kind": "bye", "id": 1})
        b = encode_frame({"id": 1, "kind": "bye"})
        assert a == b

    def test_frame_must_be_object_with_kind(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1,2,3]")
        with pytest.raises(ProtocolError):
            decode_payload(b'{"id":1}')
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")
