"""Scenario tests for the software primal module (alternating trees, blossoms)."""

from __future__ import annotations

import pytest

from repro.core import DualPhaseError, HOLD, MicroBlossomAccelerator, PrimalModule
from repro.core.dual import DualGraphState
from repro.graphs import BOUNDARY, GraphBuilder


def build_triangle_graph():
    """Three defect-capable vertices pairwise connected, far from the boundary.

    The boundary is attached through a long chain so that the three mutually
    adjacent defects prefer to form a blossom before any of them reaches it.
    """
    builder = GraphBuilder()
    a = builder.add_vertex(0, 0, 0)
    b = builder.add_vertex(0, 0, 1)
    c = builder.add_vertex(0, 1, 0)
    hop = builder.add_vertex(0, 2, 0)
    virtual = builder.add_vertex(0, 3, 0, is_virtual=True)
    # Triangle edges are cheap (high probability -> low weight); the path to
    # the boundary is expensive.
    builder.add_edge(a, b, 0.3, 0.001)
    builder.add_edge(b, c, 0.3, 0.001)
    builder.add_edge(a, c, 0.3, 0.001)
    builder.add_edge(c, hop, 0.001, 0.001, observable=True)
    builder.add_edge(hop, virtual, 0.001, 0.001)
    return builder.build(), (a, b, c)


class TestBasicScenarios:
    def test_single_defect_matches_boundary(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1])
        primal = PrimalModule(graph, dual)
        primal.register_defect(1)
        primal.run()
        result = primal.collect_matching()
        assert result.pairs == [(1, BOUNDARY)]
        assert result.boundary_vertices[1] == 0

    def test_adjacent_defects_match_each_other(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1, 2])
        primal = PrimalModule(graph, dual)
        for defect in (1, 2):
            primal.register_defect(defect)
        primal.run()
        result = primal.collect_matching()
        assert len(result.pairs) == 1
        assert set(result.pairs[0]) == {1, 2}
        assert primal.counters["augmentations"] >= 1

    def test_three_defects_in_a_row(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1, 2, 3])
        primal = PrimalModule(graph, dual)
        for defect in (1, 2, 3):
            primal.register_defect(defect)
        primal.run()
        result = primal.collect_matching()
        result.validate_perfect([1, 2, 3])
        # One defect pairs with a neighbour, the remaining one exits through
        # its boundary; total weight is twice the uniform edge weight.
        from repro.graphs.syndrome import matching_weight

        assert matching_weight(graph, result) == 2 * graph.edges[0].weight

    def test_triangle_forms_blossom(self):
        graph, (a, b, c) = build_triangle_graph()
        dual = DualGraphState(graph)
        dual.load([a, b, c])
        primal = PrimalModule(graph, dual)
        for defect in (a, b, c):
            primal.register_defect(defect)
        primal.run()
        result = primal.collect_matching()
        result.validate_perfect([a, b, c])
        assert primal.counters["blossoms_formed"] >= 1

    def test_lazy_discovery_without_registration(self, path_graph_builder):
        """In Micro Blossom mode the CPU never reads the syndrome directly."""
        graph = path_graph_builder()
        accelerator = MicroBlossomAccelerator(graph, enable_prematching=False)
        accelerator.load([1, 2])
        primal = PrimalModule(graph, accelerator)
        primal.run()
        result = primal.collect_matching()
        assert len(result.pairs) == 1
        assert set(result.pairs[0]) == {1, 2}
        assert primal.counters["defect_reads"] == 0
        assert primal.counters["nodes_discovered"] == 2


class TestStructuralInvariants:
    def test_outer_nodes_all_matched_after_run(self, surface_d5_circuit):
        from repro.graphs import SyndromeSampler

        sampler = SyndromeSampler(surface_d5_circuit, seed=17)
        for _ in range(10):
            syndrome = sampler.sample()
            dual = DualGraphState(surface_d5_circuit)
            dual.load(syndrome.defects)
            primal = PrimalModule(surface_d5_circuit, dual)
            for defect in syndrome.defects:
                primal.register_defect(defect)
            primal.run()
            for node in primal.outer_nodes():
                assert node.is_matched
                assert node.direction == HOLD

    def test_collect_matching_requires_completion(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1, 3])
        primal = PrimalModule(graph, dual)
        primal.register_defect(1)
        primal.register_defect(3)
        with pytest.raises(DualPhaseError):
            primal.collect_matching()

    def test_ensure_node_rejects_boundary_vertex(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1])
        primal = PrimalModule(graph, dual)
        with pytest.raises(DualPhaseError):
            primal._ensure_node(0)

    def test_ensure_node_rejects_unknown_blossom(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1])
        primal = PrimalModule(graph, dual)
        with pytest.raises(DualPhaseError):
            primal._ensure_node(graph.num_vertices + 5)

    def test_register_defect_counts_reads(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1, 3])
        primal = PrimalModule(graph, dual)
        primal.register_defect(1)
        primal.register_defect(3)
        assert primal.counters["defect_reads"] == 2

    def test_defects_of_singleton(self, path_graph_builder):
        graph = path_graph_builder()
        dual = DualGraphState(graph)
        dual.load([1])
        primal = PrimalModule(graph, dual)
        primal.register_defect(1)
        assert primal._defects_of(1) == {1}
