"""Tests of the streaming decode subsystem.

Covers the four layers the subsystem spans:

* the :class:`repro.api.StreamingDecoder` protocol surface (native Micro
  Blossom and the :class:`repro.stream.SlidingWindowAdapter`);
* per-round syndrome emission (``SyndromeSampler.sample_rounds``), pinned
  bit-identical to batch sampling;
* the continuous-stream :class:`repro.evaluation.StreamEngine` (seed/shard
  stability, worker independence, reaction latency and backlog accounting);
* the ``streaming`` sweep axis, including the back-compatibility contract
  that batch-only specs keep their pre-axis hashes and point keys.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.api import (
    DecoderCapabilities,
    StreamingDecoder,
    decoder_capabilities,
    get_decoder,
)
from repro.evaluation import (
    DECODERS_WITH_TIMING_MODELS,
    MonteCarloEngine,
    StreamEngine,
    stream_latency_fn,
)
from repro.evaluation.experiments import build_graph, stream_vs_batch
from repro.graphs import (
    Syndrome,
    SyndromeSampler,
    phenomenological_noise,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.stream import (
    DEFECTS_DECODED,
    SlidingWindowAdapter,
    StreamOutcome,
    get_streaming_decoder,
)
from repro.sweeps import ResultStore, bench_document, make_spec, run_sweep, validate_bench


@pytest.fixture(scope="module")
def graph():
    return build_graph(3, 0.02)


@pytest.fixture(scope="module")
def busy_graph():
    """High error rate, many rounds: windows fill and commits trigger."""
    return surface_code_decoding_graph(3, phenomenological_noise(0.08), rounds=6)


def stream_once(session, graph, syndrome):
    session.begin(graph, rounds_hint=graph.num_layers)
    pushes = [session.push_round(r) for r in syndrome.defects_by_layer(graph)]
    return session.finalize(), pushes


# ---------------------------------------------------------------------------
# registry capabilities
# ---------------------------------------------------------------------------
class TestCapabilities:
    def test_native_streaming_flags(self):
        assert decoder_capabilities("micro-blossom").native_streaming
        for name in ("micro-blossom-batch", "parity-blossom", "union-find", "reference"):
            assert not decoder_capabilities(name).native_streaming

    def test_timing_model_flags_match_evaluation_registry(self):
        for name in ("micro-blossom", "micro-blossom-batch", "parity-blossom",
                     "union-find", "reference"):
            assert decoder_capabilities(name).timing_model == (
                name in DECODERS_WITH_TIMING_MODELS
            )

    def test_exact_and_batch_flags(self):
        assert decoder_capabilities("reference").exact
        assert not decoder_capabilities("union-find").exact
        assert all(
            decoder_capabilities(n).batch_decode
            for n in ("micro-blossom", "union-find", "reference")
        )

    def test_default_capabilities_for_user_registrations(self):
        caps = DecoderCapabilities()
        assert not caps.native_streaming
        assert not caps.timing_model
        assert caps.batch_decode

    def test_factory_follows_the_flags(self, graph):
        native = get_streaming_decoder("micro-blossom", graph)
        assert not isinstance(native, SlidingWindowAdapter)
        assert isinstance(native, StreamingDecoder)
        wrapped = get_streaming_decoder("union-find", graph)
        assert isinstance(wrapped, SlidingWindowAdapter)
        assert isinstance(wrapped, StreamingDecoder)
        # a finite window forces the adapter even for native backends
        windowed = get_streaming_decoder("micro-blossom", graph, window=2)
        assert isinstance(windowed, SlidingWindowAdapter)


# ---------------------------------------------------------------------------
# protocol surface: ordering and validation errors
# ---------------------------------------------------------------------------
class TestProtocolErrors:
    @pytest.mark.parametrize("name", ["micro-blossom", "union-find"])
    def test_push_before_begin(self, graph, name):
        session = get_streaming_decoder(name, graph)
        with pytest.raises(RuntimeError, match="begin"):
            session.push_round(())

    @pytest.mark.parametrize("name", ["micro-blossom", "union-find"])
    def test_finalize_before_begin(self, graph, name):
        session = get_streaming_decoder(name, graph)
        with pytest.raises(RuntimeError, match="begin"):
            session.finalize()

    @pytest.mark.parametrize("name", ["micro-blossom", "union-find"])
    def test_too_many_rounds_rejected(self, graph, name):
        session = get_streaming_decoder(name, graph)
        session.begin(graph)
        for _ in range(graph.num_layers):
            session.push_round(())
        with pytest.raises(ValueError, match="all"):
            session.push_round(())

    @pytest.mark.parametrize("name", ["micro-blossom", "union-find"])
    def test_wrong_layer_defect_rejected(self, graph, name):
        last_layer_defect = next(
            v
            for v in graph.vertices_in_layer(graph.num_layers - 1)
            if not graph.is_virtual(v)
        )
        session = get_streaming_decoder(name, graph)
        session.begin(graph)
        with pytest.raises(ValueError, match="round"):
            session.push_round((last_layer_defect,))

    @pytest.mark.parametrize("name", ["micro-blossom", "union-find"])
    def test_foreign_graph_rejected(self, graph, name):
        other = build_graph(3, 0.03)
        session = get_streaming_decoder(name, graph)
        with pytest.raises(ValueError, match="graph"):
            session.begin(other)

    @pytest.mark.parametrize("name", ["micro-blossom", "union-find"])
    def test_oversized_rounds_hint_rejected(self, graph, name):
        session = get_streaming_decoder(name, graph)
        with pytest.raises(ValueError, match="rounds_hint"):
            session.begin(graph, rounds_hint=graph.num_layers + 1)

    def test_begin_discards_in_flight_stream(self, graph):
        sampler = SyndromeSampler(graph, seed=3)
        syndrome = next(s for s in sampler.sample_batch(64) if s.defect_count >= 2)
        session = get_streaming_decoder("micro-blossom", graph)
        session.begin(graph)
        session.push_round(syndrome.defects_by_layer(graph)[0])
        # restarting mid-stream must leave no residue in the next outcome
        outcome, _ = stream_once(session, graph, syndrome)
        batch = get_decoder("micro-blossom", graph).decode_detailed(syndrome)
        assert outcome.correction_edges(graph) == batch.correction_edges(graph)


# ---------------------------------------------------------------------------
# native micro-blossom streaming
# ---------------------------------------------------------------------------
class TestNativeStreaming:
    def test_explicit_pushes_match_stream_decode_detailed(self, graph):
        """decode_detailed(stream=True) is literally the push protocol."""
        decoder = get_decoder("micro-blossom", graph)
        session = get_streaming_decoder("micro-blossom", graph)
        sampler = SyndromeSampler(graph, seed=11)
        for syndrome in sampler.sample_batch(12):
            outcome, _ = stream_once(session, graph, syndrome)
            batch = decoder.decode_detailed(syndrome)
            assert outcome.result.weight == batch.result.weight
            assert sorted(outcome.result.pairs) == sorted(batch.result.pairs)
            assert outcome.counters == batch.counters
            assert (
                outcome.post_final_round_counters == batch.post_final_round_counters
            )

    def test_push_counters_partition_total_work(self, graph):
        session = get_streaming_decoder("micro-blossom", graph)
        sampler = SyndromeSampler(graph, seed=4)
        syndrome = next(s for s in sampler.sample_batch(64) if s.defect_count >= 2)
        outcome, pushes = stream_once(session, graph, syndrome)
        summed: Counter = Counter()
        for push in pushes:
            summed.update(push)
        for key, value in summed.items():
            assert outcome.counters[key] >= value or key == "prematched_defects"

    def test_post_final_counters_cover_last_push(self, graph):
        session = get_streaming_decoder("micro-blossom", graph)
        sampler = SyndromeSampler(graph, seed=4)
        syndrome = next(s for s in sampler.sample_batch(64) if s.defect_count >= 2)
        outcome, pushes = stream_once(session, graph, syndrome)
        last = pushes[-1]
        for key, value in last.items():
            assert outcome.post_final_round_counters.get(key, 0) >= value

    def test_scale_retry_replay_charges_the_triggering_push(self, graph, monkeypatch):
        """A mid-stream IntegralityError replays every round at a doubled
        scale; the push that triggered it must report the whole replay (the
        earlier pushes' deltas belong to the abandoned engine)."""
        from repro.core.interface import IntegralityError

        session = get_streaming_decoder("micro-blossom", graph)
        batch = get_decoder("micro-blossom", graph)
        sampler = SyndromeSampler(graph, seed=4)
        syndrome = next(s for s in sampler.sample_batch(64) if s.defect_count >= 2)
        rounds = syndrome.defects_by_layer(graph)

        original = type(session)._stream_step
        calls = {"count": 0}

        def flaky(self, state, layer, defects):
            calls["count"] += 1
            if calls["count"] == len(rounds):  # first attempt at the last round
                raise IntegralityError("forced retry")
            return original(self, state, layer, defects)

        monkeypatch.setattr(type(session), "_stream_step", flaky)
        session.begin(graph)
        pushes = [session.push_round(r) for r in rounds]
        outcome = session.finalize()
        assert outcome.scale_retries == 1
        # the retry push re-ran every round on the fresh engine: it carries
        # all the layer loads, and covers the outcome's total work (minus
        # the engine reset, which belongs to begin(), and the collect-time
        # prematch scan)
        assert pushes[-1]["instr_load"] == graph.num_layers
        reset_cost = Counter({"instr_reset": 1, "bus_words": 1})
        for key, value in outcome.counters.items():
            if key != "prematched_defects":
                assert pushes[-1][key] >= value - reset_cost[key], key
        # and the streamed result still matches the batch decode
        batch_outcome = batch.decode_detailed(syndrome)
        assert outcome.correction_edges(graph) == batch_outcome.correction_edges(graph)
        assert outcome.result.weight == batch_outcome.result.weight

    def test_early_finalize_treats_missing_rounds_as_boundary(self, graph):
        """A stream closed before all rounds arrive still decodes validly."""
        sampler = SyndromeSampler(graph, seed=8)
        syndrome = next(
            s
            for s in sampler.sample_batch(128)
            if s.defects and s.defects_by_layer(graph)[0]
        )
        first_round = syndrome.defects_by_layer(graph)[0]
        session = get_streaming_decoder("micro-blossom", graph)
        session.begin(graph)
        session.push_round(first_round)
        outcome = session.finalize()
        outcome.result.validate_perfect(first_round)


# ---------------------------------------------------------------------------
# sliding-window adapter
# ---------------------------------------------------------------------------
class TestSlidingWindowAdapter:
    def test_window_validation(self, graph):
        decoder = get_decoder("union-find", graph)
        with pytest.raises(ValueError, match="window"):
            SlidingWindowAdapter(decoder, window=0)
        with pytest.raises(ValueError, match="commit_depth"):
            SlidingWindowAdapter(decoder, window=2, commit_depth=3)
        with pytest.raises(ValueError, match="commit_depth"):
            SlidingWindowAdapter(decoder, commit_depth=1)
        assert SlidingWindowAdapter(decoder, window=4).commit_depth == 2

    def test_growing_window_defers_all_work_to_finalize(self, graph):
        session = get_streaming_decoder("parity-blossom", graph)
        sampler = SyndromeSampler(graph, seed=13)
        syndrome = next(s for s in sampler.sample_batch(64) if s.defect_count >= 2)
        outcome, pushes = stream_once(session, graph, syndrome)
        assert all(not push for push in pushes)
        assert isinstance(outcome, StreamOutcome)
        assert outcome.counters[DEFECTS_DECODED] == syndrome.defect_count
        assert outcome.committed_pairs == 0

    def test_finite_window_commits_and_stays_valid(self, busy_graph):
        graph = busy_graph
        session = get_streaming_decoder("union-find", graph, window=2, commit_depth=1)
        sampler = SyndromeSampler(graph, seed=2)
        committed_somewhere = False
        decoded_mid_stream = False
        for syndrome in sampler.sample_batch(25):
            outcome, pushes = stream_once(session, graph, syndrome)
            if outcome.result is not None:
                outcome.result.validate_perfect(syndrome.defects)
            correction = outcome.correction_edges(graph)
            assert residual_defects(graph, syndrome, correction) == ()
            committed_somewhere |= outcome.committed_pairs > 0
            decoded_mid_stream |= any(
                push.get(DEFECTS_DECODED, 0) > 0 for push in pushes
            )
        assert committed_somewhere, "no window decode ever froze a pair"
        assert decoded_mid_stream, "finite window never decoded before finalize"

    def test_finite_window_weight_never_beats_batch_optimum(self, busy_graph):
        graph = busy_graph
        session = get_streaming_decoder(
            "parity-blossom", graph, window=2, commit_depth=1
        )
        exact = get_decoder("reference", graph)
        sampler = SyndromeSampler(graph, seed=6)
        for syndrome in sampler.sample_batch(15):
            if not syndrome.defects:
                continue
            outcome, _ = stream_once(session, graph, syndrome)
            from repro.graphs.syndrome import matching_weight

            assert matching_weight(graph, outcome.result) >= exact.decode(
                syndrome
            ).weight

    def test_uncommitted_finite_window_is_still_batch_identical(self, graph):
        """A finite window that never freezes a pair must keep the backend's
        exact batch outcome — including its peeled correction — even when the
        window slid over empty or late-arriving rounds."""
        batch = get_decoder("union-find", graph)
        session = get_streaming_decoder("union-find", graph, window=1)
        last_layer = graph.num_layers - 1
        defect = next(
            v for v in graph.vertices_in_layer(last_layer) if not graph.is_virtual(v)
        )
        syndrome = Syndrome(defects=(defect,))
        outcome, _ = stream_once(session, graph, syndrome)
        assert outcome.committed_pairs == 0
        assert outcome.correction_edges(graph) == batch.decode_to_correction(syndrome)

    def test_factory_rejects_commit_depth_without_window(self, graph):
        with pytest.raises(ValueError, match="finite window"):
            get_streaming_decoder("micro-blossom", graph, commit_depth=2)
        with pytest.raises(ValueError, match="finite window"):
            get_streaming_decoder("union-find", graph, commit_depth=2)

    def test_adapter_reports_window_configuration(self, graph):
        session = get_streaming_decoder("union-find", graph, window=3)
        syndrome = Syndrome(defects=())
        outcome, _ = stream_once(session, graph, syndrome)
        assert (outcome.window, outcome.commit_depth) == (3, 1)
        assert outcome.rounds == graph.num_layers
        assert session.name == "union-find+window"


# ---------------------------------------------------------------------------
# per-round syndrome emission
# ---------------------------------------------------------------------------
class TestSampleRounds:
    def test_bit_identical_to_batch_sampling(self, graph):
        streamed = SyndromeSampler(graph, seed=42)
        batched = SyndromeSampler(graph, seed=42)
        expected = batched.sample_batch(20)
        for reference in expected:
            syndrome, rounds = streamed.sample_rounds()
            assert syndrome.defects == reference.defects
            assert syndrome.error_edges == reference.error_edges
            assert syndrome.logical_flip == reference.logical_flip
            assert len(rounds) == graph.num_layers
            assert tuple(d for r in rounds for d in r) == reference.defects

    def test_rounds_respect_layer_membership(self, graph):
        sampler = SyndromeSampler(graph, seed=1)
        _, rounds = sampler.sample_rounds()
        for layer, round_defects in enumerate(rounds):
            for defect in round_defects:
                assert graph.vertices[defect].layer == layer

    def test_interleaving_keeps_the_stream_aligned(self, graph):
        mixed = SyndromeSampler(graph, seed=7)
        pure = SyndromeSampler(graph, seed=7)
        mixed.sample_rounds()
        mixed.sample()
        syndrome, _ = mixed.sample_rounds()
        expected = pure.sample_batch(3)[2]
        assert syndrome.defects == expected.defects


# ---------------------------------------------------------------------------
# continuous-stream engine
# ---------------------------------------------------------------------------
class TestStreamEngine:
    def test_reaction_histogram_covers_every_shot(self, graph):
        result = StreamEngine(graph, "micro-blossom", shard_size=16).run(40, seed=5)
        assert result.shots == 40
        assert result.reaction.count == 40
        assert result.streams == 3  # ceil(40 / 16) shards = streams
        assert result.max_backlog_seconds >= 0.0
        assert result.rounds == 40 * graph.num_layers

    def test_results_independent_of_workers(self, graph):
        sequential = StreamEngine(graph, "micro-blossom", shard_size=16).run(48, seed=9)
        parallel = StreamEngine(
            graph, "micro-blossom", shard_size=16, workers=3
        ).run(48, seed=9)
        assert (sequential.shots, sequential.errors) == (
            parallel.shots,
            parallel.errors,
        )
        assert sequential.reaction.counts == parallel.reaction.counts
        assert sequential.max_backlog_seconds == pytest.approx(
            parallel.max_backlog_seconds
        )
        assert sequential.counters == parallel.counters

    def test_error_counts_match_batch_monte_carlo(self, graph):
        """Streamed decoding is exactness-preserving, so the stream engine
        sees exactly the logical errors the batch engine sees on the same
        shard seeds."""
        stream = StreamEngine(graph, "micro-blossom", shard_size=16).run(64, seed=3)
        batch = MonteCarloEngine(graph, "micro-blossom", shard_size=16).run(64, seed=3)
        assert (stream.shots, stream.errors) == (batch.shots, batch.errors)
        assert stream.defects == batch.defects

    def test_adapter_backends_run_too(self, graph):
        result = StreamEngine(graph, "union-find", shard_size=32).run(32, seed=2)
        assert result.shots == 32
        assert result.reaction.count == 32

    def test_reaction_counters_never_go_negative(self):
        from repro.evaluation.stream import reaction_counters

        total = Counter({"instr_grow": 5, "instr_load": 2})
        earlier = Counter({"instr_grow": 9, "instr_find_obstacle": 3})
        residue = reaction_counters(earlier, total)
        assert residue == Counter({"instr_load": 2})
        assert all(value > 0 for value in residue.values())

    def test_stream_latency_fn_prices_all_modelled_decoders(self, graph):
        for name in DECODERS_WITH_TIMING_MODELS:
            price = stream_latency_fn(name, graph)
            empty = price(Counter())
            assert empty > 0.0
            loaded = price(Counter({DEFECTS_DECODED: 4, "instr_find_obstacle": 4}))
            assert loaded >= empty

    def test_parity_blossom_streams_through_the_engine(self, graph):
        result = StreamEngine(graph, "parity-blossom", shard_size=16).run(16, seed=1)
        assert result.reaction.count == 16
        assert result.reaction.mean > 0.0

    def test_decoder_without_timing_model_rejected(self, graph):
        with pytest.raises(ValueError, match="latency model"):
            StreamEngine(graph, "reference")
        with pytest.raises(ValueError, match="latency model"):
            stream_latency_fn("reference", graph)

    def test_invalid_parameters_rejected(self, graph):
        with pytest.raises(ValueError):
            StreamEngine(graph, "micro-blossom", shard_size=0)
        with pytest.raises(ValueError):
            StreamEngine(graph, "micro-blossom", workers=0)
        with pytest.raises(ValueError):
            StreamEngine(graph, "micro-blossom", round_interval_seconds=0.0)
        with pytest.raises(KeyError):
            StreamEngine(graph, "no-such-decoder")
        with pytest.raises(ValueError):
            StreamEngine(graph, "micro-blossom").run(0)

    def test_stream_vs_batch_reproduces_figure10b_shape(self):
        rows = stream_vs_batch(
            distance=3,
            physical_error_rate=0.004,
            rounds_list=(2, 6),
            samples=10,
            seed=4,
        )
        first, last = rows
        batch_growth = last["batch_latency_us"] / first["batch_latency_us"]
        stream_growth = last["stream_latency_us"] / first["stream_latency_us"]
        assert batch_growth > stream_growth


# ---------------------------------------------------------------------------
# the streaming sweep axis
# ---------------------------------------------------------------------------
class TestStreamingSweepAxis:
    def test_batch_only_specs_keep_their_pre_axis_hash_and_keys(self):
        """Back-compat contract: stores written before the streaming axis
        existed must keep serving cache hits, so the default spec hash and
        point key are pinned to their pre-axis byte strings."""
        spec = make_spec(
            "hash-pin", (3,), (0.02,), ("reference",), 32, seed=7, shard_size=16
        )
        assert spec.spec_hash() == "c8e4c4b22c224f94"
        point = spec.expand()[0]
        assert point.key == (
            "d=3/noise=circuit_level/p=0.02/decoder=reference/shots=32"
            "/seed=467667194124669053/shard=16/target_se=none/latency=0"
        )
        assert point.seed == 467667194124669053

    def test_streaming_axis_expands_per_cell(self):
        spec = make_spec(
            "s", (3,), (0.03,), ("union-find", "micro-blossom"), 16,
            streaming=(False, True),
        )
        points = spec.expand()
        assert len(points) == 4
        assert [p.streaming for p in points] == [False, True, False, True]
        # both modes of one cell share the seed (comparable error counts) but
        # not the cache key
        assert points[0].seed == points[1].seed
        assert points[0].key != points[1].key
        assert points[1].key.endswith("/stream=1")

    def test_streaming_spec_hash_differs_from_batch_only(self):
        batch_only = make_spec("s", (3,), (0.03,), ("union-find",), 16)
        streamed = make_spec(
            "s", (3,), (0.03,), ("union-find",), 16, streaming=(False, True)
        )
        assert batch_only.spec_hash() != streamed.spec_hash()

    def test_bool_streaming_coerces_to_axis(self):
        spec = make_spec("s", (3,), (0.03,), ("union-find",), 16, streaming=True)
        assert spec.streaming == (True,)
        assert all(p.streaming for p in spec.expand())

    def test_streaming_requires_timing_models(self):
        spec = make_spec(
            "s", (3,), (0.03,), ("reference",), 16, streaming=(True,)
        )
        with pytest.raises(ValueError, match="timing model"):
            run_sweep(spec)

    def test_streaming_rejects_early_stopping(self):
        spec = make_spec(
            "s", (3,), (0.03,), ("union-find",), 16,
            streaming=(True,), target_standard_error=0.1,
        )
        with pytest.raises(ValueError, match="early stopping"):
            run_sweep(spec)

    def test_streaming_sweep_runs_resumes_and_exports(self, tmp_path):
        spec = make_spec(
            "stream-sweep", (3,), (0.03,), ("union-find", "micro-blossom"), 32,
            seed=5, shard_size=16, streaming=(False, True),
        )
        store = ResultStore(tmp_path / "store.jsonl")
        run = run_sweep(spec, store)
        assert run.completed == 4
        # streamed and batch points of a cell agree on errors (same seeds,
        # exactness-preserving decoding)
        by_mode = {}
        for result in run.results:
            by_mode.setdefault(result.point.decoder, {})[
                result.point.streaming
            ] = result
        for decoder, modes in by_mode.items():
            assert modes[True].errors == modes[False].errors, decoder
            assert modes[True].latency is not None
            assert modes[True].latency.count == modes[True].shots
        # resume serves every point from the cache
        again = run_sweep(spec, ResultStore(tmp_path / "store.jsonl"))
        assert (again.completed, again.cached) == (0, 4)
        # BENCH document carries the streaming flag and validates
        document = bench_document(run, commit="abc", timestamp="t")
        validate_bench(document)
        flags = [p["streaming"] for p in document["points"]]
        assert flags.count(True) == 2 and flags.count(False) == 2

    def test_streaming_points_stay_out_of_scaling_fits(self):
        from repro.sweeps import scaling_points
        from repro.sweeps.spec import SweepPoint
        from repro.sweeps.store import PointResult

        batch = PointResult(
            point=SweepPoint(3, "circuit_level", 0.02, "reference", 100, 1, 16),
            shots=100, errors=4, decoded_shots=90, defects=150, stopped_early=False,
        )
        streamed = PointResult(
            point=SweepPoint(
                3, "circuit_level", 0.02, "reference", 100, 1, 16, streaming=True
            ),
            shots=100, errors=4, decoded_shots=100, defects=150, stopped_early=False,
        )
        assert scaling_points([batch, streamed]) == [(3, 0.02, 0.04)]
