"""Tests of the resumable sweep subsystem (`repro.sweeps`).

The headline contracts pinned here:

* an interrupted sweep, resumed, produces a ResultStore **bit-identical** to
  an uninterrupted run (same seed, any worker count);
* the store round-trips every `SweepPoint`/`PointResult` field exactly
  (hypothesis property test);
* zero-failure points surface rule-of-three upper bounds and never enter
  scaling fits;
* `BENCH_sweep.json` documents validate, and schema violations are caught.
"""

from __future__ import annotations

import json

import pytest

from repro.evaluation import (
    LatencyHistogram,
    MonteCarloEngine,
    estimate_logical_error_rate,
    modelled_trivial_latency_seconds,
    rule_of_three_upper_bound,
)
from repro.evaluation.experiments import build_graph, latency_sweep
from repro.sweeps import (
    SMOKE_SPEC,
    BenchSchemaError,
    LatencySummary,
    PointResult,
    ResultStore,
    StoreError,
    SweepPoint,
    SweepSpec,
    bench_document,
    derive_point_seed,
    fit_sweep_scaling,
    make_spec,
    report_rows,
    run_sweep,
    scaling_points,
    validate_bench,
    write_bench,
)


def small_spec(**overrides) -> SweepSpec:
    """A sweep small enough for unit tests but wide enough to be interesting."""
    params = dict(
        name="test-sweep",
        distances=(3,),
        physical_error_rates=(0.04, 0.05),
        decoders=("reference", "union-find"),
        shots=48,
        seed=11,
        shard_size=16,
    )
    params.update(overrides)
    return make_spec(
        params.pop("name"),
        params.pop("distances"),
        params.pop("physical_error_rates"),
        params.pop("decoders"),
        params.pop("shots"),
        **params,
    )


def fake_clock():
    """Deterministic clock so store files become byte-identical across runs."""
    state = {"now": 0.0}

    def tick() -> float:
        state["now"] += 1.0
        return state["now"]

    return tick


class TestSweepSpec:
    def test_expansion_order_and_size(self):
        spec = small_spec(distances=(3, 5), physical_error_rates=(0.01, 0.02))
        points = spec.expand()
        assert len(points) == 2 * 2 * 2
        assert points == spec.expand()
        # distance is the outermost axis, decoder the innermost
        assert [p.distance for p in points[:4]] == [3, 3, 3, 3]
        assert [p.decoder for p in points[:2]] == ["reference", "union-find"]

    def test_point_seeds_are_distinct_and_parameter_keyed(self):
        spec = small_spec(distances=(3, 5))
        seeds = {p.key: p.seed for p in spec.expand()}
        assert len(set(seeds.values())) == len(seeds)
        # extending an axis must not reseed existing points
        wider = small_spec(distances=(3, 5, 7))
        wider_seeds = {p.key: p.seed for p in wider.expand()}
        for key, seed in seeds.items():
            assert wider_seeds[key] == seed

    def test_seed_derivation_is_stable(self):
        assert derive_point_seed(0, "a") == derive_point_seed(0, "a")
        assert derive_point_seed(0, "a") != derive_point_seed(1, "a")
        assert derive_point_seed(0, "a") != derive_point_seed(0, "b")

    def test_spec_hash_ignores_name_but_not_parameters(self):
        base = small_spec()
        renamed = small_spec(name="other-name")
        assert base.spec_hash() == renamed.spec_hash()
        assert base.spec_hash() != small_spec(shots=49).spec_hash()
        assert base.spec_hash() != small_spec(seed=12).spec_hash()

    def test_dict_round_trip(self):
        spec = small_spec(target_standard_error=0.01, collect_latency=True)
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_from_file(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert SweepSpec.from_file(path) == spec

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"distances": ()},
            {"distances": (4,)},
            {"distances": (1,)},
            {"physical_error_rates": (0.0,)},
            {"physical_error_rates": (1.5,)},
            {"decoders": ()},
            {"shots": 0},
            {"shard_size": 0},
            {"target_standard_error": 0.0},
        ],
    )
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(ValueError):
            small_spec(**overrides)

    def test_unknown_decoder_rejected_before_running(self, tmp_path):
        spec = small_spec(decoders=("no-such-decoder",))
        with pytest.raises(KeyError):
            run_sweep(spec, ResultStore(tmp_path / "s.jsonl"))
        assert not (tmp_path / "s.jsonl").exists()

    def test_latency_requires_a_timing_model(self):
        spec = small_spec(decoders=("reference",), collect_latency=True)
        with pytest.raises(ValueError, match="timing model"):
            run_sweep(spec)


class TestResultStore:
    def test_file_round_trip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "store.jsonl"
        run = run_sweep(spec, ResultStore(path), clock=fake_clock())
        reloaded = ResultStore(path)
        assert reloaded.specs[run.spec_hash] == spec
        for result in run.results:
            stored = reloaded.get(run.spec_hash, result.point)
            assert stored is not None
            assert stored.cached
            assert stored.point == result.point
            assert (stored.shots, stored.errors) == (result.shots, result.errors)
            assert stored.decoded_shots == result.decoded_shots
            assert stored.defects == result.defects
            assert stored.elapsed_seconds == result.elapsed_seconds

    def test_put_is_idempotent(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        spec = small_spec()
        run = run_sweep(spec, store)
        before = path.read_bytes()
        for result in run.results:
            store.put(run.spec_hash, result)
        assert path.read_bytes() == before

    def test_malformed_terminated_line_rejected(self, tmp_path):
        # a newline-terminated malformed record is genuine corruption
        path = tmp_path / "store.jsonl"
        path.write_text("not json\n")
        with pytest.raises(StoreError, match="malformed"):
            ResultStore(path)

    def test_torn_trailing_write_is_repaired(self, tmp_path):
        """A write cut short by SIGKILL/power loss must not brick the store:
        the partial record is truncated away and the sweep resumes."""
        spec = small_spec()
        path = tmp_path / "store.jsonl"
        run_sweep(spec, ResultStore(path), clock=fake_clock())
        intact = path.read_bytes()

        path.write_bytes(intact + b'{"type":"point","format":1,"key":"d=')
        recovered = ResultStore(path)
        assert len(recovered) == len(spec.expand())
        assert path.read_bytes() == intact  # partial record truncated away
        # and the store is still appendable / resumable
        rerun = run_sweep(spec, recovered, clock=fake_clock())
        assert rerun.cached == len(spec.expand())

    def test_torn_newline_keeps_complete_final_record(self, tmp_path):
        """Only the terminator was lost: the record is kept, and the next
        append restores the newline instead of corrupting the file."""
        spec = small_spec()
        path = tmp_path / "store.jsonl"
        run_sweep(spec, ResultStore(path), clock=fake_clock())
        intact = path.read_bytes()

        path.write_bytes(intact[:-1])  # strip the final newline only
        recovered = ResultStore(path)
        assert len(recovered) == len(spec.expand())
        rerun = run_sweep(
            small_spec(seed=99), recovered, clock=fake_clock()
        )  # appends new points
        assert rerun.completed == len(spec.expand())
        reloaded = ResultStore(path)  # every record still parses
        assert len(reloaded) == 2 * len(spec.expand())

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(json.dumps({"type": "spec", "format": 99}) + "\n")
        with pytest.raises(StoreError, match="format"):
            ResultStore(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(json.dumps({"type": "mystery", "format": 1}) + "\n")
        with pytest.raises(StoreError, match="type"):
            ResultStore(path)


class TestStoreRoundTripProperty:
    def test_store_round_trip_preserves_every_field(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        points = st.builds(
            SweepPoint,
            distance=st.sampled_from([3, 5, 7, 9, 11]),
            noise=st.sampled_from(
                [
                    "circuit_level",
                    "phenomenological",
                    "code_capacity",
                    "correlated_burst",
                    "erasure",
                    "time_varying",
                ]
            ),
            physical_error_rate=st.floats(
                min_value=1e-9, max_value=0.5, allow_nan=False
            ),
            decoder=st.sampled_from(
                ["reference", "union-find", "micro-blossom", "parity-blossom"]
            ),
            shots=st.integers(min_value=1, max_value=10**7),
            seed=st.integers(min_value=0, max_value=2**63 - 1),
            shard_size=st.integers(min_value=1, max_value=4096),
            target_standard_error=st.one_of(
                st.none(), st.floats(min_value=1e-9, max_value=1.0, allow_nan=False)
            ),
            collect_latency=st.booleans(),
        )
        summaries = st.one_of(
            st.none(),
            st.builds(
                LatencySummary,
                count=st.integers(min_value=0, max_value=10**7),
                mean_seconds=st.floats(min_value=0, max_value=1, allow_nan=False),
                p50_seconds=st.floats(min_value=0, max_value=1, allow_nan=False),
                p99_seconds=st.floats(min_value=0, max_value=1, allow_nan=False),
                min_seconds=st.floats(min_value=0, max_value=1, allow_nan=False),
                max_seconds=st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
        )

        @hypothesis.given(
            point=points,
            summary=summaries,
            errors=st.integers(min_value=0, max_value=10**7),
            decoded=st.integers(min_value=0, max_value=10**7),
            defects=st.integers(min_value=0, max_value=10**9),
            erased=st.integers(min_value=0, max_value=10**9),
            stopped=st.booleans(),
            elapsed=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        )
        @hypothesis.settings(max_examples=60, deadline=None)
        def round_trip(point, summary, errors, decoded, defects, erased, stopped, elapsed):
            result = PointResult(
                point=point,
                shots=point.shots,
                errors=min(errors, point.shots),
                decoded_shots=min(decoded, point.shots),
                defects=defects,
                stopped_early=stopped,
                latency=summary,
                erased=erased,
                elapsed_seconds=elapsed,
            )
            store = ResultStore(None)  # in-memory, still JSON round-trips
            store.put("abc123", result)
            loaded = store.get("abc123", point)
            assert loaded is not None
            assert loaded.point == point  # every SweepPoint field, exactly
            assert loaded.shots == result.shots
            assert loaded.errors == result.errors
            assert loaded.decoded_shots == result.decoded_shots
            assert loaded.defects == result.defects
            assert loaded.stopped_early == result.stopped_early
            assert loaded.latency == result.latency
            assert loaded.erased == result.erased
            assert loaded.elapsed_seconds == result.elapsed_seconds
            assert loaded.cached

        round_trip()


class TestResumeSemantics:
    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        """Kill a sweep mid-run (snapshot via an aborting progress callback),
        resume, and compare the store byte-for-byte with an uninterrupted run."""
        spec = small_spec()
        uninterrupted = tmp_path / "uninterrupted.jsonl"
        run_sweep(spec, ResultStore(uninterrupted), clock=fake_clock())

        interrupted = tmp_path / "interrupted.jsonl"
        seen: list = []

        def abort_after_two(point, result) -> None:
            seen.append(point)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                spec,
                ResultStore(interrupted),
                clock=fake_clock(),
                progress=abort_after_two,
            )
        # the snapshot holds the spec plus exactly the completed points
        snapshot = ResultStore(interrupted)
        assert len(snapshot) == 2 < len(spec.expand())

        resumed = run_sweep(spec, snapshot, clock=fake_clock())
        assert resumed.cached == 2
        assert resumed.completed == len(spec.expand()) - 2
        assert interrupted.read_bytes() == uninterrupted.read_bytes()

    def test_resume_matches_any_worker_count(self, tmp_path):
        """Uninterrupted with workers=2 vs interrupted+resumed with workers=1
        must agree on the determinism fingerprint."""
        spec = small_spec(shots=64, shard_size=16)
        parallel_store = ResultStore(tmp_path / "parallel.jsonl")
        run_sweep(spec, parallel_store, workers=2)

        resumed_store = ResultStore(tmp_path / "resumed.jsonl")

        def abort_immediately(point, result) -> None:
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, resumed_store, progress=abort_immediately)
        run_sweep(spec, resumed_store, workers=1)
        assert resumed_store.fingerprint() == parallel_store.fingerprint()

    def test_cache_hits_do_not_rerun(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path / "store.jsonl")
        first = run_sweep(spec, store)
        assert (first.completed, first.cached) == (len(spec.expand()), 0)
        again = run_sweep(spec, store)
        assert (again.completed, again.cached) == (0, len(spec.expand()))
        # cached results carry the deterministic payload of the original run
        for a, b in zip(first.results, again.results):
            assert (a.shots, a.errors, a.defects) == (b.shots, b.errors, b.defects)

    def test_changed_spec_misses_the_cache(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        run_sweep(small_spec(), store)
        rerun = run_sweep(small_spec(shots=49), store)
        assert rerun.cached == 0

    def test_in_memory_sweep_without_store(self):
        run = run_sweep(small_spec(shots=16))
        assert run.completed == len(run.results)


class TestZeroFailureHandling:
    def test_rule_of_three_bound(self):
        assert rule_of_three_upper_bound(0, 1000) == pytest.approx(0.003)
        assert rule_of_three_upper_bound(0, 2) == 1.0
        assert rule_of_three_upper_bound(0, 0) == 1.0
        with_errors = rule_of_three_upper_bound(5, 100)
        assert 0.05 < with_errors < 0.1

    def test_estimate_logical_error_rate_surfaces_upper_bound(self):
        graph = build_graph(3, 0.0001)
        estimate = estimate_logical_error_rate(graph, "reference", 50, seed=3)
        assert estimate.errors == 0
        assert estimate.zero_failures
        assert estimate.rate == 0.0
        assert estimate.upper_bound == pytest.approx(3.0 / 50)

    def test_zero_failure_points_never_enter_fits(self):
        zero = PointResult(
            point=SweepPoint(3, "circuit_level", 0.001, "reference", 100, 1, 16),
            shots=100,
            errors=0,
            decoded_shots=10,
            defects=12,
            stopped_early=False,
        )
        nonzero = PointResult(
            point=SweepPoint(3, "circuit_level", 0.02, "reference", 100, 2, 16),
            shots=100,
            errors=4,
            decoded_shots=90,
            defects=150,
            stopped_early=False,
        )
        assert scaling_points([zero, nonzero]) == [(3, 0.02, 0.04)]
        with pytest.raises(ValueError):
            fit_sweep_scaling([zero])  # only degenerate points -> no fit

    def test_report_rows_show_one_sided_bound(self):
        zero = PointResult(
            point=SweepPoint(3, "circuit_level", 0.001, "reference", 100, 1, 16),
            shots=100,
            errors=0,
            decoded_shots=10,
            defects=12,
            stopped_early=False,
        )
        (row,) = report_rows([zero])
        assert row["logical_error_rate"].startswith("<=")
        assert row["upper_bound"] == pytest.approx(0.03)


class TestBenchDocument:
    @pytest.fixture(scope="class")
    def sweep_run(self, tmp_path_factory):
        spec = small_spec(
            distances=(3, 5),
            decoders=("union-find",),
            shots=64,
            shard_size=32,
            collect_latency=True,
        )
        store = ResultStore(tmp_path_factory.mktemp("bench") / "store.jsonl")
        return run_sweep(spec, store)

    def test_document_is_schema_valid(self, sweep_run):
        document = bench_document(sweep_run, commit="abc", timestamp="t")
        validate_bench(document)
        assert document["commit"] == "abc"
        assert len(document["points"]) == len(sweep_run.results)
        assert all(p["latency"] is not None for p in document["points"])

    def test_write_bench_round_trips(self, sweep_run, tmp_path):
        document = bench_document(sweep_run, commit="abc", timestamp="t")
        path = write_bench(document, tmp_path / "BENCH_sweep.json")
        validate_bench(json.loads(path.read_text()))

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.pop("points"), "missing top-level"),
            (lambda d: d.update(schema_version=99), "schema_version"),
            (lambda d: d.update(commit=""), "commit"),
            (lambda d: d["points"].clear(), "non-empty"),
            (lambda d: d["points"][0].pop("errors"), "missing key"),
            (lambda d: d["points"][0].update(logical_error_rate=1.5), "> 1"),
            (lambda d: d["points"][0].update(shots_per_second=-1), "< 0"),
            (lambda d: d["points"][0].update(zero_failures=True), "inconsistent"),
            (lambda d: d["spec"].pop("hash"), "spec: missing"),
        ],
    )
    def test_schema_violations_are_caught(self, sweep_run, mutate, match):
        document = bench_document(sweep_run, commit="abc", timestamp="t")
        mutate(document)
        with pytest.raises(BenchSchemaError, match=match):
            validate_bench(document)

    def test_smoke_spec_is_fit_capable(self):
        """The pinned CI spec covers two distances per decoder so the
        BENCH document can carry threshold fits."""
        assert len(SMOKE_SPEC.distances) >= 2
        assert SMOKE_SPEC.collect_latency
        assert all(p >= 0.02 for p in SMOKE_SPEC.physical_error_rates)


class TestTrivialLatency:
    def test_trivial_shots_enter_histogram_when_floor_is_set(self):
        graph = build_graph(3, 0.001)  # mostly trivial shots at this rate
        floor = modelled_trivial_latency_seconds("union-find", graph)
        assert floor > 0.0
        from repro.evaluation import modelled_latency_fn

        engine = MonteCarloEngine(
            graph,
            "union-find",
            latency_fn=modelled_latency_fn("union-find", graph),
            trivial_latency_seconds=floor,
        )
        result = engine.run(40, seed=1)
        assert result.histogram.count == result.shots
        assert result.histogram.min_seconds == pytest.approx(floor)

    def test_trivial_latency_models_exist_for_all_modelled_decoders(self):
        graph = build_graph(3, 0.01)
        for name in ("micro-blossom", "micro-blossom-batch", "parity-blossom", "union-find"):
            assert modelled_trivial_latency_seconds(name, graph) > 0.0
        with pytest.raises(ValueError):
            modelled_trivial_latency_seconds("reference", graph)

    def test_engine_rejects_negative_floor(self):
        graph = build_graph(3, 0.01)
        with pytest.raises(ValueError):
            MonteCarloEngine(graph, "reference", trivial_latency_seconds=-1.0)

    def test_engine_tracks_defect_totals(self):
        graph = build_graph(3, 0.03)
        result = MonteCarloEngine(graph, "reference").run(64, seed=5)
        assert result.defects == sum(shard.defects for shard in result.shards)
        assert result.defects > 0


class TestMigratedLatencySweep:
    def test_latency_sweep_resumes_through_a_store(self, tmp_path):
        store = ResultStore(tmp_path / "figure9.jsonl")
        kwargs = dict(distances=(3,), error_rates=(0.002,), samples=8, seed=1)
        first = latency_sweep(store=store, **kwargs)
        fingerprint = store.fingerprint()
        second = latency_sweep(store=store, **kwargs)
        assert second == first
        assert store.fingerprint() == fingerprint

    def test_latency_sweep_covers_every_shot(self):
        # trivial shots carry the model's floor latency, so the mean is
        # positive even at error rates where most syndromes are empty
        rows = latency_sweep(distances=(3,), error_rates=(0.0005,), samples=6, seed=2)
        assert all(row["mean_latency_us"] > 0 for row in rows)


def test_latency_summary_of_empty_histogram():
    summary = LatencySummary.from_histogram(LatencyHistogram())
    assert summary.count == 0
    assert summary.mean_seconds == 0.0


class TestNoiseFamilyAxis:
    """Sweeps over the richer noise families: resume stability, erased
    bookkeeping, and ``lut+`` twin points under burst noise."""

    @staticmethod
    def _family_spec(**overrides) -> SweepSpec:
        params = dict(
            name="noise-families",
            distances=(3,),
            physical_error_rates=(0.01,),
            decoders=("union-find",),
            shots=48,
            seed=11,
            shard_size=16,
            noise_models=("correlated_burst", "erasure", "time_varying"),
        )
        params.update(overrides)
        return small_spec(**params)

    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        spec = self._family_spec()
        uninterrupted = tmp_path / "uninterrupted.jsonl"
        run_sweep(spec, ResultStore(uninterrupted), clock=fake_clock())

        interrupted = tmp_path / "interrupted.jsonl"
        seen: list = []

        def abort_after_one(point, result) -> None:
            seen.append(point)
            if len(seen) == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(
                spec,
                ResultStore(interrupted),
                clock=fake_clock(),
                progress=abort_after_one,
            )
        run_sweep(spec, ResultStore(interrupted), clock=fake_clock())
        assert interrupted.read_bytes() == uninterrupted.read_bytes()

    def test_point_keys_carry_the_family(self):
        spec = self._family_spec()
        families = {point.noise for point in spec.expand()}
        assert families == {"correlated_burst", "erasure", "time_varying"}
        for point in spec.expand():
            assert f"/noise={point.noise}/" in point.key

    def test_erased_column_round_trips_only_for_erasure_points(self, tmp_path):
        spec = self._family_spec(shots=64)
        store = ResultStore(tmp_path / "store.jsonl")
        run = run_sweep(spec, store)
        by_family = {result.point.noise: result for result in run.results}
        assert by_family["erasure"].erased > 0
        assert by_family["correlated_burst"].erased == 0
        assert by_family["time_varying"].erased == 0
        # the store's JSON lines only mention "erased" on the erasure point,
        # so pre-existing stores (and their fingerprints) stay byte-stable
        lines = (tmp_path / "store.jsonl").read_text().splitlines()
        for line in lines:
            record = json.loads(line)
            if record.get("type") != "point":
                continue
            expects_erased = "/noise=erasure/" in record["key"]
            assert ("erased" in record["result"]) == expects_erased
        # and cached reads restore the tally exactly
        rerun = run_sweep(spec, store)
        assert rerun.cached == len(spec.expand())
        recached = {r.point.noise: r for r in rerun.results}
        assert recached["erasure"].erased == by_family["erasure"].erased

    def test_lut_twin_points_match_under_burst_noise(self):
        """``lut+union-find`` and ``union-find`` on the *same* shot stream
        (identical explicit seeds) must produce identical statistics under
        correlated bursts — the LUT layer is invisible to the sweep numbers."""
        from repro.sweeps.runner import run_point

        def twin(decoder: str) -> SweepPoint:
            return SweepPoint(
                distance=3,
                noise="correlated_burst",
                physical_error_rate=0.01,
                decoder=decoder,
                shots=64,
                seed=77,
                shard_size=16,
            )

        base = run_point(twin("union-find"))
        lut = run_point(twin("lut+union-find"))
        assert lut.errors == base.errors
        assert lut.defects == base.defects
        assert lut.shots == base.shots
        assert lut.lut is not None and base.lut is None
        assert lut.lut.hits + lut.lut.misses + lut.lut.zero_defect_hits == lut.shots
