"""Tests for the syndrome graph, the brute-force oracle and the reference decoder."""

from __future__ import annotations

import pytest

from repro.graphs import BOUNDARY, SyndromeSampler, circuit_level_noise
from repro.graphs import surface_code_decoding_graph
from repro.matching import (
    MAX_BRUTE_FORCE_DEFECTS,
    ReferenceDecoder,
    brute_force_matching,
    build_syndrome_graph,
)


class TestSyndromeGraph:
    def test_pairwise_distances_match_graph(self, path_graph_builder):
        graph = path_graph_builder()
        syndrome_graph = build_syndrome_graph(graph, [1, 2, 3])
        weight = graph.edges[0].weight
        assert syndrome_graph.distance(1, 2) == weight
        assert syndrome_graph.distance(1, 3) == 2 * weight
        assert syndrome_graph.distance(2, 3) == weight

    def test_boundary_distances(self, path_graph_builder):
        graph = path_graph_builder()
        syndrome_graph = build_syndrome_graph(graph, [1, 2, 3])
        weight = graph.edges[0].weight
        assert syndrome_graph.boundary_distance[1] == weight
        assert syndrome_graph.boundary_distance[2] == 2 * weight
        assert syndrome_graph.boundary_vertex[1] == 0
        assert syndrome_graph.boundary_vertex[3] == 4

    def test_rejects_virtual_defects(self, path_graph_builder):
        graph = path_graph_builder()
        with pytest.raises(ValueError):
            build_syndrome_graph(graph, [0, 1])

    def test_matching_weight_helper(self, path_graph_builder):
        graph = path_graph_builder()
        syndrome_graph = build_syndrome_graph(graph, [1, 3])
        weight = graph.edges[0].weight
        assert syndrome_graph.matching_weight([(1, 3)]) == 2 * weight
        assert (
            syndrome_graph.matching_weight([(1, BOUNDARY), (3, BOUNDARY)], BOUNDARY)
            == 2 * weight
        )

    def test_triangle_inequality(self, surface_d3_circuit, sampler_d3):
        syndrome = sampler_d3.sample_batch(20)
        defects = sorted({d for s in syndrome for d in s.defects})[:6]
        if len(defects) < 3:
            pytest.skip("not enough defects sampled")
        syndrome_graph = build_syndrome_graph(surface_d3_circuit, defects)
        a, b, c = defects[:3]
        assert syndrome_graph.distance(a, c) <= (
            syndrome_graph.distance(a, b) + syndrome_graph.distance(b, c)
        )


class TestBruteForce:
    def test_empty_syndrome(self, path_graph_builder):
        graph = path_graph_builder()
        result = brute_force_matching(build_syndrome_graph(graph, []))
        assert result.pairs == []
        assert result.weight == 0

    def test_single_defect_goes_to_boundary(self, path_graph_builder):
        graph = path_graph_builder()
        result = brute_force_matching(build_syndrome_graph(graph, [1]))
        assert result.pairs == [(1, BOUNDARY)]
        assert result.weight == graph.edges[0].weight

    def test_adjacent_pair_matched_together(self, path_graph_builder):
        graph = path_graph_builder()
        result = brute_force_matching(build_syndrome_graph(graph, [1, 2]))
        weight = graph.edges[0].weight
        # Matching the two defects directly costs `weight`; sending both to
        # their nearest boundaries costs weight + 2 * weight.
        assert result.weight == weight
        assert set(result.pairs) == {(1, 2)}

    def test_three_defects_use_boundary(self, path_graph_builder):
        graph = path_graph_builder()
        result = brute_force_matching(build_syndrome_graph(graph, [1, 2, 3]))
        weight = graph.edges[0].weight
        # Optimal: match 2-3 (or 1-2) and send the remaining defect to its
        # boundary at distance `weight`.
        assert result.weight == 2 * weight
        result.validate_perfect([1, 2, 3])

    def test_too_many_defects_rejected(self, surface_d5_circuit):
        defects = [
            v
            for v in range(surface_d5_circuit.num_vertices)
            if not surface_d5_circuit.is_virtual(v)
        ][: MAX_BRUTE_FORCE_DEFECTS + 2]
        syndrome_graph = build_syndrome_graph(surface_d5_circuit, defects)
        with pytest.raises(ValueError):
            brute_force_matching(syndrome_graph)


class TestReferenceDecoder:
    def test_empty_syndrome(self, surface_d3_circuit):
        result = ReferenceDecoder(surface_d3_circuit).decode([])
        assert result.pairs == []
        assert result.weight == 0

    def test_single_defect(self, path_graph_builder):
        graph = path_graph_builder()
        result = ReferenceDecoder(graph).decode([2])
        assert result.pairs == [(2, BOUNDARY)]
        assert result.weight == 2 * graph.edges[0].weight

    def test_agrees_with_brute_force_on_random_syndromes(self):
        graph = surface_code_decoding_graph(5, circuit_level_noise(0.02))
        sampler = SyndromeSampler(graph, seed=99)
        reference = ReferenceDecoder(graph)
        checked = 0
        for _ in range(40):
            syndrome = sampler.sample()
            if not 0 < syndrome.defect_count <= 12:
                continue
            brute = brute_force_matching(build_syndrome_graph(graph, syndrome.defects))
            assert reference.decode(syndrome).weight == brute.weight
            checked += 1
        assert checked >= 5

    def test_matching_is_perfect(self, surface_d5_circuit):
        sampler = SyndromeSampler(surface_d5_circuit, seed=3)
        reference = ReferenceDecoder(surface_d5_circuit)
        for _ in range(20):
            syndrome = sampler.sample()
            result = reference.decode(syndrome)
            result.validate_perfect(syndrome.defects)

    def test_optimal_weight_helper(self, path_graph_builder):
        graph = path_graph_builder()
        decoder = ReferenceDecoder(graph)
        assert decoder.optimal_weight([1, 2]) == graph.edges[0].weight
