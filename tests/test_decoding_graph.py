"""Unit tests for the decoding-graph data structures."""

from __future__ import annotations

import pytest

from repro.graphs import (
    DEFAULT_MAX_WEIGHT,
    WEIGHT_DOUBLING,
    DecodingGraph,
    Edge,
    GraphBuilder,
    Vertex,
    quantized_weight,
)


class TestQuantizedWeight:
    def test_reference_probability_maps_to_max_weight(self):
        assert quantized_weight(0.001, 0.001) == DEFAULT_MAX_WEIGHT

    def test_larger_probability_gives_smaller_weight(self):
        heavy = quantized_weight(0.001, 0.001)
        light = quantized_weight(0.01, 0.001)
        assert light < heavy

    def test_weight_never_below_one(self):
        assert quantized_weight(0.4999, 0.0001) == 1

    def test_weight_never_above_max(self):
        assert quantized_weight(0.00001, 0.001) == DEFAULT_MAX_WEIGHT

    def test_custom_max_weight(self):
        assert quantized_weight(0.001, 0.001, max_weight=7) == 7

    @pytest.mark.parametrize("probability", [0.0, 0.5, 0.7, -0.1])
    def test_invalid_probability_rejected(self, probability):
        with pytest.raises(ValueError):
            quantized_weight(probability, 0.001)

    @pytest.mark.parametrize("reference", [0.0, 0.5, 1.2])
    def test_invalid_reference_rejected(self, reference):
        with pytest.raises(ValueError):
            quantized_weight(0.01, reference)


class TestEdge:
    def test_other_endpoint(self):
        edge = Edge(0, 3, 7, 2, 0.01)
        assert edge.other(3) == 7
        assert edge.other(7) == 3

    def test_other_rejects_non_endpoint(self):
        edge = Edge(0, 3, 7, 2, 0.01)
        with pytest.raises(ValueError):
            edge.other(5)


class TestGraphBuilder:
    def test_builds_consistent_indices(self):
        builder = GraphBuilder()
        a = builder.add_vertex(0, 0, 0)
        b = builder.add_vertex(0, 0, 1)
        edge = builder.add_edge(a, b, 0.01, 0.01)
        graph = builder.build()
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.edges[edge].u == a
        assert graph.edges[edge].v == b

    def test_weights_are_doubled(self):
        builder = GraphBuilder()
        a = builder.add_vertex(0, 0, 0)
        b = builder.add_vertex(0, 0, 1)
        builder.add_edge(a, b, 0.01, 0.01)
        graph = builder.build()
        assert graph.edges[0].weight == WEIGHT_DOUBLING * DEFAULT_MAX_WEIGHT
        assert graph.edges[0].weight % 2 == 0

    def test_duplicate_edge_rejected(self):
        builder = GraphBuilder()
        a = builder.add_vertex(0, 0, 0)
        b = builder.add_vertex(0, 0, 1)
        builder.add_edge(a, b, 0.01, 0.01)
        with pytest.raises(ValueError):
            builder.add_edge(b, a, 0.01, 0.01)


class TestDecodingGraphValidation:
    def test_rejects_misordered_vertices(self):
        vertices = [Vertex(1, 0, 0, 0)]
        with pytest.raises(ValueError):
            DecodingGraph(vertices, [])

    def test_rejects_self_loop(self):
        vertices = [Vertex(0, 0, 0, 0)]
        edges = [Edge(0, 0, 0, 1, 0.01)]
        with pytest.raises(ValueError):
            DecodingGraph(vertices, edges)

    def test_rejects_out_of_range_endpoint(self):
        vertices = [Vertex(0, 0, 0, 0), Vertex(1, 0, 0, 1)]
        edges = [Edge(0, 0, 5, 1, 0.01)]
        with pytest.raises(ValueError):
            DecodingGraph(vertices, edges)

    def test_rejects_negative_weight(self):
        vertices = [Vertex(0, 0, 0, 0), Vertex(1, 0, 0, 1)]
        edges = [Edge(0, 0, 1, -2, 0.01)]
        with pytest.raises(ValueError):
            DecodingGraph(vertices, edges)


class TestShortestPaths:
    def test_path_distances_on_line(self, path_graph_builder):
        graph = path_graph_builder()
        weight = graph.edges[0].weight
        assert graph.distance(1, 2) == weight
        assert graph.distance(1, 3) == 2 * weight
        assert graph.distance(0, 4) == 4 * weight

    def test_shortest_path_edges_reconstruct_distance(self, path_graph_builder):
        graph = path_graph_builder()
        path = graph.shortest_path_edges(1, 3)
        assert sum(graph.edges[e].weight for e in path) == graph.distance(1, 3)
        assert len(path) == 2

    def test_nearest_virtual(self, path_graph_builder):
        graph = path_graph_builder()
        distance, vertex = graph.nearest_virtual(1)
        assert vertex == 0
        assert distance == graph.edges[0].weight
        distance, vertex = graph.nearest_virtual(3)
        assert vertex == 4

    def test_distance_caching_returns_same_object(self, path_graph_builder):
        graph = path_graph_builder()
        first = graph.shortest_distances(1)
        second = graph.shortest_distances(1)
        assert first is second

    def test_shortest_path_to_self_is_empty(self, path_graph_builder):
        graph = path_graph_builder()
        assert graph.shortest_path_edges(2, 2) == []


class TestObservableAndLayers:
    def test_observable_edges_from_flags(self, path_graph_builder):
        graph = path_graph_builder()
        assert graph.observable_edges == frozenset({0})
        assert graph.crosses_observable([0])
        assert graph.crosses_observable({0, 1, 2})
        assert not graph.crosses_observable([1, 2])

    def test_correction_from_pairs_cancels_shared_edges(self, path_graph_builder):
        graph = path_graph_builder()
        correction = graph.correction_from_pairs([(1, 3), (1, 3)])
        assert correction == set()

    def test_vertices_in_layer(self, surface_d3_circuit):
        layer0 = surface_d3_circuit.vertices_in_layer(0)
        assert layer0
        assert all(surface_d3_circuit.vertices[v].layer == 0 for v in layer0)

    def test_num_layers(self, surface_d3_circuit):
        assert surface_d3_circuit.num_layers == 3

    def test_edge_between(self, path_graph_builder):
        graph = path_graph_builder()
        assert graph.edge_between(1, 2) is not None
        assert graph.edge_between(1, 3) is None

    def test_counts(self, path_graph_builder):
        graph = path_graph_builder()
        assert graph.num_real_vertices == 3
        assert len(graph.virtual_vertices) == 2
        assert graph.total_weight() == 4 * graph.edges[0].weight
        assert graph.max_weight() == graph.edges[0].weight
