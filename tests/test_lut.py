"""Tests of the LUT pre-decode subsystem (`repro.lut`).

Covers the layers the subsystem spans:

* :func:`repro.lut.pack_defects` and the clone helpers (mutation safety of
  stored templates);
* :class:`repro.lut.LookupTable` — zero-defect fast path, deterministic
  budget truncation, candidate enumeration;
* :class:`repro.lut.LUTDecoder` — hit/miss accounting, registry integration
  (``lut+<fallback>`` family, capabilities, pickling through the
  process-pool engine);
* :class:`repro.lut.OutcomeCache` — LRU eviction under a byte budget,
  clone-on-get/put, thread-safe counters;
* the service mount — cache-hit short-circuit in ``DecodeService.submit``,
  ``ServiceLoadEngine`` pass replay, ``BENCH_service.json`` v2 fields;
* the sweep surface — :class:`repro.sweeps.LUTStats`, per-point ``lut``
  blocks in ``BENCH_sweep.json`` v3, and store byte-stability (points
  without LUT stats serialize exactly as before the subsystem existed).
"""

from __future__ import annotations

import pickle
from collections import Counter

import pytest

from repro.api import LUTConfig, available_decoders, decoder_spec, get_decoder
from repro.api.outcome import DecodeOutcome
from repro.evaluation import MonteCarloEngine, ServiceLoadEngine
from repro.graphs import (
    Syndrome,
    SyndromeSampler,
    code_capacity_noise,
    surface_code_decoding_graph,
)
from repro.lut import (
    ENTRY_OVERHEAD_BYTES,
    LookupTable,
    LUTDecoder,
    OutcomeCache,
    clone_matching,
    clone_outcome,
    outcome_cache_key,
    outcome_cost_bytes,
    pack_defects,
)
from repro.service import (
    CodeSpec,
    DecodeRequest,
    DecodeService,
    Scenario,
    ServiceBenchSchemaError,
    SessionKey,
    TraceSpec,
    cache_comparison_entry,
    service_bench_document,
    validate_service_bench,
)
from repro.sweeps import (
    BenchSchemaError,
    LUTStats,
    PointResult,
    ResultStore,
    SweepSpec,
    bench_document,
    run_sweep,
    validate_bench,
    validate_spec_axes,
)

D3_GRAPH = surface_code_decoding_graph(3, code_capacity_noise(0.05))
LUT_BASES = ("micro-blossom", "micro-blossom-batch", "parity-blossom", "reference", "union-find")


def _sample_syndromes(graph, count, seed=11):
    sampler = SyndromeSampler(graph, seed=seed)
    return sampler.sample_batch(count)


# ---------------------------------------------------------------------------
# packing and clones
# ---------------------------------------------------------------------------
def test_pack_defects_is_order_independent():
    assert pack_defects(()) == 0
    assert pack_defects((2, 5)) == pack_defects((5, 2)) == (1 << 2) | (1 << 5)


def test_clone_outcome_is_independent_of_the_original():
    decoder = get_decoder("union-find", D3_GRAPH)
    syndrome = next(s for s in _sample_syndromes(D3_GRAPH, 40) if s.defects)
    detailed = decoder.decode_detailed(syndrome)
    outcome = DecodeOutcome(
        result=decoder.decode(syndrome),
        correction=set(detailed.correction),
        defect_count=detailed.defect_count,
        counters=Counter(detailed.counters),
    )
    cloned = clone_outcome(outcome)
    assert cloned is not outcome
    assert cloned.correction == outcome.correction
    assert cloned.result.weight == outcome.result.weight
    cloned.correction.add(999_999)
    cloned.counters["mutated"] += 1
    cloned.result.pairs.append((0, 0))
    assert 999_999 not in outcome.correction
    assert "mutated" not in outcome.counters
    assert (0, 0) not in outcome.result.pairs


def test_clone_matching_is_independent_of_the_original():
    decoder = get_decoder("union-find", D3_GRAPH)
    syndrome = next(s for s in _sample_syndromes(D3_GRAPH, 40) if s.defects)
    result = decoder.decode(syndrome)
    cloned = clone_matching(result)
    cloned.pairs.append((7, 7))
    cloned.boundary_vertices[123] = 456
    assert (7, 7) not in result.pairs
    assert 123 not in result.boundary_vertices


# ---------------------------------------------------------------------------
# LookupTable
# ---------------------------------------------------------------------------
def test_table_precomputes_zero_single_and_paired_defects():
    table = LookupTable(D3_GRAPH, get_decoder("union-find", D3_GRAPH))
    real = [v for v in range(D3_GRAPH.num_vertices) if not D3_GRAPH.is_virtual(v)]
    assert table.lookup(()) is not None
    for v in real:
        assert table.lookup((v,)) is not None, v
    assert table.entries > 1 + len(real)  # at least some radius-2 pairs
    assert not table.truncated
    assert table.bytes_resident <= table.memory_budget_bytes
    assert table.candidates == table.entries


def test_table_lookup_rejects_oversized_defect_sets():
    table = LookupTable(D3_GRAPH, get_decoder("union-find", D3_GRAPH), max_defects=1)
    real = [v for v in range(D3_GRAPH.num_vertices) if not D3_GRAPH.is_virtual(v)]
    assert table.lookup((real[0], real[1])) is None
    assert table.lookup((real[0],)) is not None


def test_table_truncates_deterministically_at_the_budget():
    fallback = get_decoder("union-find", D3_GRAPH)
    tiny_a = LookupTable(D3_GRAPH, fallback, memory_budget_bytes=2_000)
    tiny_b = LookupTable(D3_GRAPH, fallback, memory_budget_bytes=2_000)
    full = LookupTable(D3_GRAPH, fallback)
    assert tiny_a.truncated and not full.truncated
    assert tiny_a.entries < full.entries
    # the zero-defect fast path survives any budget
    assert tiny_a.lookup(()) is not None
    # identical budgets keep the identical deterministic prefix
    assert tiny_a.entries == tiny_b.entries
    assert tiny_a.bytes_resident == tiny_b.bytes_resident
    assert set(tiny_a.stats()) == {
        "entries",
        "bytes_resident",
        "memory_budget_bytes",
        "truncated",
        "candidates",
    }


def test_table_rejects_invalid_parameters():
    fallback = get_decoder("union-find", D3_GRAPH)
    with pytest.raises(ValueError):
        LookupTable(D3_GRAPH, fallback, max_defects=-1)
    with pytest.raises(ValueError):
        LookupTable(D3_GRAPH, fallback, cluster_radius=0)
    with pytest.raises(ValueError):
        LookupTable(D3_GRAPH, fallback, memory_budget_bytes=0)


# ---------------------------------------------------------------------------
# LUTDecoder + registry
# ---------------------------------------------------------------------------
def test_registry_exposes_the_lut_family():
    names = available_decoders()
    for base in LUT_BASES:
        assert f"lut+{base}" in names, base
    spec = decoder_spec("lut+union-find")
    assert spec.capabilities.lut_predecode
    assert not spec.capabilities.timing_model  # no modelled latency for the wrapper
    assert spec.config_cls is LUTConfig
    base_caps = decoder_spec("micro-blossom").capabilities
    lut_caps = decoder_spec("lut+micro-blossom").capabilities
    assert lut_caps.native_streaming == base_caps.native_streaming
    assert lut_caps.exact == base_caps.exact


def test_lut_factories_survive_pickling():
    # MonteCarloEngine ships spec.factory to process-pool workers.
    for base in LUT_BASES:
        spec = decoder_spec(f"lut+{base}")
        assert pickle.loads(pickle.dumps(spec.factory)) is not None


def test_lut_config_drives_the_table():
    config = LUTConfig(max_defects=1, memory_budget_bytes=64 << 10)
    decoder = get_decoder("lut+union-find", D3_GRAPH, config)
    assert decoder.table.max_defects == 1
    assert decoder.table.memory_budget_bytes == 64 << 10
    with pytest.raises((TypeError, AttributeError)):  # configs stay frozen
        config.max_defects = 2


def test_lut_decoder_counts_hits_misses_and_resets():
    decoder = LUTDecoder(D3_GRAPH, "union-find", cluster_radius=1)
    real = [v for v in range(D3_GRAPH.num_vertices) if not D3_GRAPH.is_virtual(v)]
    hit = Syndrome(defects=(real[0],))
    outcome = decoder.decode_detailed(hit)
    assert outcome.counters["lut_hit"] == 1
    assert decoder.hits == 1 and decoder.misses == 0

    # a far-apart pair is outside radius 1 ⇒ miss, falls through unchanged
    far = Syndrome(defects=(real[0], real[-1]))
    if decoder.table.lookup(far.defects) is None:
        miss_outcome = decoder.decode_detailed(far)
        assert miss_outcome.counters["lut_miss"] == 1
        assert decoder.misses == 1

    zero = decoder.decode_detailed(Syndrome(defects=()))
    assert zero.counters["lut_zero_defect_hit"] == 1
    assert decoder.zero_defect_hits == 1
    assert 0.0 < decoder.hit_rate <= 1.0
    stats = decoder.stats()
    assert stats["hits"] == decoder.hits
    assert stats["table"]["entries"] == decoder.table.entries

    decoder.reset()
    assert (decoder.hits, decoder.misses, decoder.zero_defect_hits) == (0, 0, 0)
    assert decoder.hit_rate == 0.0


def test_lut_decoder_hits_do_not_share_mutable_state():
    decoder = LUTDecoder(D3_GRAPH, "union-find")
    real = [v for v in range(D3_GRAPH.num_vertices) if not D3_GRAPH.is_virtual(v)]
    syndrome = Syndrome(defects=(real[0],))
    first = decoder.decode_detailed(syndrome)
    first.correction.add(999_999)
    second = decoder.decode_detailed(syndrome)
    assert 999_999 not in second.correction


def test_lut_decoder_rejects_unknown_fallback():
    with pytest.raises(KeyError):
        LUTDecoder(D3_GRAPH, "no-such-decoder")


def test_lut_counters_flow_through_the_engine_across_workers():
    engine = MonteCarloEngine(D3_GRAPH, "lut+union-find", shard_size=32, workers=2)
    result = engine.run(128, seed=5)
    hits = result.counters.get("lut_hit", 0)
    misses = result.counters.get("lut_miss", 0)
    assert hits + misses == result.decoded_shots
    assert hits > 0


# ---------------------------------------------------------------------------
# OutcomeCache
# ---------------------------------------------------------------------------
def _outcome(weight_marker: int) -> DecodeOutcome:
    return DecodeOutcome(
        correction=set(range(weight_marker)),
        defect_count=weight_marker,
        counters=Counter({"marker": weight_marker}),
    )


def test_outcome_cache_round_trips_clones():
    cache = OutcomeCache(max_bytes=1 << 16)
    outcome = _outcome(3)
    cache.put("k", outcome)
    outcome.correction.add(77)  # post-put mutation must not reach the cache
    got = cache.get("k")
    assert got is not outcome
    assert got.correction == {0, 1, 2}
    got.correction.add(88)  # post-get mutation must not reach the cache
    assert cache.get("k").correction == {0, 1, 2}
    assert cache.get("missing") is None
    snap = cache.stats_snapshot()
    assert snap["enabled"] and snap["hits"] == 2 and snap["misses"] == 1
    assert snap["entries"] == len(cache) == 1
    assert snap["bytes_resident"] == cache.bytes_resident > 0


def test_outcome_cache_evicts_lru_under_byte_budget():
    cost = ENTRY_OVERHEAD_BYTES + outcome_cost_bytes(_outcome(0))
    cache = OutcomeCache(max_bytes=3 * cost)
    for key in ("a", "b", "c"):
        cache.put(key, _outcome(0))
    assert cache.get("a") is not None  # refresh: "b" becomes LRU
    cache.put("d", _outcome(0))
    assert cache.get("b") is None  # evicted
    assert cache.get("a") is not None and cache.get("d") is not None
    assert cache.stats.evictions == 1
    assert cache.bytes_resident <= cache.max_bytes


def test_outcome_cache_replaces_stale_entries_and_skips_oversized():
    cache = OutcomeCache(max_bytes=ENTRY_OVERHEAD_BYTES + outcome_cost_bytes(_outcome(1)))
    cache.put("k", _outcome(1))
    before = cache.bytes_resident
    cache.put("k", _outcome(1))  # same key: replace, not double-count
    assert cache.bytes_resident == before and len(cache) == 1
    cache.put("huge", _outcome(500))  # over the whole budget: silently skipped
    assert cache.get("huge") is None
    cache.clear()
    assert len(cache) == 0 and cache.bytes_resident == 0
    assert cache.stats.misses > 0  # stats survive clear()
    with pytest.raises(ValueError):
        OutcomeCache(max_bytes=0)


def test_outcome_cache_key_depends_on_session_and_defects_only():
    key = SessionKey(CodeSpec(distance=3, physical_error_rate=0.02), "union-find")
    a = outcome_cache_key(key.key(), Syndrome(defects=(1, 4)))
    b = outcome_cache_key(key.key(), Syndrome(defects=(1, 4), logical_flip=True))
    c = outcome_cache_key(key.key(), Syndrome(defects=(2,)))
    d = outcome_cache_key("other-session", Syndrome(defects=(1, 4)))
    assert a == b  # ground-truth metadata is invisible to the decoder
    assert a != c and a != d


# ---------------------------------------------------------------------------
# service mount
# ---------------------------------------------------------------------------
def test_service_serves_repeat_syndromes_from_the_outcome_cache():
    key = SessionKey(CodeSpec(distance=3, physical_error_rate=0.02), "union-find")
    graph = surface_code_decoding_graph(3, code_capacity_noise(0.02))
    unique = {s.defects: s for s in _sample_syndromes(graph, 40, seed=3)}
    syndromes = list(unique.values())[:6]
    assert len(syndromes) == 6
    with DecodeService(workers=1, outcome_cache_bytes=1 << 20) as service:
        first = [service.submit(DecodeRequest(key, s)).result() for s in syndromes]
        second = [service.submit(DecodeRequest(key, s)).result() for s in syndromes]
    assert all(r.ok and not r.cached for r in first)
    assert all(r.ok and r.cached for r in second)
    for a, b in zip(first, second):
        assert a.outcome.correction_edges(graph) == b.outcome.correction_edges(graph)
        assert a.outcome.weight == b.outcome.weight
    stats = service.stats_snapshot()
    assert stats["cache_hits"] == len(syndromes)
    assert stats["outcome_cache"]["hits"] == len(syndromes)
    assert stats["outcome_cache"]["enabled"]


def test_service_outcome_cache_is_off_by_default():
    with DecodeService(workers=1) as service:
        snapshot = service.stats_snapshot()
    assert snapshot["outcome_cache"] == {"enabled": False}
    assert snapshot["cache_hits"] == 0


def test_load_engine_repeats_replay_through_one_cache():
    trace = TraceSpec(
        "lut-cache", (Scenario(3, physical_error_rate=0.02),), requests=12, seed=9
    )
    engine = ServiceLoadEngine(
        trace, workers=1, outcome_cache_bytes=1 << 20, repeats=2
    )
    result = engine.run(verify_identity=True)
    assert result.requests == 24
    assert result.cache_hits == 12  # the whole second pass
    assert result.outcome_cache["hits"] == 12
    assert result.identity_mismatches == 0
    with pytest.raises(ValueError):
        ServiceLoadEngine(trace, repeats=0)


def test_service_bench_document_carries_cache_fields():
    trace = TraceSpec(
        "lut-bench", (Scenario(3, physical_error_rate=0.02),), requests=8, seed=4
    )
    off = ServiceLoadEngine(trace, workers=1, repeats=2).run()
    on = ServiceLoadEngine(
        trace, workers=1, outcome_cache_bytes=1 << 20, repeats=2
    ).run()
    comparison = cache_comparison_entry(off, on)
    document = service_bench_document(trace, on, cache_comparison=comparison)
    validate_service_bench(document)
    assert document["cache_hits"] == 8
    assert document["outcome_cache"]["enabled"]
    assert document["cache_comparison"]["off"]["cache_hits"] == 0
    assert document["cache_comparison"]["on"]["cache_hits"] == 8
    assert document["cache_comparison"]["throughput_ratio"] > 0

    # the off side must actually be cache-less — the validator enforces it
    broken = service_bench_document(
        trace, on, cache_comparison=cache_comparison_entry(on, on)
    )
    with pytest.raises(ServiceBenchSchemaError, match="cache_hits"):
        validate_service_bench(broken)


# ---------------------------------------------------------------------------
# sweep surface
# ---------------------------------------------------------------------------
def test_lut_stats_round_trip_and_hit_rate():
    stats = LUTStats(hits=6, misses=2, zero_defect_hits=8)
    assert stats.hit_rate == pytest.approx(14 / 16)
    assert LUTStats.from_dict(stats.to_dict()) == stats
    assert LUTStats(0, 0, 0).hit_rate == 0.0


def test_point_results_without_lut_serialize_as_before():
    spec = SweepSpec("stable", (3,), (0.02,), ("union-find",), shots=16, seed=1)
    run = run_sweep(spec)
    payload = run.results[0].result_dict()
    # byte-stability: the key set predates the LUT subsystem exactly
    assert set(payload) == {
        "shots",
        "errors",
        "decoded_shots",
        "defects",
        "stopped_early",
        "latency",
    }


def test_sweep_records_and_stores_lut_stats(tmp_path):
    spec = SweepSpec(
        "lut-sweep",
        (3,),
        (0.02,),
        ("union-find", "lut+union-find"),
        shots=64,
        seed=7,
    )
    validate_spec_axes(spec)
    store = ResultStore(tmp_path / "store.jsonl")
    run = run_sweep(spec, store)
    by_decoder = {r.point.decoder: r for r in run.results}
    base, lut = by_decoder["union-find"], by_decoder["lut+union-find"]
    assert base.lut is None
    assert lut.lut is not None
    assert lut.lut.hits + lut.lut.misses == lut.decoded_shots
    assert lut.lut.zero_defect_hits == lut.shots - lut.decoded_shots
    assert 0.0 < lut.lut.hit_rate <= 1.0

    # round-trip through the JSON-lines store preserves the stats
    reloaded = ResultStore(tmp_path / "store.jsonl")
    cached = reloaded.get(run.spec_hash, lut.point)
    assert cached.lut == lut.lut
    assert reloaded.fingerprint() == store.fingerprint()

    document = bench_document(run, commit="test", timestamp="t")
    validate_bench(document)
    entries = {p["decoder"]: p for p in document["points"]}
    assert entries["union-find"]["lut"] is None
    block = entries["lut+union-find"]["lut"]
    assert block["hits"] == lut.lut.hits
    assert block["hit_rate"] == pytest.approx(lut.lut.hit_rate)
    assert block["speedup_vs_fallback"] is not None and block["speedup_vs_fallback"] > 0


def test_bench_validator_rejects_lut_schema_violations():
    spec = SweepSpec("v", (3,), (0.02,), ("lut+union-find",), shots=16, seed=2)
    run = run_sweep(spec)
    document = bench_document(run, commit="test", timestamp="t")
    validate_bench(document)

    broken = {**document, "points": [dict(document["points"][0], lut=None)]}
    with pytest.raises(BenchSchemaError, match="must carry a lut block"):
        validate_bench(broken)

    bad_block = dict(document["points"][0]["lut"], hit_rate=1.5)
    broken = {**document, "points": [dict(document["points"][0], lut=bad_block)]}
    with pytest.raises(BenchSchemaError, match="hit_rate"):
        validate_bench(broken)

    misplaced = dict(document["points"][0], decoder="union-find")
    broken = {**document, "points": [misplaced]}
    with pytest.raises(BenchSchemaError, match="non-lut decoder"):
        validate_bench(broken)


def test_lut_sweeps_without_timing_models_are_rejected_for_latency():
    spec = SweepSpec(
        "lat", (3,), (0.02,), ("lut+union-find",), shots=16, collect_latency=True
    )
    with pytest.raises(ValueError, match="timing model"):
        validate_spec_axes(spec)
