"""Tests of the latency/timing models and latency statistics."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.latency import (
    MEASUREMENT_ROUND_SECONDS,
    PAPER_CLOCK_FREQUENCY_MHZ,
    AcceleratorTimingModel,
    EffectiveErrorRate,
    HeliosLatencyModel,
    LatencyStatistics,
    MicroBlossomLatencyModel,
    ParityBlossomLatencyModel,
    accelerator_clock_frequency_hz,
    cutoff_latency,
    effective_error_rate,
    exponential_tail_fit,
    survival_histogram,
)


class TestClockModel:
    @pytest.mark.parametrize("distance,mhz", sorted(PAPER_CLOCK_FREQUENCY_MHZ.items()))
    def test_table_values_reproduced(self, distance, mhz):
        assert accelerator_clock_frequency_hz(distance) == pytest.approx(mhz * 1e6)

    def test_frequency_decreases_with_distance(self):
        frequencies = [accelerator_clock_frequency_hz(d) for d in (3, 7, 11, 15)]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_extrapolation_beyond_table(self):
        f17 = accelerator_clock_frequency_hz(17)
        f21 = accelerator_clock_frequency_hz(21)
        assert 0 < f21 < f17 < accelerator_clock_frequency_hz(15)


class TestAcceleratorTiming:
    def test_instruction_cycles_grow_logarithmically(self):
        timing = AcceleratorTimingModel(distance=9)
        assert timing.instruction_cycles(64) < timing.instruction_cycles(4096)
        assert timing.convergecast_depth(1024) == 10

    def test_clock_period(self):
        timing = AcceleratorTimingModel(distance=13)
        assert timing.clock_period_seconds == pytest.approx(1 / 62e6)


class TestMicroBlossomLatency:
    def make_counters(self, reads=2, grows=1, conflicts=0):
        return Counter(
            {
                "instr_find_obstacle": reads,
                "instr_grow": grows,
                "instr_set_direction": conflicts * 2,
                "conflicts_resolved": conflicts,
                "instr_load": 1,
            }
        )

    def test_minimal_decode_is_sub_microsecond_at_d13(self):
        """The paper's headline: 0.8 µs average latency at d = 13, p = 0.1%.

        In stream decoding with pre-matching, the typical work left after the
        final measurement round is one grow plus one blocking obstacle query.
        """
        model = MicroBlossomLatencyModel(distance=13, num_edges=5629)
        latency = model.latency_seconds(self.make_counters(reads=1, grows=1))
        assert latency < 1.0e-6
        assert latency > 0.2e-6

    def test_latency_increases_with_cpu_interactions(self):
        model = MicroBlossomLatencyModel(distance=9, num_edges=1737)
        quiet = model.latency_seconds(self.make_counters(reads=1, grows=0))
        busy = model.latency_seconds(self.make_counters(reads=10, grows=8, conflicts=5))
        assert busy > quiet

    def test_expected_latency_scales_quadratically_in_defects(self):
        model = MicroBlossomLatencyModel(distance=9, num_edges=1737)
        low = model.expected_latency_seconds(0.5, rounds=9)
        high = model.expected_latency_seconds(5.0, rounds=9)
        assert high > low
        assert (high - model.expected_latency_seconds(0.0, 9)) > 50 * (
            low - model.expected_latency_seconds(0.0, 9)
        )


class TestParityBlossomLatency:
    def test_anchor_point_near_published_value(self):
        """About 4.33 µs average at d = 9, p = 0.1% (a handful of defects)."""
        model = ParityBlossomLatencyModel()
        counters = Counter({"total_growth": 200, "conflicts_reported": 3})
        latency = model.latency_seconds(counters, defect_count=4)
        assert 2e-6 < latency < 8e-6

    def test_dual_phase_dominates(self):
        model = ParityBlossomLatencyModel()
        counters = Counter({"total_growth": 100, "conflicts_reported": 2})
        dual, primal = model.phase_seconds(counters, defect_count=4)
        assert dual > primal
        assert dual / (dual + primal) > 0.6

    def test_latency_grows_with_defects(self):
        model = ParityBlossomLatencyModel()
        empty = model.latency_seconds(Counter(), 0)
        loaded = model.latency_seconds(Counter(), 40)
        assert loaded > 10 * empty

    def test_expected_latency_linear_in_defects(self):
        model = ParityBlossomLatencyModel()
        slope1 = model.expected_latency_seconds(10) - model.expected_latency_seconds(5)
        slope2 = model.expected_latency_seconds(15) - model.expected_latency_seconds(10)
        assert slope1 == pytest.approx(slope2)


class TestHeliosLatency:
    def test_sub_microsecond(self):
        model = HeliosLatencyModel()
        assert model.latency_seconds(15, defect_count=10) < 1e-6

    def test_grows_with_distance(self):
        model = HeliosLatencyModel()
        assert model.latency_seconds(15) > model.latency_seconds(3)


class TestEffectiveErrorRate:
    def test_zero_latency_gives_plain_rate(self):
        effective = EffectiveErrorRate(1e-6, 0.0, distance=9)
        assert effective.value == pytest.approx(1e-6)
        assert effective.additional_error_ratio(1e-6) == pytest.approx(0.0)

    def test_latency_inflates_rate(self):
        # L = d rounds doubles the effective logical error rate.
        latency = 9 * MEASUREMENT_ROUND_SECONDS
        effective = EffectiveErrorRate(1e-6, latency, distance=9)
        assert effective.value == pytest.approx(2e-6)
        assert effective.additional_error_ratio(1e-6) == pytest.approx(1.0)

    def test_worse_decoder_has_higher_ratio(self):
        mwpm = 1e-6
        union_find = EffectiveErrorRate(5e-6, 0.0, distance=9)
        assert union_find.additional_error_ratio(mwpm) == pytest.approx(4.0)

    def test_helper_function(self):
        assert effective_error_rate(1e-6, 0.0, 9) == pytest.approx(1e-6)

    def test_invalid_reference_rate(self):
        effective = EffectiveErrorRate(1e-6, 0.0, distance=9)
        with pytest.raises(ValueError):
            effective.additional_error_ratio(0.0)


class TestLatencyStatistics:
    def test_summary(self):
        stats = LatencyStatistics.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.maximum == 4.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            LatencyStatistics.from_samples([])

    def test_cutoff_latency_monotone_in_k(self):
        latencies = [float(i) for i in range(1, 1001)]
        p_logical = 0.01
        strict = cutoff_latency(latencies, p_logical, k=0.1)
        loose = cutoff_latency(latencies, p_logical, k=1.0)
        assert strict >= loose

    def test_cutoff_latency_saturates_at_maximum(self):
        latencies = [1.0, 2.0, 3.0]
        assert cutoff_latency(latencies, 1e-9, k=0.01) == 3.0

    def test_cutoff_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            cutoff_latency([], 0.1, 1.0)
        with pytest.raises(ValueError):
            cutoff_latency([1.0], 0.0, 1.0)

    def test_exponential_tail_fit_recovers_decay(self):
        import numpy as np

        rng = np.random.default_rng(0)
        decay = 2.0
        samples = rng.exponential(decay, size=20000).tolist()
        _intercept, fitted = exponential_tail_fit(samples, tail_fraction=0.5)
        # Survival drops by 10x every ``decay * ln(10)`` latency units.
        assert fitted == pytest.approx(decay * np.log(10), rel=0.2)

    def test_tail_fit_needs_enough_samples(self):
        with pytest.raises(ValueError):
            exponential_tail_fit([1.0, 2.0])

    def test_survival_histogram_decreasing(self):
        points = survival_histogram([float(i) for i in range(100)], bins=10)
        survivals = [s for _, s in points]
        assert survivals == sorted(survivals, reverse=True)
        assert survivals[0] == pytest.approx(1.0)
