"""Randomized correctness verification across the paper's test matrix (§A.6).

The artifact of the paper verifies the design on quantum repetition codes and
rotated surface codes, code distances 3–19, three noise models and a wide
range of physical error rates.  This module runs the same kind of matrix
(scaled down so the whole suite stays fast) and checks that every decoder of
this package produces a matching of exactly the optimal weight and a
correction that annihilates every defect.
"""

from __future__ import annotations

import pytest

from repro.core import MicroBlossomDecoder
from repro.graphs import (
    SyndromeSampler,
    noise_model_by_name,
    repetition_code_decoding_graph,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.graphs.syndrome import correction_edges
from repro.matching import ReferenceDecoder
from repro.parity import ParityBlossomDecoder

#: (code family, distance, noise model, physical error rate, samples)
MATRIX = [
    ("repetition", 3, "code_capacity", 0.3, 12),
    ("repetition", 5, "phenomenological", 0.1, 10),
    ("repetition", 7, "circuit_level", 0.05, 8),
    ("repetition", 9, "circuit_level", 0.2, 6),
    ("surface", 3, "code_capacity", 0.2, 12),
    ("surface", 3, "circuit_level", 0.1, 10),
    ("surface", 5, "phenomenological", 0.05, 6),
    ("surface", 5, "circuit_level", 0.03, 6),
    ("surface", 7, "code_capacity", 0.1, 5),
]


def build(code: str, distance: int, noise_name: str, probability: float):
    noise = noise_model_by_name(noise_name, probability)
    if code == "repetition":
        return repetition_code_decoding_graph(distance, noise)
    return surface_code_decoding_graph(distance, noise)


@pytest.mark.parametrize("code,distance,noise_name,probability,samples", MATRIX)
def test_all_decoders_are_exact(code, distance, noise_name, probability, samples):
    graph = build(code, distance, noise_name, probability)
    sampler = SyndromeSampler(graph, seed=hash((code, distance, noise_name)) % 2**31)
    reference = ReferenceDecoder(graph)
    decoders = {
        "micro": MicroBlossomDecoder(graph),
        "micro-no-prematch": MicroBlossomDecoder(graph, enable_prematching=False),
        "micro-stream": MicroBlossomDecoder(graph, stream=True),
        "parity": ParityBlossomDecoder(graph),
    }
    nontrivial = 0
    for _ in range(samples):
        syndrome = sampler.sample()
        if not syndrome.defects:
            continue
        nontrivial += 1
        optimal = reference.decode(syndrome).weight
        for name, decoder in decoders.items():
            result = decoder.decode(syndrome)
            assert result.weight == optimal, (
                f"{name} returned weight {result.weight} != optimal {optimal} "
                f"for defects {syndrome.defects}"
            )
            result.validate_perfect(syndrome.defects)
            correction = correction_edges(graph, result)
            assert residual_defects(graph, syndrome, correction) == ()
    assert nontrivial > 0, "the noise level produced only trivial syndromes"
