"""Documentation CI gate: executable docs, passing doctests, valid links.

Three checks, all enforced by the ``docs`` CI job (and by
``tests/test_docs.py``, so a broken doc fails the tier-1 suite too):

1. **Code blocks execute.**  Every fenced block in ``README.md`` and
   ``docs/*.md`` whose info string is exactly ```` ```python ```` is executed
   top to bottom.  Blocks in one file share a namespace (a page reads as one
   narrative), each file starts fresh, and execution happens inside a
   temporary working directory so examples may freely write stores/benches.
   Illustrative, deliberately non-runnable snippets are fenced as
   ```` ```python notest ```` (rendered identically by GitHub).
2. **Doctests pass.**  The docstring examples of the public API surface
   (``repro.api``, ``repro.stream``, ``repro.sweeps``, ``repro.service``,
   ``repro.evaluation.service_load``) run under
   ``ELLIPSIS | NORMALIZE_WHITESPACE``.
3. **Intra-repo links resolve.**  Every relative markdown link target in the
   checked files must exist (``http(s)``/``mailto`` links and pure anchors
   are skipped; ``#fragment`` suffixes are stripped before the check).

Usage::

    python tools/check_docs.py            # all three checks
    python tools/check_docs.py --no-doctest --no-links   # code blocks only
"""

from __future__ import annotations

import argparse
import doctest
import importlib
import os
import re
import sys
import tempfile
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

#: Markdown files whose code blocks and links are checked.
DOC_FILES = (
    "README.md",
    *sorted(
        path.relative_to(REPO_ROOT).as_posix()
        for path in (REPO_ROOT / "docs").glob("*.md")
    ),
)

#: Modules whose doctests form the documented public API surface.
DOCTEST_MODULES = (
    "repro.graphs.noise",
    "repro.graphs.syndrome",
    "repro.api.hashing",
    "repro.api.config",
    "repro.api.erasure",
    "repro.api.registry",
    "repro.lut.outcome_cache",
    "repro.api.outcome",
    "repro.api.protocol",
    "repro.api.session",
    "repro.api.batch",
    "repro.stream",
    "repro.stream.adapter",
    "repro.sweeps.spec",
    "repro.sweeps.store",
    "repro.sweeps.runner",
    "repro.sweeps.bench",
    "repro.service.config",
    "repro.service.request",
    "repro.service.cache",
    "repro.service.batcher",
    "repro.service.faults",
    "repro.service.service",
    "repro.service.trace",
    "repro.service.bench",
    "repro.evaluation.service_load",
)

_FENCE_RE = re.compile(r"^```(.*)$")
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_code_blocks(path: Path):
    """Yield ``(first_line_number, info_string, source)`` per fenced block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    info = ""
    start = 0
    body: list[str] = []
    for number, line in enumerate(lines, start=1):
        match = _FENCE_RE.match(line.strip())
        if match is None:
            if in_block:
                body.append(line)
            continue
        if not in_block:
            in_block = True
            info = match.group(1).strip()
            start = number + 1
            body = []
        else:
            in_block = False
            yield start, info, "\n".join(body) + "\n"


def check_code_blocks(files=DOC_FILES) -> list[str]:
    """Execute every ```python block; return a list of failure messages."""
    failures: list[str] = []
    for name in files:
        path = REPO_ROOT / name
        namespace: dict = {"__name__": f"docs_block::{name}"}
        executed = 0
        with tempfile.TemporaryDirectory(prefix="repro-docs-") as workdir:
            cwd = os.getcwd()
            os.chdir(workdir)
            try:
                for lineno, info, source in iter_code_blocks(path):
                    if info != "python":
                        continue
                    try:
                        exec(compile(source, f"{name}:{lineno}", "exec"), namespace)
                        executed += 1
                    except Exception:
                        failures.append(
                            f"{name}:{lineno}: code block raised\n"
                            + traceback.format_exc(limit=4)
                        )
            finally:
                os.chdir(cwd)
        print(f"  {name}: {executed} python block(s) executed")
    return failures


def check_doctests(modules=DOCTEST_MODULES) -> list[str]:
    """Run the doctest suite of each module; return failure messages."""
    failures: list[str] = []
    flags = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
    for name in modules:
        module = importlib.import_module(name)
        result = doctest.testmod(module, optionflags=flags, verbose=False)
        status = f"{result.attempted} example(s)"
        if result.failed:
            failures.append(f"{name}: {result.failed}/{result.attempted} doctest(s) failed")
            status += f", {result.failed} FAILED"
        print(f"  {name}: {status}")
    return failures


def check_links(files=DOC_FILES) -> list[str]:
    """Verify every relative markdown link target exists."""
    failures: list[str] = []
    for name in files:
        path = REPO_ROOT / name
        checked = 0
        for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            for target in _LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = (path.parent / relative).resolve()
                checked += 1
                if not resolved.exists():
                    failures.append(f"{name}:{number}: broken link -> {target}")
        print(f"  {name}: {checked} intra-repo link(s) checked")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-blocks", action="store_true", help="skip code-block execution")
    parser.add_argument("--no-doctest", action="store_true", help="skip module doctests")
    parser.add_argument("--no-links", action="store_true", help="skip the link checker")
    args = parser.parse_args(argv)
    sys.path.insert(0, str(SRC_ROOT))
    failures: list[str] = []
    if not args.no_blocks:
        print("== executing markdown code blocks ==")
        failures += check_code_blocks()
    if not args.no_doctest:
        print("== running public-API doctests ==")
        failures += check_doctests()
    if not args.no_links:
        print("== checking intra-repo links ==")
        failures += check_links()
    if failures:
        print(f"\n{len(failures)} documentation failure(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\ndocumentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
