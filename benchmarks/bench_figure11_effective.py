"""Benchmark regenerating Figure 11: effective logical error rate grid.

Figure 11 compares Helios (hardware Union-Find), Parity Blossom (software
MWPM) and Micro Blossom by the *additional* logical error they cause relative
to a zero-latency MWPM decoder, ``p_eff / p_MWPM - 1``, across the (p, d)
grid.  The effective error rate folds in both decoder accuracy and the idle
errors accumulated while waiting for the decoded result (§8.3).

Paper shape to reproduce: Micro Blossom achieves the lowest ratio over most of
the grid; the software decoder is competitive only at the smallest p·d corner
(where its latency is negligible), and Helios only at the largest p·d corner
(where even the accelerated MWPM decoder becomes slow).
"""

from __future__ import annotations

from repro.evaluation import effective_error_grid, format_rows
from repro.sweeps import ResultStore

DISTANCES = (3, 5, 7, 9, 11, 13, 15)
ERROR_RATES = (0.0001, 0.0005, 0.001, 0.005)


def bench_figure11_effective_error_grid(benchmark):
    rows = benchmark.pedantic(
        effective_error_grid,
        kwargs={"distances": DISTANCES, "error_rates": ERROR_RATES},
        rounds=1,
        iterations=1,
    )
    print("\nFigure 11 — additional logical error ratio p_eff / p_MWPM - 1")
    print(
        format_rows(
            rows,
            [
                "distance",
                "physical_error_rate",
                "helios_ratio",
                "parity-blossom_ratio",
                "micro-blossom_ratio",
                "best_decoder",
            ],
        )
    )
    by_key = {(row["distance"], row["physical_error_rate"]): row for row in rows}
    winners = {row["best_decoder"] for row in rows}
    # Micro Blossom dominates the bulk of the grid ...
    micro_wins = sum(1 for row in rows if row["best_decoder"] == "micro-blossom")
    assert micro_wins >= len(rows) // 2
    # ... the software decoder is only competitive at the low-p/low-d corner ...
    corner = by_key[(3, min(ERROR_RATES))]
    assert corner["parity-blossom_ratio"] < corner["helios_ratio"]
    # ... and the Union-Find decoder's penalty grows with distance.
    assert (
        by_key[(15, 0.001)]["helios_ratio"] > by_key[(3, 0.001)]["helios_ratio"]
    )
    assert winners <= {"helios", "parity-blossom", "micro-blossom"}


def bench_figure11_with_monte_carlo_calibration(benchmark, tmp_path):
    """Same grid, with the scaling laws calibrated by a resumable sweep.

    The calibration grid runs through `repro.sweeps` with an on-disk
    `ResultStore`: the second call must hit the cache for every point (the
    store is the only state carried between the calls).
    """
    store = ResultStore(tmp_path / "calibration.jsonl")
    rows = benchmark.pedantic(
        effective_error_grid,
        kwargs={
            "distances": (3, 9, 15),
            "error_rates": (0.0005, 0.005),
            "calibration_samples": 150,
            "seed": 17,
            "store": store,
        },
        rounds=1,
        iterations=1,
    )
    # the calibration points are in the store now: a rerun is pure cache hits,
    # bit-identical to the first run (sweep determinism contract)
    fingerprint = store.fingerprint()
    rerun = effective_error_grid(
        distances=(3, 9, 15),
        error_rates=(0.0005, 0.005),
        calibration_samples=150,
        seed=17,
        store=store,
    )
    assert rerun == rows
    assert store.fingerprint() == fingerprint
    print("\nFigure 11 (Monte-Carlo calibrated subset)")
    print(
        format_rows(
            rows,
            [
                "distance",
                "physical_error_rate",
                "mwpm_logical_error_rate",
                "helios_ratio",
                "parity-blossom_ratio",
                "micro-blossom_ratio",
            ],
        )
    )
    assert all(row["mwpm_logical_error_rate"] <= 1.0 for row in rows)
