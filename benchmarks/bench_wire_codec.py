"""Wire codec micro-benchmark: binary v2 vs canonical-JSON v1 framing.

The network decode service negotiates one of two payload codecs per
connection (``repro.service.net.protocol``): canonical JSON (codec 1, one
frame per request, responses echo the request) and the struct-packed binary
format (codec 2, batch frames with a deduplicated session table, echoless
responses).  This benchmark measures the *codec* cost alone — encode plus
decode of a realistic request/response mix built from sampled syndromes and
real decoded outcomes — exactly as each wire version would carry it:

* **v1**: one ``request`` frame per request and one ``response`` frame per
  answer, with the v1 request echo embedded (that is what a v1 server
  sends).
* **v2**: ``request-batch`` / ``response-batch`` frames of ``--batch-size``
  members, responses without the echo (the v2 client holds the request).

The run fails unless v2 is at least 2x faster than v1 on the mix — the
codec-level floor backing the end-to-end >= 1.5x gate of the serve-net
smoke (``python -m repro serve-net --smoke``).

    python benchmarks/bench_wire_codec.py --smoke   # CI-sized run
"""

from __future__ import annotations

import argparse
import time

from repro.evaluation import format_rows
from repro.graphs import SyndromeSampler
from repro.service import CodeSpec, DecodeRequest, SessionKey
from repro.service.cache import build_session
from repro.service.net.protocol import CODEC_BINARY, CODEC_JSON, decode_payload, encode_frame
from repro.service.net.worker import response_payload
from repro.service.request import DecodeResponse

#: Codec-level speedup floor: the binary codec must halve the cost of the
#: request/response mix for the end-to-end 1.5x network gate to be safe.
SPEEDUP_FLOOR = 2.0


def build_mix(distance: int, error_rate: float, samples: int, seed: int):
    """Requests with real syndromes plus their decoded response payloads."""
    key = SessionKey(CodeSpec(distance, physical_error_rate=error_rate), "union-find")
    session = build_session(key)
    sampler = SyndromeSampler(session.graph, seed=seed)
    session_wire = key.to_dict()
    requests, responses = [], []
    for index, syndrome in enumerate(sampler.sample_batch(samples)):
        request = DecodeRequest(key, syndrome, request_id=index)
        outcome = session.decode_detailed(syndrome)
        response = DecodeResponse(
            request,
            outcome=outcome,
            queue_delay_seconds=1.5e-5,
            latency_seconds=2.5e-4,
            batch_size=8,
        )
        wire = request.to_dict()
        wire["session"] = session_wire  # one shared dict, as the client sends
        requests.append(wire)
        responses.append(response_payload(response))
    return requests, responses


def v1_frames(requests, responses):
    """The per-request JSON-v1 frame sequence (responses echo the request)."""
    frames = []
    for index, wire in enumerate(requests):
        frames.append({"kind": "request", "id": index, "request": wire})
    for index, (wire, payload) in enumerate(zip(requests, responses)):
        frames.append(
            {"kind": "response", "id": index, "response": {**payload, "request": wire}}
        )
    return frames


def v2_frames(requests, responses, batch_size: int):
    """The batched binary-v2 frame sequence (echoless responses)."""
    frames = []
    for start in range(0, len(requests), batch_size):
        chunk = requests[start : start + batch_size]
        frames.append(
            {
                "kind": "request-batch",
                "requests": [
                    {"id": start + offset, "request": wire}
                    for offset, wire in enumerate(chunk)
                ],
            }
        )
    for start in range(0, len(responses), batch_size):
        chunk = responses[start : start + batch_size]
        frames.append(
            {
                "kind": "response-batch",
                "responses": [
                    {"id": start + offset, "response": payload}
                    for offset, payload in enumerate(chunk)
                ],
            }
        )
    return frames


def measure(frames, codec: int, passes: int) -> tuple[float, int]:
    """(seconds per pass, total bytes) of encode+decode over all frames."""
    encoded = [encode_frame(frame, codec) for frame in frames]
    total_bytes = sum(len(data) for data in encoded)
    best = float("inf")
    for _ in range(passes):
        started = time.perf_counter()
        for frame in frames:
            decode_payload(encode_frame(frame, codec)[4:])
        best = min(best, time.perf_counter() - started)
    return best, total_bytes


def run(distance: int, error_rate: float, samples: int, seed: int,
        batch_size: int, passes: int):
    requests, responses = build_mix(distance, error_rate, samples, seed)
    messages = len(requests) + len(responses)
    rows = []
    sides = {
        "v1 json/per-request": (v1_frames(requests, responses), CODEC_JSON),
        "v2 binary/batched": (v2_frames(requests, responses, batch_size), CODEC_BINARY),
    }
    for label, (frames, codec) in sides.items():
        # Round-trip identity first: speed means nothing if the codec lies.
        for frame in frames:
            decoded = decode_payload(encode_frame(frame, codec)[4:])
            if codec == CODEC_JSON:
                assert decoded == frame, "JSON codec round-trip changed a frame"
        seconds, total_bytes = measure(frames, codec, passes)
        rows.append(
            {
                "wire": label,
                "frames": len(frames),
                "bytes": total_bytes,
                "seconds": seconds,
                "messages_per_s": messages / seconds,
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=7)
    parser.add_argument("--error-rate", type=float, default=0.01)
    parser.add_argument("--samples", type=int, default=256)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--passes", type=int, default=5)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast configuration for CI (d=5, 96 samples, 3 passes)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.distance, args.samples, args.passes = 5, 96, 3

    print(
        f"== wire codec throughput (d={args.distance}, p={args.error_rate}, "
        f"{args.samples} request/response pairs, batches of {args.batch_size}) =="
    )
    rows = run(
        args.distance, args.error_rate, args.samples, args.seed,
        args.batch_size, args.passes,
    )
    print(format_rows(rows, ["wire", "frames", "bytes", "seconds", "messages_per_s"]))
    speedup = rows[1]["messages_per_s"] / rows[0]["messages_per_s"]
    shrink = rows[0]["bytes"] / rows[1]["bytes"]
    print(f"\nbinary v2 speedup over JSON v1: {speedup:.2f}x ({shrink:.2f}x fewer bytes)")
    if speedup < SPEEDUP_FLOOR:
        raise SystemExit(
            f"expected the binary codec to be >= {SPEEDUP_FLOOR}x faster, got {speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
