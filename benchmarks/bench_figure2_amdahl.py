"""Benchmark regenerating Figure 2: dual vs primal CPU time of Parity Blossom.

The paper motivates the accelerator by showing that the dual phase dominates
the CPU time of the software MWPM decoder, so accelerating it gives an Amdahl
potential speedup that grows with the code distance.  This benchmark runs the
instrumented Parity Blossom decoder across code distances and prints the dual
fraction and the potential speedup for each.

Paper shape to reproduce: the dual-phase fraction rises with the code distance
(from roughly half of the CPU time at d = 3 towards ~85% at d = 15) and so
does the potential speedup.
"""

from __future__ import annotations

from repro.evaluation import amdahl_profile, format_rows

DISTANCES = (3, 5, 7)
PHYSICAL_ERROR_RATE = 0.002
SAMPLES = 20


def bench_figure2_amdahl_profile(benchmark):
    rows = benchmark.pedantic(
        amdahl_profile,
        kwargs={
            "distances": DISTANCES,
            "physical_error_rate": PHYSICAL_ERROR_RATE,
            "samples": SAMPLES,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    print("\nFigure 2 — Parity Blossom CPU time split and Amdahl bound")
    print(
        format_rows(
            rows, ["distance", "dual_fraction", "primal_fraction", "potential_speedup"]
        )
    )
    fractions = [row["dual_fraction"] for row in rows]
    assert fractions == sorted(fractions), "dual share should grow with distance"
    assert all(row["potential_speedup"] > 1.0 for row in rows)
