"""Benchmark regenerating Figure 10b: batch vs stream reaction latency.

Both series run on the continuous-stream ``repro.evaluation.StreamEngine``
(rounds pushed one at a time through the ``StreamingDecoder`` protocol): with
round-wise fusion the decoder only has a constant amount of work left when
the final measurement round arrives, so the reaction latency stays flat as
the number of measurement rounds grows, while the batch baseline — replayed
through the sliding-window adapter — grows roughly linearly (the paper
reports 1.6x–2.5x at d = 9).
"""

from __future__ import annotations

from repro.evaluation import format_rows, stream_vs_batch

DISTANCE = 5
PHYSICAL_ERROR_RATE = 0.004
ROUNDS = (2, 4, 6, 8, 10)
SAMPLES = 12


def bench_figure10b_stream_vs_batch(benchmark):
    rows = benchmark.pedantic(
        stream_vs_batch,
        kwargs={
            "distance": DISTANCE,
            "physical_error_rate": PHYSICAL_ERROR_RATE,
            "rounds_list": ROUNDS,
            "samples": SAMPLES,
            "seed": 4,
        },
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 10b — batch vs stream latency at d={DISTANCE} (µs)")
    print(format_rows(rows, ["rounds", "batch_latency_us", "stream_latency_us"]))
    first, last = rows[0], rows[-1]
    batch_growth = last["batch_latency_us"] / first["batch_latency_us"]
    stream_growth = last["stream_latency_us"] / first["stream_latency_us"]
    assert batch_growth > stream_growth, (
        "batch latency must grow faster with the number of rounds than stream "
        f"latency (batch x{batch_growth:.2f} vs stream x{stream_growth:.2f})"
    )
    assert last["stream_latency_us"] <= last["batch_latency_us"]
