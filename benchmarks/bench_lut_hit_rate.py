#!/usr/bin/env python3
"""LUT pre-decoder hit rate and speedup over its fallback (the low-p regime).

At low physical error rates almost every shot carries zero, one or two
defects — exactly the defect sets the :mod:`repro.lut` lookup table
precomputes.  This benchmark samples a d=5 circuit-level workload at low p,
decodes it with ``union-find`` and with ``lut+union-find`` (same syndromes,
same session), and reports

* the table hit rate (zero-defect shots included — the dedicated fast path),
* the end-to-end decode-loop speedup of ``lut+union-find`` over its fallback
  (best of ``--loops`` timed passes per decoder; table construction is a
  one-time session cost reported separately with its amortization point),
* bit-identity of every decoded outcome (hit or miss) against the fallback.

The gate asserts the hit rate and speedup floors recorded in
``docs/paper_map.md``: hit rate >= 0.85 and speedup >= 2x.

Run::

    python benchmarks/bench_lut_hit_rate.py --samples 2000
    python benchmarks/bench_lut_hit_rate.py --smoke   # CI-sized run
"""

from __future__ import annotations

import argparse
import time

from repro.api import get_decoder
from repro.evaluation import format_rows
from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph

MIN_HIT_RATE = 0.85
MIN_SPEEDUP = 2.0


def _decode_loop_seconds(decoder, syndromes, loops: int) -> float:
    """Best wall-clock of ``loops`` full decode passes (steady-state timing)."""
    best = float("inf")
    for _ in range(loops):
        start = time.perf_counter()
        for syndrome in syndromes:
            decoder.decode_detailed(syndrome)
        best = min(best, time.perf_counter() - start)
    return best


def run(distance: int, error_rate: float, samples: int, seed: int, loops: int) -> dict:
    graph = surface_code_decoding_graph(distance, circuit_level_noise(error_rate))
    syndromes = SyndromeSampler(graph, seed=seed).sample_batch(samples)

    fallback = get_decoder("union-find", graph)
    build_start = time.perf_counter()
    lut = get_decoder("lut+union-find", graph)
    build_seconds = time.perf_counter() - build_start

    # bit-identity on every shot, hit or miss (the conformance contract)
    for syndrome in syndromes:
        expected = fallback.decode_detailed(syndrome)
        got = lut.decode_detailed(syndrome)
        assert got.correction_edges(graph) == expected.correction_edges(graph)
        assert got.weight == expected.weight

    lut.reset()
    fallback_seconds = _decode_loop_seconds(fallback, syndromes, loops)
    lut_seconds = _decode_loop_seconds(lut, syndromes, loops)
    hit_rate = lut.hit_rate  # direct decodes: zero-defect shots hit the table
    speedup = fallback_seconds / lut_seconds
    amortize_shots = build_seconds / max(
        fallback_seconds / samples - lut_seconds / samples, 1e-12
    )
    return {
        "samples": samples,
        "table_entries": lut.table.entries,
        "table_bytes": lut.table.bytes_resident,
        "build_seconds": build_seconds,
        "fallback_seconds": fallback_seconds,
        "lut_seconds": lut_seconds,
        "hit_rate": hit_rate,
        "speedup": speedup,
        "amortize_shots": amortize_shots,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=5)
    parser.add_argument("--error-rate", type=float, default=0.002)
    parser.add_argument("--samples", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--loops", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast configuration for CI (600 samples, 2 loops)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.samples, args.loops = 600, 2

    print(
        f"== LUT pre-decode hit rate (d={args.distance}, p={args.error_rate}, "
        f"{args.samples} shots) =="
    )
    row = run(args.distance, args.error_rate, args.samples, args.seed, args.loops)
    rows = [
        {
            "decoder": "union-find",
            "seconds": row["fallback_seconds"],
            "shots_per_s": row["samples"] / row["fallback_seconds"],
            "speedup": 1.0,
        },
        {
            "decoder": "lut+union-find",
            "seconds": row["lut_seconds"],
            "shots_per_s": row["samples"] / row["lut_seconds"],
            "speedup": row["speedup"],
        },
    ]
    print(format_rows(rows, ["decoder", "seconds", "shots_per_s", "speedup"]))
    print(
        f"\ntable: {row['table_entries']} entries, {row['table_bytes']} bytes, "
        f"built in {row['build_seconds']:.3f}s "
        f"(amortized after ~{row['amortize_shots']:.0f} shots)"
    )
    print(f"hit rate (zero-defect included): {row['hit_rate']:.3f}")
    print(f"decode-loop speedup over fallback: {row['speedup']:.2f}x")
    if row["hit_rate"] < MIN_HIT_RATE:
        raise SystemExit(
            f"hit rate {row['hit_rate']:.3f} below the {MIN_HIT_RATE} floor"
        )
    if row["speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"speedup {row['speedup']:.2f}x below the {MIN_SPEEDUP}x floor"
        )


if __name__ == "__main__":
    main()
