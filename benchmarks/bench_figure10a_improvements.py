"""Benchmark regenerating Figure 10a: contribution of each key idea.

The paper stacks its three ideas on top of the software baseline — parallel
dual phase (§4), parallel primal phase / pre-matching (§5), round-wise fusion
(§6) — and reports how much each contributes to the 17x overall latency
reduction at p = 0.1%.

Paper shape to reproduce: at the larger code distances every added idea
reduces the average latency further, with the full configuration giving the
largest overall speedup over the CPU baseline.
"""

from __future__ import annotations

from repro.evaluation import format_rows, improvement_breakdown

DISTANCES = (5, 7)
PHYSICAL_ERROR_RATE = 0.002
SAMPLES = 15


def bench_figure10a_improvement_breakdown(benchmark):
    rows = benchmark.pedantic(
        improvement_breakdown,
        kwargs={
            "distances": DISTANCES,
            "physical_error_rate": PHYSICAL_ERROR_RATE,
            "samples": SAMPLES,
            "seed": 3,
        },
        rounds=1,
        iterations=1,
    )
    print("\nFigure 10a — latency of each decoder configuration (µs)")
    print(
        format_rows(
            rows,
            ["configuration", "distance", "mean_latency_us", "speedup_vs_cpu"],
        )
    )
    largest = max(DISTANCES)
    at_largest = {r["configuration"]: r for r in rows if r["distance"] == largest}
    full = at_largest["+ round-wise fusion"]
    baseline = at_largest["parity-blossom (CPU)"]
    assert full["mean_latency_us"] < baseline["mean_latency_us"], (
        "the full Micro Blossom configuration must beat the CPU baseline at the "
        "largest benchmarked distance"
    )
    # Pre-matching must not be slower than the dual-phase-only configuration.
    assert (
        at_largest["+ parallel primal phase"]["mean_latency_us"]
        <= at_largest["+ parallel dual phase"]["mean_latency_us"] * 1.05
    )
