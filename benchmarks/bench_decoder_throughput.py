"""Throughput/ablation benchmarks of the decoder implementations themselves.

These benches time the actual Python implementations (not the latency models):
one decode of a batch of syndromes for each decoder, plus an ablation of the
pre-matching optimisation measured in CPU↔accelerator interactions.  They are
the "is the simulator itself usable" counterpart to the figure benchmarks.
"""

from __future__ import annotations

from repro.api import MicroBlossomConfig, get_decoder
from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph

DISTANCE = 5
ERROR_RATE = 0.005
BATCH = 10


def _setup():
    graph = surface_code_decoding_graph(DISTANCE, circuit_level_noise(ERROR_RATE))
    syndromes = SyndromeSampler(graph, seed=123).sample_batch(BATCH)
    return graph, syndromes


def bench_micro_blossom_decoder(benchmark):
    graph, syndromes = _setup()
    decoder = get_decoder("micro-blossom", graph)

    def run():
        return [decoder.decode(s).weight for s in syndromes]

    weights = benchmark(run)
    assert len(weights) == BATCH


def bench_parity_blossom_decoder(benchmark):
    graph, syndromes = _setup()
    decoder = get_decoder("parity-blossom", graph)

    def run():
        return [decoder.decode(s).weight for s in syndromes]

    weights = benchmark(run)
    assert len(weights) == BATCH


def bench_reference_decoder(benchmark):
    graph, syndromes = _setup()
    decoder = get_decoder("reference", graph)

    def run():
        return [decoder.decode(s).weight for s in syndromes]

    weights = benchmark(run)
    assert len(weights) == BATCH


def bench_union_find_decoder(benchmark):
    graph, syndromes = _setup()
    decoder = get_decoder("union-find", graph)

    def run():
        return [len(decoder.decode_to_correction(s)) for s in syndromes]

    sizes = benchmark(run)
    assert len(sizes) == BATCH


def bench_prematching_ablation(benchmark):
    """Ablation: pre-matching reduces the CPU-visible Conflict reports."""
    graph, syndromes = _setup()
    with_prematch = get_decoder(
        "micro-blossom-batch", graph, MicroBlossomConfig(stream=False)
    )
    without_prematch = get_decoder(
        "micro-blossom-batch",
        graph,
        MicroBlossomConfig(enable_prematching=False, stream=False),
    )

    def run():
        conflicts_with = sum(
            with_prematch.decode_detailed(s).counters["conflicts_reported"]
            for s in syndromes
        )
        conflicts_without = sum(
            without_prematch.decode_detailed(s).counters["conflicts_reported"]
            for s in syndromes
        )
        return conflicts_with, conflicts_without

    conflicts_with, conflicts_without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nPre-matching ablation: {conflicts_without} Conflicts reach the CPU "
        f"without pre-matching vs {conflicts_with} with it."
    )
    assert conflicts_with <= conflicts_without
