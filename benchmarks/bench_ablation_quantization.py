"""Ablation: 4-bit weight quantisation (paper §8.1 design choice).

The prototype stores edge weights in 4 bits (maximum weight 14), which the
paper argues is "sufficient to distinguish p_e from 0.1% to 0.3%".  This
ablation decodes the same error patterns with three weight resolutions —
unweighted (every edge weight 1), the paper's 4-bit quantisation, and a
high-resolution 8-bit quantisation — and compares logical error rates.

Expected shape: the 4-bit graph loses essentially nothing against the 8-bit
graph, while discarding the weights entirely (unweighted matching) is never
better and typically worse once edge probabilities differ (circuit-level noise
has cheaper hook edges).
"""

from __future__ import annotations

from repro.evaluation import estimate_logical_error_rate, format_rows
from repro.graphs import circuit_level_noise, surface_code_decoding_graph
from repro.matching import ReferenceDecoder

DISTANCE = 3
ERROR_RATE = 0.02
SAMPLES = 500
RESOLUTIONS = (("unweighted", 1), ("4-bit (paper)", 14), ("8-bit", 255))


def bench_ablation_weight_quantization(benchmark):
    def run():
        rows = []
        for label, max_weight in RESOLUTIONS:
            graph = surface_code_decoding_graph(
                DISTANCE, circuit_level_noise(ERROR_RATE), max_weight=max_weight
            )
            decoder = ReferenceDecoder(graph)
            estimate = estimate_logical_error_rate(graph, decoder, SAMPLES, seed=99)
            rows.append(
                {
                    "quantisation": label,
                    "max_weight": max_weight,
                    "logical_error_rate": estimate.rate,
                    "errors": estimate.errors,
                    "samples": estimate.samples,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — weight quantisation vs logical error rate")
    print(
        format_rows(
            rows,
            ["quantisation", "max_weight", "logical_error_rate", "errors", "samples"],
        )
    )
    by_label = {row["quantisation"]: row for row in rows}
    # The paper's 4-bit quantisation must be at least as accurate as
    # unweighted matching (allowing for Monte-Carlo noise of a few counts).
    assert (
        by_label["4-bit (paper)"]["errors"]
        <= by_label["unweighted"]["errors"] + 3
    )
    # ... and must not be meaningfully worse than the 8-bit resolution.
    assert (
        by_label["4-bit (paper)"]["errors"] <= by_label["8-bit"]["errors"] * 1.5 + 3
    )
