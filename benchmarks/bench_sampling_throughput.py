#!/usr/bin/env python3
"""Shot-generation throughput: scalar sampling vs the vectorized batch path.

The Monte-Carlo harness used to draw every shot individually —
``SyndromeSampler.sample()`` generates one row of uniforms, then derives
defects and the logical flip with per-shot Python loops.  ``sample_batch``
draws the whole ``(n, num_edges)`` error matrix in one RNG call per chunk and
derives defects/logical flips through the incidence matrix with array
operations, while staying bit-identical per shot to the scalar path under the
same seed.

This benchmark measures both on the d=9 circuit-level graph, asserts the
bit-identity, and asserts the vectorized speedup target (>= 5x by default).

Run::

    python benchmarks/bench_sampling_throughput.py
    python benchmarks/bench_sampling_throughput.py --smoke   # CI-sized run
"""

from __future__ import annotations

import argparse
import time

from repro.evaluation import format_rows
from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def run(
    distance: int, error_rate: float, samples: int, seed: int, repeats: int
) -> tuple[list[dict], float]:
    graph = surface_code_decoding_graph(distance, circuit_level_noise(error_rate))
    print(f"decoding graph: {graph}")

    scalar_sampler = SyndromeSampler(graph, seed=seed)
    batch_sampler = SyndromeSampler(graph, seed=seed)
    scalar_shots = [scalar_sampler.sample() for _ in range(samples)]
    batch_shots = batch_sampler.sample_batch(samples)
    assert scalar_shots == batch_shots, "sample_batch is not bit-identical to sample()"
    assert scalar_sampler.sample() == batch_sampler.sample(), (
        "sample_batch left the RNG in a different state than scalar sampling"
    )

    def scalar_run():
        sampler = SyndromeSampler(graph, seed=seed)
        for _ in range(samples):
            sampler.sample()

    def batch_run():
        SyndromeSampler(graph, seed=seed).sample_batch(samples)

    scalar_seconds = _best_of(repeats, scalar_run)
    batch_seconds = _best_of(repeats, batch_run)
    speedup = scalar_seconds / batch_seconds
    rows = [
        {
            "mode": "scalar sample() loop",
            "seconds": scalar_seconds,
            "shots_per_s": samples / scalar_seconds,
            "speedup": 1.0,
        },
        {
            "mode": "vectorized sample_batch",
            "seconds": batch_seconds,
            "shots_per_s": samples / batch_seconds,
            "speedup": speedup,
        },
    ]
    return rows, speedup


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=9)
    parser.add_argument("--error-rate", type=float, default=0.001)
    parser.add_argument("--samples", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail unless the vectorized path is at least this much faster",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast configuration for CI (fewer shots, 2x floor)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.samples, args.repeats, args.min_speedup = 1000, 3, 2.0

    print(
        f"== syndrome sampling throughput (d={args.distance}, "
        f"p={args.error_rate}, {args.samples} shots, best of {args.repeats}) =="
    )
    rows, speedup = run(
        args.distance, args.error_rate, args.samples, args.seed, args.repeats
    )
    print(format_rows(rows, ["mode", "seconds", "shots_per_s", "speedup"]))
    print(f"\nvectorized speedup over scalar sampling: {speedup:.2f}x")
    if speedup < args.min_speedup:
        raise SystemExit(
            f"expected >= {args.min_speedup:.1f}x speedup, measured {speedup:.2f}x"
        )


if __name__ == "__main__":
    main()
