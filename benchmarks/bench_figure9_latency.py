"""Benchmarks regenerating Figure 9: decoding latency of Micro Blossom.

Top row of the figure: average decoding latency versus physical error rate for
several code distances, Parity Blossom (CPU) against Micro Blossom (FPGA
model).  Bottom row: the latency *distribution* at a fixed configuration,
summarised by the k-tolerant cutoff latencies and an exponential tail fit.

Paper shapes to reproduce:
* Micro Blossom's average latency is far less sensitive to the physical error
  rate than the software baseline (O(p²d²+1) vs O(pd³+1)) and stays around or
  below a microsecond at p = 0.1%;
* the software baseline overtakes Micro Blossom only at the smallest
  distances/error rates where its own latency approaches its constant floor;
* Micro Blossom's latency tail is exponentially bounded, with k-cutoff
  latencies orders of magnitude below the software baseline's.
"""

from __future__ import annotations

from repro.evaluation import format_rows, latency_distribution, latency_sweep

SWEEP_DISTANCES = (3, 5, 7)
SWEEP_ERROR_RATES = (0.0005, 0.001, 0.005)
SWEEP_SAMPLES = 12

DISTRIBUTION_DISTANCE = 5
DISTRIBUTION_ERROR_RATE = 0.001
DISTRIBUTION_SAMPLES = 120


def bench_figure9_average_latency(benchmark):
    rows = benchmark.pedantic(
        latency_sweep,
        kwargs={
            "distances": SWEEP_DISTANCES,
            "error_rates": SWEEP_ERROR_RATES,
            "samples": SWEEP_SAMPLES,
            "seed": 1,
        },
        rounds=1,
        iterations=1,
    )
    print("\nFigure 9 (top) — average decoding latency (µs)")
    print(
        format_rows(
            rows,
            [
                "decoder",
                "distance",
                "physical_error_rate",
                "mean_latency_us",
                "mean_defects",
            ],
        )
    )
    # Shape check: at the largest distance and error rate in the sweep the
    # hardware-accelerated decoder must beat the software baseline.
    largest = [
        row
        for row in rows
        if row["distance"] == max(SWEEP_DISTANCES)
        and row["physical_error_rate"] == max(SWEEP_ERROR_RATES)
    ]
    parity = next(r for r in largest if r["decoder"] == "parity-blossom")
    micro = next(r for r in largest if r["decoder"] == "micro-blossom")
    assert micro["mean_latency_us"] < parity["mean_latency_us"]


def bench_figure9_latency_distribution(benchmark):
    result = benchmark.pedantic(
        latency_distribution,
        kwargs={
            "distance": DISTRIBUTION_DISTANCE,
            "physical_error_rate": DISTRIBUTION_ERROR_RATE,
            "samples": DISTRIBUTION_SAMPLES,
            "seed": 2,
        },
        rounds=1,
        iterations=1,
    )
    print(
        f"\nFigure 9 (bottom) — latency distribution at d={DISTRIBUTION_DISTANCE}, "
        f"p={DISTRIBUTION_ERROR_RATE}"
    )
    for name in ("parity-blossom", "micro-blossom"):
        entry = result[name]
        cutoffs = ", ".join(
            f"L(k={k})={value:.2f}µs" for k, value in sorted(entry["cutoffs_us"].items())
        )
        print(
            f"  {name:>16}: mean={entry['average_latency_us']:.2f}µs  "
            f"p99={entry['p99_latency_us']:.2f}µs  max={entry['max_latency_us']:.2f}µs  {cutoffs}"
        )
    micro = result["micro-blossom"]
    assert micro["max_latency_us"] < result["parity-blossom"]["max_latency_us"] * 50
    assert micro["average_latency_us"] <= micro["p99_latency_us"] <= micro["max_latency_us"]
