"""Benchmark regenerating Table 4: resource usage and maximum clock frequency.

The analytical resource model derives per-PU memory, total FPGA memory, LUT
usage and achievable clock frequency for every code distance, and is checked
against the published Table 4 values.

Paper shape to reproduce: resource usage grows as O(d³ polylog d), the VMK180
board runs out of LUTs just beyond d = 15, and the maximum clock frequency
decreases with the code distance.
"""

from __future__ import annotations

from repro.evaluation import format_rows, resource_usage_table
from repro.resources import VMK180_LUTS, maximum_distance_for_luts

DISTANCES = (3, 5, 7, 9, 11, 13, 15)


def bench_table4_resource_usage(benchmark):
    rows = benchmark.pedantic(
        resource_usage_table, kwargs={"distances": DISTANCES}, rounds=1, iterations=1
    )
    print("\nTable 4 — resource usage and maximum clock frequency")
    print(
        format_rows(
            rows,
            [
                "distance",
                "num_vertices",
                "num_edges",
                "vpu_bits",
                "paper_vpu_bits",
                "cpu_memory_kb",
                "fpga_memory_kbits",
                "luts",
                "paper_luts",
                "clock_mhz",
                "paper_freq_mhz",
            ],
        )
    )
    for row in rows:
        if row["paper_luts"]:
            assert abs(row["luts"] - row["paper_luts"]) / row["paper_luts"] < 0.25
        if row["paper_freq_mhz"]:
            assert row["clock_mhz"] == row["paper_freq_mhz"]
    luts = [row["luts"] for row in rows]
    assert luts == sorted(luts)
    assert maximum_distance_for_luts(VMK180_LUTS) == 15


def bench_table4_our_graph_sizes(benchmark):
    """Resource estimates for the decoding graphs actually built here."""
    from repro.evaluation.experiments import build_graph
    from repro.resources import estimate_resources

    def run():
        rows = []
        for distance in (3, 5, 7, 9):
            graph = build_graph(distance, 0.001)
            estimate = estimate_resources(
                distance,
                num_vertices=graph.num_vertices,
                num_edges=graph.num_edges,
            )
            rows.append(
                {
                    "distance": distance,
                    "num_vertices": graph.num_vertices,
                    "num_edges": graph.num_edges,
                    "luts": estimate.luts,
                    "fpga_memory_kbits": estimate.fpga_memory_kbits,
                    "clock_mhz": estimate.clock_frequency_mhz,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nTable 4 (our decoding graphs) — resource estimates")
    print(
        format_rows(
            rows,
            [
                "distance",
                "num_vertices",
                "num_edges",
                "luts",
                "fpga_memory_kbits",
                "clock_mhz",
            ],
        )
    )
    assert all(row["luts"] > 0 for row in rows)
