#!/usr/bin/env python3
"""Session reuse and batch decoding throughput (the unified-API hot path).

The Monte-Carlo harness used to rebuild ``MicroBlossomAccelerator`` +
``PrimalModule`` for every decoded syndrome.  With the unified decoder API the
engines are built once per session and ``reset()`` between shots, and
``decode_batch`` can additionally fan the shots out over worker processes.
This benchmark measures all three modes on the same d=9 Monte-Carlo workload
and verifies they produce bit-identical matchings.

Run::

    python benchmarks/bench_batch_throughput.py --distance 9 --samples 40
    python benchmarks/bench_batch_throughput.py --smoke   # CI-sized run
"""

from __future__ import annotations

import argparse
import time

from repro.api import MicroBlossomConfig, DecoderSession, decode_batch, get_decoder
from repro.evaluation import format_rows
from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph


def _sample(graph, samples: int, seed: int):
    return SyndromeSampler(graph, seed=seed).sample_batch(samples)


def run(distance: int, error_rate: float, samples: int, seed: int, workers: int) -> list[dict]:
    graph = surface_code_decoding_graph(distance, circuit_level_noise(error_rate))
    syndromes = _sample(graph, samples, seed)
    config = MicroBlossomConfig(stream=False)
    rows: list[dict] = []

    start = time.perf_counter()
    per_shot = get_decoder("micro-blossom-batch", graph)
    per_shot.reuse_engines = False
    baseline_weights = []
    for syndrome in syndromes:
        baseline_weights.append(per_shot.decode_detailed(syndrome).weight)
        per_shot.reset()
    baseline_seconds = time.perf_counter() - start
    rows.append(
        {
            "mode": "per-shot construction",
            "seconds": baseline_seconds,
            "shots_per_s": samples / baseline_seconds,
            "speedup": 1.0,
        }
    )

    start = time.perf_counter()
    session = DecoderSession(graph, "micro-blossom-batch", config)
    session_weights = [session.decode_detailed(s).weight for s in syndromes]
    session_seconds = time.perf_counter() - start
    rows.append(
        {
            "mode": "session reuse",
            "seconds": session_seconds,
            "shots_per_s": samples / session_seconds,
            "speedup": baseline_seconds / session_seconds,
        }
    )

    start = time.perf_counter()
    batch = decode_batch(
        graph, "micro-blossom-batch", syndromes, config=config, workers=workers
    )
    batch_seconds = time.perf_counter() - start
    rows.append(
        {
            "mode": f"decode_batch workers={workers}",
            "seconds": batch_seconds,
            "shots_per_s": samples / batch_seconds,
            "speedup": baseline_seconds / batch_seconds,
        }
    )

    assert session_weights == baseline_weights, "session reuse changed the matchings"
    assert batch.weights == baseline_weights, "decode_batch changed the matchings"
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=9)
    parser.add_argument("--error-rate", type=float, default=0.001)
    parser.add_argument("--samples", type=int, default=40)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small, fast configuration for CI (d=5, 12 samples, 2 workers)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.distance, args.samples, args.workers = 5, 12, 2

    print(
        f"== batch decoding throughput (d={args.distance}, p={args.error_rate}, "
        f"{args.samples} shots) =="
    )
    rows = run(args.distance, args.error_rate, args.samples, args.seed, args.workers)
    print(format_rows(rows, ["mode", "seconds", "shots_per_s", "speedup"]))
    reuse_speedup = rows[1]["speedup"]
    print(f"\nsession reuse speedup over per-shot construction: {reuse_speedup:.2f}x")
    if reuse_speedup <= 1.0:
        raise SystemExit("expected session reuse to beat per-shot construction")


if __name__ == "__main__":
    main()
