"""Ablation: pipeline depth and bus latency sensitivity (paper §7).

The accelerator micro-architecture uses a 3-stage computation pipeline (5 with
fetch/write) and can be deepened to 11 stages for a higher clock; the CPU
reaches it through an AXI bus whose blocking read dominates each interaction.
This ablation sweeps the two parameters of the timing model and reports how
the modelled decoding latency responds, using the same measured operation
counts for every configuration.

Expected shape: latency is much more sensitive to the bus read cost than to
the pipeline depth (which is why the paper offloads the primal phase rather
than shortening the pipeline), and deeper pipelines only pay off if they come
with a faster clock.
"""

from __future__ import annotations

from repro.core import MicroBlossomDecoder
from repro.evaluation import format_rows
from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph
from repro.latency import AcceleratorTimingModel, MicroBlossomLatencyModel

DISTANCE = 5
ERROR_RATE = 0.003
SAMPLES = 15
PIPELINE_DEPTHS = (5, 8, 11)
BUS_READ_NANOSECONDS = (80, 150, 300)


def bench_ablation_pipeline_and_bus(benchmark):
    def run():
        graph = surface_code_decoding_graph(DISTANCE, circuit_level_noise(ERROR_RATE))
        decoder = MicroBlossomDecoder(graph, stream=True)
        sampler = SyndromeSampler(graph, seed=2024)
        counter_sets = []
        for syndrome in sampler.sample_batch(SAMPLES):
            outcome = decoder.decode_detailed(syndrome)
            counter_sets.append(outcome.post_final_round_counters)
        rows = []
        for depth in PIPELINE_DEPTHS:
            for read_ns in BUS_READ_NANOSECONDS:
                timing = AcceleratorTimingModel(
                    distance=DISTANCE,
                    pipeline_stages=depth,
                    bus_read_seconds=read_ns * 1e-9,
                )
                model = MicroBlossomLatencyModel(DISTANCE, graph.num_edges, timing)
                mean_us = (
                    sum(model.latency_seconds(c) for c in counter_sets)
                    / len(counter_sets)
                    * 1e6
                )
                rows.append(
                    {
                        "pipeline_stages": depth,
                        "bus_read_ns": read_ns,
                        "mean_latency_us": mean_us,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — pipeline depth and bus read cost vs latency (µs)")
    print(format_rows(rows, ["pipeline_stages", "bus_read_ns", "mean_latency_us"]))
    by_key = {(r["pipeline_stages"], r["bus_read_ns"]): r["mean_latency_us"] for r in rows}
    # Tripling the bus read cost hurts more than doubling the pipeline depth.
    bus_penalty = by_key[(5, 300)] - by_key[(5, 80)]
    pipeline_penalty = by_key[(11, 150)] - by_key[(5, 150)]
    assert bus_penalty > pipeline_penalty
    # Latency is monotone in both parameters (with the clock held fixed).
    assert by_key[(5, 80)] <= by_key[(5, 150)] <= by_key[(5, 300)]
    assert by_key[(5, 150)] <= by_key[(8, 150)] <= by_key[(11, 150)]
