#!/usr/bin/env python3
"""Resource planning: which code distance fits on which FPGA (Table 4, §8.4).

The Micro Blossom accelerator instantiates one processing unit per vertex and
per edge of the decoding graph, so its size grows as O(d³ polylog d).  This
example regenerates the paper's Table 4 from the analytical resource model,
compares it against the published numbers, and answers the two §8.4 planning
questions: the largest distance supported by a given LUT budget and the clock
frequency needed for sub-microsecond decoding.

Run::

    python examples/resource_planning.py --distances 3 5 7 9 11 13 15 17
"""

from __future__ import annotations

import argparse

from repro.evaluation import format_rows, resource_usage_table
from repro.resources import (
    VMK180_LUTS,
    VP1902_LUTS,
    maximum_distance_for_luts,
    minimum_frequency_for_sub_microsecond,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--distances", type=int, nargs="+", default=[3, 5, 7, 9, 11, 13, 15]
    )
    parser.add_argument(
        "--lut-budget",
        type=int,
        default=None,
        help="optional custom LUT budget to plan for",
    )
    args = parser.parse_args()

    print("== Micro Blossom accelerator resource model (Table 4) ==")
    rows = resource_usage_table(args.distances)
    print(
        format_rows(
            rows,
            [
                "distance",
                "num_vertices",
                "num_edges",
                "vpu_bits",
                "fpga_memory_kbits",
                "luts",
                "paper_luts",
                "clock_mhz",
            ],
        )
    )

    print("\n== Planning ==")
    boards = [("VMK180", VMK180_LUTS), ("VP1902", VP1902_LUTS)]
    if args.lut_budget:
        boards.append(("custom budget", args.lut_budget))
    for name, luts in boards:
        distance = maximum_distance_for_luts(luts)
        print(f"{name:>14} ({luts:>9,} LUTs): supports up to d = {distance}")
    for distance in (13, 15, 21, 31):
        frequency = minimum_frequency_for_sub_microsecond(distance)
        print(
            f"sub-µs decoding at d = {distance:>2} needs a clock of at least "
            f"{frequency:6.1f} MHz"
        )


if __name__ == "__main__":
    main()
