#!/usr/bin/env python3
"""Accuracy comparison: exact MWPM decoding vs the Union-Find approximation.

The reason the paper insists on *exact* MWPM decoding is accuracy: approximate
decoders such as Union-Find (Helios) trade logical error rate for speed
(§1, §8.3).  This example estimates the logical error rate of

* the Micro Blossom decoder (exact MWPM — identical accuracy to Parity and
  Sparse Blossom),
* the Union-Find decoder,

by Monte Carlo on small code distances, and reports the accuracy penalty of
the approximation together with the effective logical error rate once the
modelled decoding latency is taken into account (Figure 11's metric).

The Monte Carlo runs on the sharded :class:`repro.evaluation.MonteCarloEngine`
(see ``docs/evaluation.md``): pass ``--workers`` to fan the shot stream over
worker processes (the estimates do not change, only the wall-clock time) and
``--target-se`` to stop each run early once the estimate is tight enough.

Run::

    python examples/accuracy_comparison.py --distances 3 5 --samples 400
    python examples/accuracy_comparison.py --samples 20000 --workers 4 --target-se 0.005
"""

from __future__ import annotations

import argparse

from repro.evaluation import MonteCarloEngine, format_rows
from repro.graphs import circuit_level_noise, surface_code_decoding_graph
from repro.latency import (
    EffectiveErrorRate,
    HeliosLatencyModel,
    MicroBlossomLatencyModel,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distances", type=int, nargs="+", default=[3, 5])
    parser.add_argument("--error-rate", type=float, default=0.02)
    parser.add_argument("--samples", type=int, default=400)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--target-se",
        type=float,
        default=None,
        help="stop each run early at this standard error",
    )
    args = parser.parse_args()

    print(
        f"== MWPM vs Union-Find accuracy (p={args.error_rate}, "
        f"up to {args.samples} samples per point, {args.workers} worker(s)) =="
    )
    rows = []
    for distance in args.distances:
        graph = surface_code_decoding_graph(
            distance, circuit_level_noise(args.error_rate)
        )
        mwpm = MonteCarloEngine(graph, "micro-blossom", workers=args.workers).run(
            args.samples, seed=args.seed, target_standard_error=args.target_se
        )
        union_find = MonteCarloEngine(graph, "union-find", workers=args.workers).run(
            args.samples, seed=args.seed, target_standard_error=args.target_se
        )
        penalty = (union_find.rate / mwpm.rate) if mwpm.rate else float("nan")

        micro_latency = MicroBlossomLatencyModel(
            distance, graph.num_edges
        ).expected_latency_seconds(1.0, graph.num_layers)
        helios_latency = HeliosLatencyModel().latency_seconds(distance)
        mwpm_effective = EffectiveErrorRate(mwpm.rate, micro_latency, distance)
        uf_effective = EffectiveErrorRate(union_find.rate, helios_latency, distance)
        rows.append(
            {
                "distance": distance,
                "mwpm_logical_error_rate": mwpm.rate,
                "union_find_logical_error_rate": union_find.rate,
                "uf_accuracy_penalty": penalty,
                "mwpm_effective": mwpm_effective.value,
                "union_find_effective": uf_effective.value,
            }
        )
    print(
        format_rows(
            rows,
            [
                "distance",
                "mwpm_logical_error_rate",
                "union_find_logical_error_rate",
                "uf_accuracy_penalty",
                "mwpm_effective",
                "union_find_effective",
            ],
        )
    )
    print(
        "\nThe Union-Find decoder is faster but less accurate; the paper's point"
        "\nis that Micro Blossom removes the latency penalty of exact MWPM"
        "\ndecoding, so its effective error rate wins in most of the (p, d) grid."
    )


if __name__ == "__main__":
    main()
