#!/usr/bin/env python3
"""Quickstart: decode one surface-code syndrome with Micro Blossom.

This example walks through the full pipeline of the paper:

1. build the decoding graph of a rotated surface code under circuit-level
   noise (Figure 1c);
2. sample a syndrome (the set of defect stabilizer measurements);
3. decode it with the Micro Blossom heterogeneous decoder (accelerator model
   plus software primal module);
4. verify exactness against the reference MWPM decoder and report the
   modelled decoding latency.

Run::

    python examples/quickstart.py --distance 5 --error-rate 0.005
"""

from __future__ import annotations

import argparse

from repro.api import available_decoders, get_decoder
from repro.evaluation import expected_defect_count
from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    is_logical_error,
    surface_code_decoding_graph,
)
from repro.latency import MicroBlossomLatencyModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=5, help="code distance (odd)")
    parser.add_argument(
        "--error-rate", type=float, default=0.005, help="physical error rate"
    )
    parser.add_argument("--seed", type=int, default=2025, help="random seed")
    args = parser.parse_args()

    print(f"== Micro Blossom quickstart (d={args.distance}, p={args.error_rate}) ==")
    print(f"registered decoders: {', '.join(available_decoders())}")
    graph = surface_code_decoding_graph(
        args.distance, circuit_level_noise(args.error_rate)
    )
    print(f"decoding graph: {graph}")
    print(f"expected defects per syndrome: {expected_defect_count(graph):.2f}")

    sampler = SyndromeSampler(graph, seed=args.seed)
    # Draw shots in vectorized batches until one carries defects.
    syndrome = next(
        (s for _ in range(100) for s in sampler.sample_batch(16) if s.defects),
        None,
    )
    if syndrome is None:
        raise SystemExit("no defects in 1600 shots; raise the error rate")
    print(f"\nsampled syndrome with {syndrome.defect_count} defects: {syndrome.defects}")

    decoder = get_decoder("micro-blossom", graph)
    outcome = decoder.decode_detailed(syndrome)
    print("\nmatching (defect pairs; -1 means matched to the boundary):")
    for pair in outcome.result.pairs:
        print(f"  {pair}")
    print(f"matching weight: {outcome.result.weight}")
    print(f"pre-matched in hardware: {outcome.prematched_pairs} pair(s)")
    print(f"conflicts escalated to the CPU: {outcome.counters['conflicts_resolved']}")

    reference = get_decoder("reference", graph)
    optimal = reference.decode(syndrome).weight
    assert outcome.result.weight == optimal, "Micro Blossom must be exact"
    print(f"reference MWPM weight: {optimal}  -> exact ✔")

    logical_error = is_logical_error(graph, syndrome, outcome.result)
    print(f"logical error after correction: {logical_error}")

    model = MicroBlossomLatencyModel(args.distance, graph.num_edges)
    latency = model.latency_seconds(outcome.post_final_round_counters)
    print(f"\nmodelled decoding latency (after the final round): {latency * 1e6:.2f} µs")


if __name__ == "__main__":
    main()
