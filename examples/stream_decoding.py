#!/usr/bin/env python3
"""Stream decoding with round-wise fusion (paper §6, Figure 10b).

Syndrome data arrives one measurement round at a time (about every 1 µs on
superconducting hardware).  Instead of waiting for all rounds, Micro Blossom
fuses each round into the running solution as soon as it arrives, so the work
left after the *final* round — which is what determines the decoding latency —
stays constant no matter how many rounds the logical operation takes.

This example decodes the same syndromes in batch mode and in stream mode for a
growing number of measurement rounds and prints the latency of each, showing
the batch latency growing while the stream latency stays flat.

Run::

    python examples/stream_decoding.py --distance 5 --rounds 2 4 6 8 10
"""

from __future__ import annotations

import argparse

from repro.api import get_decoder
from repro.evaluation import format_rows, stream_vs_batch
from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph
from repro.latency import MicroBlossomLatencyModel


def show_single_stream_decode(distance: int, error_rate: float, seed: int) -> None:
    """Decode one syndrome round by round, printing the per-round progress."""
    graph = surface_code_decoding_graph(distance, circuit_level_noise(error_rate))
    sampler = SyndromeSampler(graph, seed=seed)
    syndrome = next(
        (s for _ in range(100) for s in sampler.sample_batch(32) if s.defect_count >= 2),
        None,
    )
    if syndrome is None:
        raise SystemExit("no multi-defect shot in 3200 samples; raise the error rate")
    print(f"decoding a syndrome with {syndrome.defect_count} defects round by round:")
    decoder = get_decoder("micro-blossom", graph)
    outcome = decoder.decode_detailed(syndrome)
    per_layer = {}
    for defect in syndrome.defects:
        layer = graph.vertices[defect].layer
        per_layer[layer] = per_layer.get(layer, 0) + 1
    for layer in range(graph.num_layers):
        print(f"  round {layer}: {per_layer.get(layer, 0)} new defect(s)")
    model = MicroBlossomLatencyModel(distance, graph.num_edges)
    total_latency = model.latency_seconds(outcome.counters)
    final_latency = model.latency_seconds(outcome.post_final_round_counters)
    print(f"  total work if done in one batch : {total_latency * 1e6:.2f} µs")
    print(f"  work left after the final round : {final_latency * 1e6:.2f} µs")
    print(f"  matching weight: {outcome.result.weight}\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=5)
    parser.add_argument("--error-rate", type=float, default=0.002)
    parser.add_argument("--rounds", type=int, nargs="+", default=[2, 4, 6, 8])
    parser.add_argument("--samples", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"== Round-wise fusion demo (d={args.distance}, p={args.error_rate}) ==\n")
    show_single_stream_decode(args.distance, args.error_rate, args.seed)

    print("batch vs stream decoding latency (Figure 10b):")
    rows = stream_vs_batch(
        distance=args.distance,
        physical_error_rate=args.error_rate,
        rounds_list=args.rounds,
        samples=args.samples,
        seed=args.seed,
    )
    print(format_rows(rows, ["rounds", "batch_latency_us", "stream_latency_us"]))


if __name__ == "__main__":
    main()
