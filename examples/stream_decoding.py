#!/usr/bin/env python3
"""Stream decoding with round-wise fusion (paper §6, Figure 10b).

Syndrome data arrives one measurement round at a time (about every 1 µs on
superconducting hardware).  Instead of waiting for all rounds, a streaming
decoder fuses each round into the running solution as soon as it arrives, so
the work left after the *final* round — which is what determines the decoding
latency — stays constant no matter how many rounds the logical operation
takes.

This example tours the streaming subsystem (see docs/streaming.md):

1. one syndrome pushed round by round through the ``StreamingDecoder``
   protocol (``begin`` → ``push_round`` → ``finalize``), showing the
   per-round cost and verifying the streamed outcome equals the batch decode;
2. the same stream through the ``SlidingWindowAdapter``, which lifts a batch
   backend (union-find here) onto the protocol;
3. the ``StreamEngine`` comparing reaction latency of native streaming
   against the batch baseline for a growing number of rounds (Figure 10b).

Run::

    python examples/stream_decoding.py --distance 5 --rounds 2 4 6 8 10
"""

from __future__ import annotations

import argparse

from repro.api import get_decoder
from repro.evaluation import format_rows, stream_latency_fn, stream_vs_batch
from repro.graphs import (
    SyndromeSampler,
    circuit_level_noise,
    residual_defects,
    surface_code_decoding_graph,
)
from repro.stream import get_streaming_decoder


def show_round_push_protocol(distance: int, error_rate: float, seed: int) -> None:
    """Push one syndrome round by round, printing what each round cost."""
    graph = surface_code_decoding_graph(distance, circuit_level_noise(error_rate))
    sampler = SyndromeSampler(graph, seed=seed)
    syndrome = next(
        (s for _ in range(100) for s in sampler.sample_batch(32) if s.defect_count >= 2),
        None,
    )
    if syndrome is None:
        raise SystemExit("no multi-defect shot in 3200 samples; raise the error rate")
    print(f"decoding a syndrome with {syndrome.defect_count} defects round by round:")
    latency_of = stream_latency_fn("micro-blossom", graph)
    session = get_streaming_decoder("micro-blossom", graph)
    session.begin(graph, rounds_hint=graph.num_layers)
    for layer, round_defects in enumerate(syndrome.defects_by_layer(graph)):
        work = session.push_round(round_defects)
        print(
            f"  round {layer}: {len(round_defects)} new defect(s), "
            f"fused in {latency_of(work) * 1e6:.2f} µs"
        )
    outcome = session.finalize()
    final_latency = latency_of(outcome.post_final_round_counters)
    print(f"  work left after the final round : {final_latency * 1e6:.2f} µs")
    print(f"  matching weight: {outcome.result.weight}")

    batch = get_decoder("micro-blossom", graph).decode_detailed(syndrome)
    assert outcome.correction_edges(graph) == batch.correction_edges(graph)
    assert outcome.result.weight == batch.result.weight
    print("  streamed outcome == batch outcome ✔\n")

    # Any batch backend streams through the sliding-window adapter.
    adapter = get_streaming_decoder("union-find", graph, window=2)
    adapter.begin(graph)
    for round_defects in syndrome.defects_by_layer(graph):
        adapter.push_round(round_defects)
    windowed = adapter.finalize()
    assert residual_defects(graph, syndrome, windowed.correction_edges(graph)) == ()
    print(
        f"  union-find through a window-2 adapter: correction annihilates all "
        f"defects, {windowed.committed_pairs} pair(s) committed mid-stream\n"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distance", type=int, default=5)
    parser.add_argument("--error-rate", type=float, default=0.002)
    parser.add_argument("--rounds", type=int, nargs="+", default=[2, 4, 6, 8])
    parser.add_argument("--samples", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"== Round-wise fusion demo (d={args.distance}, p={args.error_rate}) ==\n")
    show_round_push_protocol(args.distance, args.error_rate, args.seed)

    print("batch vs stream reaction latency (Figure 10b, via StreamEngine):")
    rows = stream_vs_batch(
        distance=args.distance,
        physical_error_rate=args.error_rate,
        rounds_list=args.rounds,
        samples=args.samples,
        seed=args.seed,
    )
    print(format_rows(rows, ["rounds", "batch_latency_us", "stream_latency_us"]))


if __name__ == "__main__":
    main()
