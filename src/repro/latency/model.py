"""Timing models converting operation counts into decoding latency.

The paper evaluates latency on real hardware (an FPGA-hosted accelerator next
to an embedded ARM CPU, and an Apple M1 Max for the software baseline).  This
reproduction cannot run that hardware, so latency is produced by explicit
timing models applied to the operation counts measured while actually decoding
each syndrome:

* :class:`AcceleratorTimingModel` — clock period per code distance (Table 4),
  pipeline and convergecast depth, and the CPU↔accelerator bus costs quoted in
  the paper ("a large constant factor of hundreds of nanoseconds per
  interaction", §3.2).
* :class:`MicroBlossomLatencyModel` — end-to-end latency of a Micro Blossom
  decode: bus reads/writes + accelerator cycles + software primal time.
* :class:`ParityBlossomLatencyModel` — CPU time of the software baseline,
  dominated by the dual phase (Figure 2), with an O(p·|V| + 1) average shape.
* :class:`HeliosLatencyModel` — latency of the hardware Union-Find decoder
  used in the Figure 11 comparison (constant-factor model from [25, 26]).

All constants are calibration parameters; they are chosen to land on the
paper's published anchor points (0.8 µs at d = 13, p = 0.1% for Micro Blossom;
4.33 µs at d = 9, p = 0.1% for Parity Blossom) and documented here so the
shapes — scaling with p and d, improvement factors, crossovers — are produced
by the measured operation counts rather than by the constants.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

#: Measurement round interval of superconducting qubits assumed in the paper.
MEASUREMENT_ROUND_SECONDS = 1e-6

#: Maximum accelerator clock frequency measured per code distance (Table 4).
PAPER_CLOCK_FREQUENCY_MHZ: dict[int, float] = {
    3: 170.0,
    5: 141.0,
    7: 107.0,
    9: 93.0,
    11: 77.0,
    13: 62.0,
    15: 43.0,
}


def accelerator_clock_frequency_hz(distance: int) -> float:
    """Maximum clock frequency of the accelerator for a given code distance.

    Distances present in Table 4 use the measured value; other distances use a
    log-linear interpolation/extrapolation of the clock *period* versus
    ``log2(d)`` (the critical path grows with the convergecast tree depth).
    """
    if distance in PAPER_CLOCK_FREQUENCY_MHZ:
        return PAPER_CLOCK_FREQUENCY_MHZ[distance] * 1e6
    known = sorted(PAPER_CLOCK_FREQUENCY_MHZ)
    periods = {d: 1.0 / (PAPER_CLOCK_FREQUENCY_MHZ[d] * 1e6) for d in known}
    if distance > known[-1]:
        lower, upper = known[-2], known[-1]
    elif distance < known[0]:
        lower, upper = known[0], known[1]
    else:
        upper = min(d for d in known if d > distance)
        lower = max(d for d in known if d < distance)
    # Linear in the clock *period* versus log2(d): the critical path follows
    # the convergecast tree depth.
    x_low, x_high = math.log2(lower), math.log2(upper)
    slope = (periods[upper] - periods[lower]) / (x_high - x_low)
    period = periods[lower] + slope * (math.log2(max(distance, 2)) - x_low)
    period = max(period, 1e-9)
    return 1.0 / period


@dataclass(frozen=True)
class AcceleratorTimingModel:
    """Clock and bus timing of the accelerator and its host CPU."""

    distance: int
    #: Pipeline stages of the accelerator micro-architecture (Figure 8).
    pipeline_stages: int = 5
    #: Blocking read of a response register over the AXI bus (seconds).
    bus_read_seconds: float = 150e-9
    #: Posted write of one instruction word over the AXI bus (seconds).
    bus_write_seconds: float = 40e-9
    #: Software time per primal-phase operation on the embedded CPU (seconds).
    primal_operation_seconds: float = 90e-9
    #: Fixed synchronisation overhead per decoding task (seconds).
    base_overhead_seconds: float = 200e-9

    @property
    def clock_period_seconds(self) -> float:
        return 1.0 / accelerator_clock_frequency_hz(self.distance)

    def convergecast_depth(self, num_edges: int) -> int:
        """Latency (in cycles) of the response convergecast tree, O(log |E|)."""
        return max(1, math.ceil(math.log2(max(num_edges, 2))))

    def instruction_cycles(self, num_edges: int) -> int:
        """Cycles for one instruction to propagate, execute and report back."""
        return self.pipeline_stages + self.convergecast_depth(num_edges)


class MicroBlossomLatencyModel:
    """End-to-end decoding latency of the Micro Blossom architecture."""

    def __init__(
        self,
        distance: int,
        num_edges: int,
        timing: AcceleratorTimingModel | None = None,
    ) -> None:
        self.distance = distance
        self.num_edges = num_edges
        self.timing = timing or AcceleratorTimingModel(distance=distance)

    def latency_seconds(self, counters: Counter | dict) -> float:
        """Latency from the operation counts of one decode.

        For stream decoding the caller passes only the operations issued after
        the final measurement round arrived (the paper measures latency from
        the moment the last round of the syndrome is available, §8.2).
        """
        timing = self.timing
        reads = int(counters.get("instr_find_obstacle", 0))
        writes = (
            int(counters.get("instr_grow", 0))
            + int(counters.get("instr_set_direction", 0))
            + int(counters.get("instr_set_cover", 0))
            + int(counters.get("instr_load", 0))
        )
        instructions = reads + writes
        primal_operations = (
            int(counters.get("conflicts_resolved", 0))
            + int(counters.get("blossoms_formed", 0))
            + int(counters.get("blossoms_expanded", 0))
            + int(counters.get("tree_attachments", 0))
            + int(counters.get("augmentations", 0))
            + int(counters.get("fusion_breaks", 0))
        )
        # Instructions stream through the pipeline at one per cycle; only the
        # blocking response reads pay the full pipeline + convergecast depth.
        accelerator_seconds = (
            instructions + reads * timing.instruction_cycles(self.num_edges)
        ) * timing.clock_period_seconds
        bus_seconds = reads * timing.bus_read_seconds + writes * timing.bus_write_seconds
        software_seconds = primal_operations * timing.primal_operation_seconds
        return (
            timing.base_overhead_seconds
            + accelerator_seconds
            + bus_seconds
            + software_seconds
        )

    def expected_latency_seconds(
        self, expected_defects_per_round: float, rounds: int
    ) -> float:
        """Analytic average latency of stream decoding with pre-matching.

        After the final measurement round arrives the CPU performs a constant
        amount of work plus O(p²d²) interactions for the rare non-isolated
        Conflicts among recent rounds (paper §6.3).  ``expected_defects_per
        _round`` scales as p·d², so the quadratic term reproduces the paper's
        O(p²d² + 1) average latency.
        """
        timing = self.timing
        base = (
            timing.base_overhead_seconds
            + timing.instruction_cycles(self.num_edges) * timing.clock_period_seconds
            + timing.bus_read_seconds
            + timing.bus_write_seconds
        )
        # Non-isolated Conflicts arise among defects of the last couple of
        # measurement rounds still being fused when the final round arrives.
        recent_defects = 2.0 * expected_defects_per_round
        residual_interactions = recent_defects**2
        per_interaction = (
            timing.bus_read_seconds
            + 2 * timing.bus_write_seconds
            + timing.primal_operation_seconds
            + timing.instruction_cycles(self.num_edges) * timing.clock_period_seconds
        )
        return base + residual_interactions * per_interaction


@dataclass(frozen=True)
class ParityBlossomLatencyModel:
    """CPU latency model of the Parity Blossom software baseline.

    The average decoding time of Parity Blossom is O(p·|V| + 1) with a large
    constant per defect; the dual phase accounts for the bulk of it
    (Figure 2).  The per-operation constants below reproduce the published
    anchor point of 4.33 µs average latency at d = 9, p = 0.1% and keep the
    dual share of the run time in the 70–95% band reported by the paper.
    """

    base_seconds: float = 0.15e-6
    dual_per_defect_seconds: float = 0.8e-6
    dual_per_growth_seconds: float = 2e-9
    dual_per_conflict_seconds: float = 100e-9
    primal_per_defect_seconds: float = 120e-9
    primal_per_operation_seconds: float = 140e-9

    def phase_seconds(self, counters: Counter | dict, defect_count: int) -> tuple[float, float]:
        """Return ``(dual_seconds, primal_seconds)`` for one decode."""
        growth = int(counters.get("total_growth", 0))
        conflicts = int(counters.get("conflicts_reported", 0))
        primal_operations = (
            int(counters.get("conflicts_resolved", 0))
            + int(counters.get("blossoms_formed", 0))
            + int(counters.get("blossoms_expanded", 0))
            + int(counters.get("tree_attachments", 0))
            + int(counters.get("augmentations", 0))
            + int(counters.get("direction_updates", 0))
        )
        dual = (
            defect_count * self.dual_per_defect_seconds
            + growth * self.dual_per_growth_seconds
            + conflicts * self.dual_per_conflict_seconds
        )
        primal = (
            defect_count * self.primal_per_defect_seconds
            + primal_operations * self.primal_per_operation_seconds
        )
        return dual, primal

    def latency_seconds(self, counters: Counter | dict, defect_count: int) -> float:
        dual, primal = self.phase_seconds(counters, defect_count)
        return self.base_seconds + dual + primal

    def expected_latency_seconds(self, expected_defects: float) -> float:
        """Analytic average latency given only the expected defect count.

        Used to extrapolate the Figure 11 grid to code distances where
        decoding every Monte-Carlo sample in Python would be too slow; the
        O(p·|V| + 1) shape is preserved because the expected defect count
        already scales as p·|V|.
        """
        per_defect = (
            self.dual_per_defect_seconds
            + self.primal_per_defect_seconds
            + 2 * self.primal_per_operation_seconds
        )
        return self.base_seconds + expected_defects * per_defect


@dataclass(frozen=True)
class HeliosLatencyModel:
    """Latency of the Helios hardware Union-Find decoder (Figure 11 baseline).

    Helios grows clusters in parallel with one processing element per vertex;
    its reported average latency is a few hundred nanoseconds and grows mildly
    with the code distance [25, 26].
    """

    base_seconds: float = 120e-9
    per_distance_seconds: float = 25e-9
    per_defect_seconds: float = 6e-9

    def latency_seconds(self, distance: int, defect_count: int = 0) -> float:
        return (
            self.base_seconds
            + self.per_distance_seconds * distance
            + self.per_defect_seconds * defect_count
        )
