"""Latency distribution statistics: k-tolerant cutoff latency and tail fits.

The paper (§8.2) characterises the latency distribution by the *k-tolerant
cutoff latency* ``L_k`` defined by ``P(L >= L_k) = k * p_L`` where ``p_L`` is
the logical error rate: cutting decoding off at ``L_k`` inflates the logical
error rate by at most a factor ``1 + k``.  It also fits an exponential tail
``P(L) ~ 10^(a - L/b)`` to show that long latencies are exponentially unlikely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LatencyStatistics:
    """Summary statistics of a latency sample."""

    count: int
    mean: float
    maximum: float
    percentile_99: float

    @staticmethod
    def from_samples(latencies: Sequence[float]) -> "LatencyStatistics":
        if not latencies:
            raise ValueError("latency sample is empty")
        array = np.asarray(latencies, dtype=float)
        return LatencyStatistics(
            count=int(array.size),
            mean=float(array.mean()),
            maximum=float(array.max()),
            percentile_99=float(np.percentile(array, 99)),
        )


def cutoff_latency(
    latencies: Sequence[float], logical_error_rate: float, k: float
) -> float:
    """k-tolerant cutoff latency ``L_k`` with ``P(L >= L_k) = k * p_L``.

    When the requested tail probability is smaller than ``1 / len(latencies)``
    the sample cannot resolve it and the maximum observed latency is returned
    (a lower bound on the true cutoff, as in the paper's measured plots).
    """
    if not latencies:
        raise ValueError("latency sample is empty")
    if logical_error_rate <= 0 or k <= 0:
        raise ValueError("logical error rate and k must be positive")
    tail_probability = min(1.0, k * logical_error_rate)
    array = np.sort(np.asarray(latencies, dtype=float))
    if tail_probability < 1.0 / array.size:
        return float(array[-1])
    quantile = 1.0 - tail_probability
    return float(np.quantile(array, quantile))


def exponential_tail_fit(
    latencies: Sequence[float], tail_fraction: float = 0.2
) -> tuple[float, float]:
    """Fit ``log10 P(L >= x) = a - x / b`` to the upper tail of the sample.

    Returns ``(a, b)``; ``b`` has the units of the latencies and corresponds to
    the ``2.9 µs`` decay constant quoted in Figure 9(b) for Micro Blossom.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must lie in (0, 1]")
    array = np.sort(np.asarray(latencies, dtype=float))
    n = array.size
    if n < 10:
        raise ValueError("need at least 10 samples for a tail fit")
    start = int(math.floor(n * (1.0 - tail_fraction)))
    start = min(start, n - 5)
    xs = array[start:]
    survival = 1.0 - (np.arange(start, n) + 0.5) / n
    ys = np.log10(np.maximum(survival, 1e-300))
    if np.allclose(xs, xs[0]):
        return float(ys[0]), float("inf")
    slope, intercept = np.polyfit(xs, ys, 1)
    if slope >= 0:
        return float(intercept), float("inf")
    return float(intercept), float(-1.0 / slope)


def survival_histogram(
    latencies: Sequence[float], bins: int = 40
) -> list[tuple[float, float]]:
    """Return ``(latency, P(L >= latency))`` points for log-log plotting."""
    array = np.sort(np.asarray(latencies, dtype=float))
    if array.size == 0:
        raise ValueError("latency sample is empty")
    points: list[tuple[float, float]] = []
    edges = np.quantile(array, np.linspace(0.0, 1.0, bins, endpoint=False))
    for edge in np.unique(edges):
        survival = float(np.mean(array >= edge))
        points.append((float(edge), survival))
    return points
