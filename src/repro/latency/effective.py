"""Effective logical error rate including latency-induced idle errors (§8.3).

While a logical feedforward decision waits for the decoder, the target logical
qubit keeps accumulating idle errors.  With decoding latency ``L`` (in
seconds), measurement round time ``t_round`` and code distance ``d`` the
paper's model is::

    p_eff = p_L * (1 + L / (d * t_round))

and because the expression is linear in ``L`` only the *average* latency
matters.  Figure 11 reports the ratio of *additional* logical error relative
to a zero-latency MWPM decoder::

    ratio = p_eff / p_L^MWPM - 1
          = (p_L / p_L^MWPM) * (1 + L_avg / (d * t_round)) - 1
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import MEASUREMENT_ROUND_SECONDS


@dataclass(frozen=True)
class EffectiveErrorRate:
    """Effective logical error rate of one decoder configuration."""

    logical_error_rate: float
    average_latency_seconds: float
    distance: int
    round_seconds: float = MEASUREMENT_ROUND_SECONDS

    @property
    def latency_rounds(self) -> float:
        """Average decoding latency expressed in measurement rounds."""
        return self.average_latency_seconds / self.round_seconds

    @property
    def value(self) -> float:
        return self.logical_error_rate * (1.0 + self.latency_rounds / self.distance)

    def additional_error_ratio(self, mwpm_logical_error_rate: float) -> float:
        """``p_eff / p_L^MWPM - 1`` as plotted in Figure 11."""
        if mwpm_logical_error_rate <= 0:
            raise ValueError("the MWPM logical error rate must be positive")
        return self.value / mwpm_logical_error_rate - 1.0


def effective_error_rate(
    logical_error_rate: float,
    average_latency_seconds: float,
    distance: int,
    round_seconds: float = MEASUREMENT_ROUND_SECONDS,
) -> float:
    """Convenience wrapper around :class:`EffectiveErrorRate`."""
    return EffectiveErrorRate(
        logical_error_rate=logical_error_rate,
        average_latency_seconds=average_latency_seconds,
        distance=distance,
        round_seconds=round_seconds,
    ).value
