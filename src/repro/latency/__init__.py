"""Latency and timing models of the evaluation (§8.2, §8.3)."""

from .cutoff import (
    LatencyStatistics,
    cutoff_latency,
    exponential_tail_fit,
    survival_histogram,
)
from .effective import EffectiveErrorRate, effective_error_rate
from .model import (
    MEASUREMENT_ROUND_SECONDS,
    PAPER_CLOCK_FREQUENCY_MHZ,
    AcceleratorTimingModel,
    HeliosLatencyModel,
    MicroBlossomLatencyModel,
    ParityBlossomLatencyModel,
    accelerator_clock_frequency_hz,
)

__all__ = [
    "LatencyStatistics",
    "cutoff_latency",
    "exponential_tail_fit",
    "survival_histogram",
    "EffectiveErrorRate",
    "effective_error_rate",
    "MEASUREMENT_ROUND_SECONDS",
    "PAPER_CLOCK_FREQUENCY_MHZ",
    "AcceleratorTimingModel",
    "HeliosLatencyModel",
    "MicroBlossomLatencyModel",
    "ParityBlossomLatencyModel",
    "accelerator_clock_frequency_hz",
]
