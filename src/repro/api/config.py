"""Per-decoder configuration dataclasses.

Each registry entry owns one :class:`DecoderConfig` subclass whose fields map
one-to-one onto the keyword arguments of the backend's constructor.  Configs
are frozen (hashable, safe to share between sessions and worker processes)
and replace the ad-hoc ``**kwargs`` that used to be threaded through
``cli.py`` and the evaluation harness.

This module depends on nothing but the standard library so the decoder
packages and the registry can both import it freely.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict, dataclass

from .hashing import content_hash

#: Default internal dual scale (half-weight units).  Mirrors
#: :data:`repro.core.dual.DEFAULT_DUAL_SCALE`, which cannot be imported here
#: without a circular import; ``tests/test_api.py`` asserts they stay equal.
DEFAULT_DUAL_SCALE = 2


@dataclass(frozen=True)
class DecoderConfig:
    """Base class of all decoder configurations.

    >>> MicroBlossomConfig().to_kwargs()
    {'enable_prematching': True, 'stream': True, 'scale': 2}
    >>> MicroBlossomConfig().replace(stream=False).stream
    False
    """

    def to_kwargs(self) -> dict:
        """Constructor keyword arguments for the backend."""
        return asdict(self)

    def replace(self, **changes) -> "DecoderConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def config_hash(self) -> str:
        """Stable 16-hex-digit content hash of this configuration.

        Covers the concrete config class and every field, so two configs
        hash equally exactly when they would build identical decoders.  The
        decode service keys its LRU of reusable sessions by
        ``(code, decoder, config_hash)`` (see :mod:`repro.service`), and the
        hash is stable across processes — unlike ``hash(config)``.

        >>> MicroBlossomConfig().config_hash() == MicroBlossomConfig().config_hash()
        True
        >>> MicroBlossomConfig().config_hash() != MicroBlossomConfig(scale=4).config_hash()
        True
        """
        return content_hash({"config": type(self).__name__, "fields": asdict(self)})

    def to_dict(self) -> dict:
        """JSON-shaped wire form: the concrete class name plus every field.

        Nested configs (``LUTConfig.fallback_config``) serialise recursively;
        :meth:`from_dict` restores the exact subclass.  This is the codec the
        network decode service puts on the wire inside a
        :class:`repro.service.SessionKey`.

        >>> MicroBlossomConfig(scale=4).to_dict()["type"]
        'MicroBlossomConfig'
        """
        fields = {}
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, DecoderConfig):
                value = value.to_dict()
            fields[spec.name] = value
        return {"type": type(self).__name__, "fields": fields}

    @classmethod
    def from_dict(cls, data: dict) -> "DecoderConfig":
        """Inverse of :meth:`to_dict`; returns the concrete subclass instance.

        >>> config = LUTConfig(fallback_config=MicroBlossomConfig(scale=4))
        >>> DecoderConfig.from_dict(config.to_dict()) == config
        True
        """
        try:
            concrete = _CONFIG_CLASSES[data["type"]]
        except KeyError:
            raise ValueError(f"unknown decoder config type {data.get('type')!r}") from None
        known = {spec.name for spec in dataclasses.fields(concrete)}
        kwargs = {}
        for name, value in data["fields"].items():
            if name not in known:
                raise ValueError(f"{concrete.__name__} has no field {name!r}")
            if isinstance(value, dict) and value.get("type") in _CONFIG_CLASSES:
                value = DecoderConfig.from_dict(value)
            kwargs[name] = value
        return concrete(**kwargs)


@dataclass(frozen=True)
class MicroBlossomConfig(DecoderConfig):
    """Configuration of the Micro Blossom heterogeneous decoder.

    ``stream`` selects round-wise fusion (paper §6); ``enable_prematching``
    the in-accelerator handling of isolated Conflicts (paper §5.2); ``scale``
    the internal dual scale in half-weight units.
    """

    enable_prematching: bool = True
    stream: bool = True
    scale: int = DEFAULT_DUAL_SCALE


@dataclass(frozen=True)
class ParityBlossomConfig(DecoderConfig):
    """Configuration of the Parity Blossom software (CPU) baseline."""

    scale: int = DEFAULT_DUAL_SCALE


@dataclass(frozen=True)
class UnionFindConfig(DecoderConfig):
    """Configuration of the Union-Find decoder (no tunables yet)."""


@dataclass(frozen=True)
class ReferenceConfig(DecoderConfig):
    """Configuration of the reference MWPM decoder (no tunables yet)."""


#: Default memory budget of a LUT pre-decoder's table (bytes).
DEFAULT_LUT_BUDGET_BYTES = 8 << 20


@dataclass(frozen=True)
class LUTConfig(DecoderConfig):
    """Configuration of the table-lookup pre-decoder family (``lut+<fallback>``).

    ``max_defects`` bounds the defect-set sizes precomputed into the table
    (0 is always present — the dedicated zero-defect fast path), and
    ``cluster_radius`` restricts two-defect entries to local clusters: pairs
    at most that many decoding-graph hops apart.  ``memory_budget_bytes``
    caps the table size (construction stops deterministically at the budget).
    ``fallback_config`` configures the wrapped backend; ``None`` uses the
    fallback's registry default, so ``lut+X`` decodes exactly like ``X``.

    >>> LUTConfig().max_defects
    2
    >>> LUTConfig(max_defects=1).config_hash() != LUTConfig().config_hash()
    True
    """

    max_defects: int = 2
    cluster_radius: int = 2
    memory_budget_bytes: int = DEFAULT_LUT_BUDGET_BYTES
    fallback_config: DecoderConfig | None = None

    def to_kwargs(self) -> dict:
        """Constructor keyword arguments for :class:`repro.lut.LUTDecoder`.

        Shallow on purpose: :func:`dataclasses.asdict` would recurse into the
        nested ``fallback_config`` dataclass and hand the factory a plain
        dict, but the LUT decoder needs the config instance itself.
        """
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }


#: Concrete config classes by name — the lookup table of
#: :meth:`DecoderConfig.from_dict` (wire deserialisation).
_CONFIG_CLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        MicroBlossomConfig,
        ParityBlossomConfig,
        UnionFindConfig,
        ReferenceConfig,
        LUTConfig,
    )
}
