"""Shared decode-outcome base class for every decoder backend.

Every backend of this package — Micro Blossom, Parity Blossom, Union-Find and
the reference MWPM decoder — reports the result of one decoded syndrome as a
subclass of :class:`DecodeOutcome`.  The base carries the fields common to all
of them:

* ``result`` — the defect-level :class:`~repro.graphs.syndrome.MatchingResult`
  (``None`` for approximate decoders that produce a correction directly);
* ``correction`` — the correction edge set (``None`` for matching decoders,
  which derive it lazily from ``result`` via :meth:`correction_edges`);
* ``defect_count`` — number of defects in the decoded syndrome;
* ``counters`` — operation counts consumed by the latency models;
* ``scale_retries`` — internal dual-scale doublings needed (MWPM backends).

This module deliberately depends only on :mod:`repro.graphs` so that the
decoder packages can import it without circular imports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, correction_edges


def counter_delta(before: Counter, *sources) -> Counter:
    """Per-shot counter delta: the sum of ``sources`` minus ``before``.

    Zero entries are dropped so the delta of a reused engine is identical to
    the counters of a freshly-built one.

    >>> counter_delta(Counter(a=1), Counter(a=3, b=2))
    Counter({'a': 2, 'b': 2})
    >>> counter_delta(Counter(a=1), Counter(a=1))
    Counter()
    """
    after: Counter = Counter()
    for source in sources:
        after.update(source)
    delta: Counter = Counter()
    for key, value in after.items():
        difference = value - before.get(key, 0)
        if difference:
            delta[key] = difference
    return delta


@dataclass
class DecodeOutcome:
    """Common record of one decoding run, shared by all backends."""

    result: MatchingResult | None = None
    correction: set[int] | None = None
    defect_count: int = 0
    counters: Counter = field(default_factory=Counter)
    scale_retries: int = 0

    @property
    def weight(self) -> int:
        """Matching weight in decoding-graph units (0 without a matching)."""
        return self.result.weight if self.result is not None else 0

    @property
    def is_exact(self) -> bool:
        """True when the backend produced a minimum-weight perfect matching."""
        return self.result is not None

    def correction_edges(self, graph: DecodingGraph) -> set[int]:
        """The correction edge set, derived from the matching if needed."""
        if self.correction is not None:
            return set(self.correction)
        if self.result is None:
            raise ValueError("outcome carries neither a matching nor a correction")
        return correction_edges(graph, self.result)

    def to_dict(self) -> dict:
        """JSON-shaped wire form of the outcome.

        The deserialised object is always a plain :class:`DecodeOutcome` —
        backend-specific subclasses flatten to the shared fields, which carry
        everything the digest/identity contracts compare (``correction_edges``
        via the matching or the explicit correction set, ``weight``,
        ``is_exact``, ``counters``).

        >>> DecodeOutcome(correction={3, 1}).to_dict()["correction"]
        [1, 3]
        """
        return {
            "result": None if self.result is None else self.result.to_dict(),
            "correction": (
                None if self.correction is None else sorted(int(e) for e in self.correction)
            ),
            "defect_count": int(self.defect_count),
            "counters": {key: int(value) for key, value in sorted(self.counters.items())},
            "scale_retries": int(self.scale_retries),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecodeOutcome":
        """Inverse of :meth:`to_dict`.

        >>> DecodeOutcome.from_dict(DecodeOutcome(correction={2}).to_dict()).correction
        {2}
        """
        result = data.get("result")
        correction = data.get("correction")
        return cls(
            result=None if result is None else MatchingResult.from_dict(result),
            correction=None if correction is None else {int(e) for e in correction},
            defect_count=int(data.get("defect_count", 0)),
            counters=Counter(
                {str(key): int(value) for key, value in data.get("counters", {}).items()}
            ),
            scale_retries=int(data.get("scale_retries", 0)),
        )
