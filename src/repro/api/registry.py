"""String-keyed decoder registry.

The registry is the single place that maps stable decoder names (the ones
accepted by the CLI's ``--decoder`` flag, by :class:`~repro.api.session.DecoderSession`
and by :func:`~repro.api.batch.decode_batch`) onto backend constructors and
their :class:`~repro.api.config.DecoderConfig` classes.

Built-in backends are imported lazily inside their factory functions so that
``repro.api`` never imports the decoder packages at module level (they import
:mod:`repro.api.outcome` themselves, which would be circular).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable

from ..graphs.decoding_graph import DecodingGraph
from .erasure import erasure_aware
from .config import (
    DecoderConfig,
    LUTConfig,
    MicroBlossomConfig,
    ParityBlossomConfig,
    ReferenceConfig,
    UnionFindConfig,
)


class UnknownDecoderError(KeyError):
    """Raised when a decoder name is not present in the registry."""


@dataclass(frozen=True)
class DecoderCapabilities:
    """What a registered backend can do, as advertised by the registry.

    The flags drive feature dispatch instead of ``hasattr`` probing:
    ``native_streaming`` selects the incremental round-push implementation in
    :func:`repro.stream.get_streaming_decoder` (non-native backends are
    wrapped in a :class:`repro.stream.SlidingWindowAdapter`), ``timing_model``
    gates the latency/stream engines and sweeps that need
    :func:`repro.evaluation.modelled_latency_fn`, and ``exact`` marks
    backends guaranteed to realise the minimum-weight perfect matching.
    """

    #: Implements :class:`~repro.api.protocol.StreamingDecoder` itself.
    native_streaming: bool = False
    #: Has a published timing model (``repro.latency``).
    timing_model: bool = False
    #: Supports aggregate batch decoding (``repro.api.decode_batch``).
    batch_decode: bool = True
    #: Guaranteed to produce a minimum-weight perfect matching.
    exact: bool = False
    #: Resolves small defect sets through a precomputed lookup table
    #: (the ``lut+<fallback>`` family, :mod:`repro.lut`); lookup hits are
    #: exact by construction and misses fall through to the wrapped backend.
    lut_predecode: bool = False


@dataclass(frozen=True)
class DecoderSpec:
    """One registry entry: how to build a decoder and configure it."""

    name: str
    factory: Callable[[DecodingGraph, DecoderConfig], object]
    config_cls: type[DecoderConfig]
    description: str = ""
    default_config: DecoderConfig | None = field(default=None)
    capabilities: DecoderCapabilities = field(default_factory=DecoderCapabilities)

    def make_config(self) -> DecoderConfig:
        return self.default_config if self.default_config is not None else self.config_cls()


_REGISTRY: dict[str, DecoderSpec] = {}


def register_decoder(
    name: str,
    factory: Callable[[DecodingGraph, DecoderConfig], object],
    config_cls: type[DecoderConfig] = DecoderConfig,
    description: str = "",
    default_config: DecoderConfig | None = None,
    overwrite: bool = False,
    capabilities: DecoderCapabilities | None = None,
) -> DecoderSpec:
    """Register a decoder backend under a stable string name.

    ``factory(graph, config)`` must return an object satisfying the
    :class:`~repro.api.protocol.Decoder` protocol.  ``capabilities`` declares
    what the backend supports (defaults to a plain batch decoder without a
    timing model).  Re-registering an existing name raises ``ValueError``
    unless ``overwrite=True``.
    """
    if not name:
        raise ValueError("decoder name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(
            f"decoder {name!r} is already registered (pass overwrite=True to replace)"
        )
    spec = DecoderSpec(
        name=name,
        factory=factory,
        config_cls=config_cls,
        description=description,
        default_config=default_config,
        capabilities=capabilities if capabilities is not None else DecoderCapabilities(),
    )
    _REGISTRY[name] = spec
    return spec


def unregister_decoder(name: str) -> None:
    """Remove a registered decoder (mainly for tests of user extensions)."""
    _REGISTRY.pop(name, None)


def available_decoders() -> tuple[str, ...]:
    """Sorted names of every registered decoder.

    >>> [n for n in available_decoders() if not n.startswith("lut+")]
    ['micro-blossom', 'micro-blossom-batch', 'parity-blossom', 'reference', 'union-find']
    >>> [n[len("lut+"):] for n in available_decoders() if n.startswith("lut+")]
    ['micro-blossom', 'micro-blossom-batch', 'parity-blossom', 'reference', 'union-find']
    """
    return tuple(sorted(_REGISTRY))


def decoder_spec(name: str) -> DecoderSpec:
    """Look up a registry entry, raising :class:`UnknownDecoderError`.

    >>> decoder_spec("union-find").config_cls.__name__
    'UnionFindConfig'
    >>> decoder_spec("no-such-decoder")
    Traceback (most recent call last):
        ...
    repro.api.registry.UnknownDecoderError: "unknown decoder 'no-such-decoder'; ..."
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownDecoderError(
            f"unknown decoder {name!r}; available: {', '.join(available_decoders())}"
        ) from None


def decoder_capabilities(name: str) -> DecoderCapabilities:
    """The capability flags of a registered decoder.

    >>> decoder_capabilities("micro-blossom").native_streaming
    True
    >>> decoder_capabilities("reference").timing_model
    False
    """
    return decoder_spec(name).capabilities


def get_decoder(
    name: str,
    graph: DecodingGraph,
    config: DecoderConfig | None = None,
):
    """Build the decoder registered under ``name`` for ``graph``.

    ``config`` must be an instance of the entry's config class (the entry's
    default configuration is used when omitted).

    >>> from repro.graphs import circuit_level_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, circuit_level_noise(0.01))
    >>> get_decoder("union-find", graph).name
    'union-find'
    """
    spec = decoder_spec(name)
    if config is None:
        config = spec.make_config()
    elif not isinstance(config, spec.config_cls):
        raise TypeError(
            f"decoder {name!r} expects a {spec.config_cls.__name__}, "
            f"got {type(config).__name__}"
        )
    return spec.factory(graph, config)


# ---------------------------------------------------------------------------
# built-in backends (factories import lazily to avoid circular imports)
# ---------------------------------------------------------------------------
def _build_micro_blossom(graph: DecodingGraph, config: DecoderConfig):
    from ..core.decoder import MicroBlossomDecoder

    return MicroBlossomDecoder(graph, **config.to_kwargs())


def _build_parity_blossom(graph: DecodingGraph, config: DecoderConfig):
    from ..parity.decoder import ParityBlossomDecoder

    return ParityBlossomDecoder(graph, **config.to_kwargs())


def _build_union_find(graph: DecodingGraph, config: DecoderConfig):
    from ..unionfind.decoder import UnionFindDecoder

    return UnionFindDecoder(graph, **config.to_kwargs())


def _build_reference(graph: DecodingGraph, config: DecoderConfig):
    from ..matching.reference import ReferenceDecoder

    return ReferenceDecoder(graph, **config.to_kwargs())


register_decoder(
    "micro-blossom",
    functools.partial(erasure_aware, _build_micro_blossom),
    MicroBlossomConfig,
    "Micro Blossom heterogeneous decoder with round-wise fusion (stream mode)",
    capabilities=DecoderCapabilities(
        native_streaming=True, timing_model=True, exact=True
    ),
)
register_decoder(
    "micro-blossom-batch",
    functools.partial(erasure_aware, _build_micro_blossom),
    MicroBlossomConfig,
    "Micro Blossom decoding all measurement rounds at once (batch mode)",
    default_config=MicroBlossomConfig(stream=False),
    # Deliberately not marked native_streaming: this entry exists to measure
    # the batch baseline, so the stream factory replays it through the
    # SlidingWindowAdapter instead of fusing rounds.
    capabilities=DecoderCapabilities(timing_model=True, exact=True),
)
register_decoder(
    "parity-blossom",
    functools.partial(erasure_aware, _build_parity_blossom),
    ParityBlossomConfig,
    "Parity Blossom software MWPM baseline (sequential CPU phases)",
    capabilities=DecoderCapabilities(timing_model=True, exact=True),
)
register_decoder(
    "union-find",
    functools.partial(erasure_aware, _build_union_find),
    UnionFindConfig,
    "Weighted-growth Union-Find decoder (Helios-class approximation)",
    capabilities=DecoderCapabilities(timing_model=True),
)
register_decoder(
    "reference",
    functools.partial(erasure_aware, _build_reference),
    ReferenceConfig,
    "Reference exact MWPM decoder on the dense syndrome graph",
    capabilities=DecoderCapabilities(exact=True),
)


def _build_lut(graph: DecodingGraph, config: DecoderConfig, fallback: str):
    from ..lut.decoder import LUTDecoder

    return LUTDecoder(graph, fallback, **config.to_kwargs())


def _register_lut_family() -> None:
    """Register ``lut+<fallback>`` for every base backend (see :mod:`repro.lut`).

    The wrapper mirrors the fallback's capability flags — a LUT miss is the
    fallback path unchanged, so ``lut+X`` streams natively, batch-decodes and
    is exact exactly when ``X`` is — except ``timing_model``: the published
    latency models are keyed by base decoder name (paper hardware), not by
    the software lookup layer.
    """
    for base in tuple(_REGISTRY):
        caps = _REGISTRY[base].capabilities
        register_decoder(
            f"lut+{base}",
            # functools.partial (not a closure) keeps the factory picklable
            # for the evaluation engine's process-pool workers.
            functools.partial(_build_lut, fallback=base),
            LUTConfig,
            f"Table-lookup pre-decoder over '{base}' "
            "(exact LUT hits, bit-identical fallback on misses)",
            capabilities=DecoderCapabilities(
                native_streaming=caps.native_streaming,
                timing_model=False,
                batch_decode=caps.batch_decode,
                exact=caps.exact,
                lut_predecode=True,
            ),
        )


_register_lut_family()
