"""Unified decoder API: protocol, registry, sessions and batch decoding.

This package is the single entry point to every decoder backend:

* :class:`~repro.api.protocol.Decoder` — the typed contract every backend
  implements (``decode`` / ``decode_to_correction`` / ``decode_detailed``);
* :class:`~repro.api.outcome.DecodeOutcome` — the shared outcome base class;
* the registry (:func:`register_decoder`, :func:`get_decoder`,
  :func:`available_decoders`) with per-decoder
  :class:`~repro.api.config.DecoderConfig` dataclasses;
* :class:`~repro.api.session.DecoderSession` — builds the accelerator/engine
  state once and reuses it shot after shot;
* :func:`~repro.api.batch.decode_batch` — aggregate batch decoding with
  optional multiprocessing fan-out.

Quickstart::

    from repro.api import DecoderSession, MicroBlossomConfig
    session = DecoderSession(graph, "micro-blossom", MicroBlossomConfig())
    outcome = session.decode_detailed(syndrome)
    batch = session.decode_batch(syndromes, workers=4)
"""

# NOTE: ``.outcome`` must be imported before any module that (transitively)
# imports the decoder packages, because those packages import
# ``repro.api.outcome`` themselves.
from .hashing import canonical_json, content_hash, stable_seed
from .outcome import DecodeOutcome
from .protocol import Decoder, StreamingDecoder
from .config import (
    DecoderConfig,
    LUTConfig,
    MicroBlossomConfig,
    ParityBlossomConfig,
    ReferenceConfig,
    UnionFindConfig,
)
from .registry import (
    DecoderCapabilities,
    DecoderSpec,
    UnknownDecoderError,
    available_decoders,
    decoder_capabilities,
    decoder_spec,
    get_decoder,
    register_decoder,
    unregister_decoder,
)
from .session import DecoderSession
from .batch import BatchOutcome, decode_batch

__all__ = [
    "canonical_json",
    "content_hash",
    "stable_seed",
    "DecodeOutcome",
    "Decoder",
    "StreamingDecoder",
    "DecoderCapabilities",
    "decoder_capabilities",
    "DecoderConfig",
    "LUTConfig",
    "MicroBlossomConfig",
    "ParityBlossomConfig",
    "ReferenceConfig",
    "UnionFindConfig",
    "DecoderSpec",
    "UnknownDecoderError",
    "available_decoders",
    "decoder_spec",
    "get_decoder",
    "register_decoder",
    "unregister_decoder",
    "DecoderSession",
    "BatchOutcome",
    "decode_batch",
]
