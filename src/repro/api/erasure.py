"""Erasure-aware decoding: heralded erasures as zero-weight graph variants.

A heralded erasure is a *located* error: the hardware flags an edge whose
error happened with probability 1/2, so the edge's log-likelihood weight is
0 and any matching may use it for free.  Decoders themselves stay oblivious —
:func:`erasure_aware` wraps every built-in registry factory and routes each
syndrome to a decoder built on the matching
:meth:`repro.graphs.DecodingGraph.with_erasures` variant:

* graphs whose noise model has no erasure component (or no recorded noise
  model at all) get the raw backend — zero overhead, byte-identical
  behavior to earlier releases;
* on erasure graphs, syndromes with empty ``erasures`` use the base decoder,
  and erased syndromes use a per-erasure-set variant decoder from a small
  LRU (erasure sets repeat heavily at realistic rates — most shots erase
  nothing or one edge).

Streaming: a stream opened with no erasures delegates straight to the (native)
backend; a stream with erasures buffers its rounds and batch-decodes the full
instance on the variant at :meth:`ErasureAwareDecoder.finalize` — deferred
exactly like the growing-window :class:`repro.stream.SlidingWindowAdapter`,
so streamed outcomes stay identical to batch outcomes.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome
from .config import DecoderConfig
from .outcome import DecodeOutcome

#: Variant decoders kept alive per wrapped decoder (LRU).  Erasure patterns
#: at realistic rates are heavily repeated (mostly empty or single-edge), so
#: a small cache captures nearly all reuse without unbounded growth.
VARIANT_CACHE_SIZE = 16


def erasure_aware(
    factory: Callable[[DecodingGraph, DecoderConfig], object],
    graph: DecodingGraph,
    config: DecoderConfig,
):
    """Registry-factory wrapper adding erasure support to a backend.

    Applied to the built-in factories as ``functools.partial(erasure_aware,
    factory)`` (module-level callables, so registry entries stay picklable
    for process-pool workers).  Returns the raw backend unless the graph's
    recorded noise model actually produces erasures.
    """
    model = graph.noise_model
    if model is None or model.erasure <= 0.0:
        return factory(graph, config)
    return ErasureAwareDecoder(factory, graph, config)


@dataclass
class _BufferedStream:
    """Rounds of an erased stream, held until the deferred finalize decode."""

    erasures: tuple[int, ...]
    rounds: list[tuple[int, ...]] = field(default_factory=list)


class ErasureAwareDecoder:
    """Route syndromes to per-erasure-set variant decoders.

    Satisfies :class:`repro.api.Decoder` (and, when the wrapped backend
    does, :class:`repro.api.StreamingDecoder`); every other attribute
    delegates to the base decoder built on the unerased graph.
    """

    def __init__(
        self,
        factory: Callable[[DecodingGraph, DecoderConfig], object],
        graph: DecodingGraph,
        config: DecoderConfig,
    ) -> None:
        self._factory = factory
        self.graph = graph
        self._config = config
        self._base = factory(graph, config)
        self._variants: OrderedDict[tuple[int, ...], object] = OrderedDict()
        self._buffered: _BufferedStream | None = None

    @property
    def name(self) -> str:
        return self._base.name

    def _decoder_for(self, erasures: tuple[int, ...]):
        """The decoder serving one erasure set (LRU-cached variants)."""
        if not erasures:
            return self._base
        cached = self._variants.get(erasures)
        if cached is None:
            cached = self._factory(self.graph.with_erasures(erasures), self._config)
            self._variants[erasures] = cached
            while len(self._variants) > VARIANT_CACHE_SIZE:
                self._variants.popitem(last=False)
        else:
            self._variants.move_to_end(erasures)
        return cached

    # ------------------------------------------------------------------
    # Decoder protocol
    # ------------------------------------------------------------------
    def decode(self, syndrome: Syndrome) -> MatchingResult:
        return self._decoder_for(syndrome.erasures).decode(syndrome)

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        return self._decoder_for(syndrome.erasures).decode_to_correction(syndrome)

    def decode_detailed(self, syndrome: Syndrome) -> DecodeOutcome:
        return self._decoder_for(syndrome.erasures).decode_detailed(syndrome)

    # ------------------------------------------------------------------
    # StreamingDecoder protocol (meaningful when the base streams natively)
    # ------------------------------------------------------------------
    def begin(
        self,
        graph: DecodingGraph | None = None,
        rounds_hint: int | None = None,
        erasures: Iterable[int] = (),
    ) -> None:
        """Open a stream; erased streams buffer for a deferred batch decode."""
        if graph is not None and graph is not self.graph:
            raise ValueError("streaming decoder was built for a different graph")
        erasures = tuple(sorted(set(int(e) for e in erasures)))
        if not erasures:
            self._buffered = None
            self._base.begin(graph, rounds_hint)
            return
        if rounds_hint is not None and rounds_hint > self.graph.num_layers:
            raise ValueError(
                f"rounds_hint {rounds_hint} exceeds the graph's "
                f"{self.graph.num_layers} measurement rounds"
            )
        self._buffered = _BufferedStream(erasures=erasures)

    def push_round(self, defects: Iterable[int]) -> Counter:
        stream = self._buffered
        if stream is None:
            return self._base.push_round(defects)
        layer = len(stream.rounds)
        if layer >= self.graph.num_layers:
            raise ValueError(
                f"stream already received all {self.graph.num_layers} rounds"
            )
        defects = tuple(defects)
        for defect in defects:
            if self.graph.vertices[defect].layer != layer:
                raise ValueError(
                    f"defect {defect} belongs to round "
                    f"{self.graph.vertices[defect].layer}, not round {layer}"
                )
        stream.rounds.append(defects)
        # All decoding work is deferred to finalize (the variant graph is
        # only worth building once the full instance is visible), so pushes
        # are free — mirroring the growing-window adapter's accounting.
        return Counter()

    def finalize(self) -> DecodeOutcome:
        stream = self._buffered
        if stream is None:
            return self._base.finalize()
        self._buffered = None
        defects = tuple(sorted(d for rounds in stream.rounds for d in rounds))
        return self._decoder_for(stream.erasures).decode_detailed(
            Syndrome(defects=defects, erasures=stream.erasures)
        )

    def __getattr__(self, item: str):
        base = self.__dict__.get("_base")
        if base is None:  # during __init__, before _base exists
            raise AttributeError(item)
        return getattr(base, item)
