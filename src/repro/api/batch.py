"""Batch decoding: many syndromes through one decoder, optionally in parallel.

:func:`decode_batch` drives a whole list of syndromes through a registered
decoder and aggregates the outcomes into a :class:`BatchOutcome` — the
matchings, the summed operation counters, and the per-shot counters consumed
by the latency models.  With ``workers > 1`` the syndromes are fanned out over
a process pool; each worker rebuilds the decoder once from ``(name, config)``
and then reuses its engines across its whole chunk, so results are
bit-identical to the sequential loop while the construction cost is paid once
per worker instead of once per shot.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome
from .config import DecoderConfig
from .outcome import DecodeOutcome
from .registry import decoder_spec


@dataclass
class BatchOutcome:
    """Aggregate result of decoding a batch of syndromes."""

    outcomes: list[DecodeOutcome] = field(default_factory=list)
    #: Sum of every outcome's operation counters.
    counters: Counter = field(default_factory=Counter)

    @property
    def num_shots(self) -> int:
        return len(self.outcomes)

    @property
    def results(self) -> list[MatchingResult | None]:
        """Per-shot matchings (``None`` for approximate decoders)."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def weights(self) -> list[int]:
        """Per-shot matching weights."""
        return [outcome.weight for outcome in self.outcomes]

    @property
    def total_defects(self) -> int:
        return sum(outcome.defect_count for outcome in self.outcomes)

    def latency_counters(self) -> list[Counter]:
        """Per-shot counters in the form the latency models consume.

        Stream-mode Micro Blossom outcomes contribute their post-final-round
        counters (the work that determines decoding latency, paper §6); all
        other outcomes contribute their full counters.
        """
        per_shot: list[Counter] = []
        for outcome in self.outcomes:
            if getattr(outcome, "stream", False):
                per_shot.append(getattr(outcome, "post_final_round_counters"))
            else:
                per_shot.append(outcome.counters)
        return per_shot

    @classmethod
    def from_outcomes(cls, outcomes: Sequence[DecodeOutcome]) -> "BatchOutcome":
        counters: Counter = Counter()
        for outcome in outcomes:
            counters.update(outcome.counters)
        return cls(outcomes=list(outcomes), counters=counters)


def _decode_chunk(
    graph: DecodingGraph,
    factory,
    config: DecoderConfig,
    syndromes: Sequence[Syndrome],
) -> list[DecodeOutcome]:
    """Worker: build the decoder once, decode a contiguous chunk with it.

    The parent ships the resolved registry factory rather than the decoder
    name so that runtime-registered decoders also work when the
    multiprocessing start method is ``spawn``/``forkserver`` (a fresh
    interpreter only knows the import-time built-ins).
    """
    decoder = factory(graph, config)
    return [decoder.decode_detailed(syndrome) for syndrome in syndromes]


def chunk_evenly(syndromes: Sequence[Syndrome], pieces: int) -> list[list[Syndrome]]:
    """Split into at most ``pieces`` contiguous, near-equal chunks.

    Order-preserving: concatenating the chunks reproduces the input.  Shared
    by :func:`decode_batch` and the Monte-Carlo engine's worker fan-out.

    >>> chunk_evenly([1, 2, 3, 4, 5], 2)
    [[1, 2, 3], [4, 5]]
    >>> chunk_evenly([1, 2], 8)
    [[1], [2]]
    """
    pieces = max(1, min(pieces, len(syndromes)))
    size, remainder = divmod(len(syndromes), pieces)
    chunks: list[list[Syndrome]] = []
    start = 0
    for index in range(pieces):
        stop = start + size + (1 if index < remainder else 0)
        chunks.append(list(syndromes[start:stop]))
        start = stop
    return chunks


def decode_batch(
    graph: DecodingGraph,
    name: str,
    syndromes: Sequence[Syndrome],
    config: DecoderConfig | None = None,
    workers: int = 1,
) -> BatchOutcome:
    """Decode ``syndromes`` with the registered decoder ``name``.

    ``workers > 1`` fans the batch out over a process pool; outcome order
    always matches the input order and equals the sequential result exactly.

    >>> from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, circuit_level_noise(0.01))
    >>> syndromes = SyndromeSampler(graph, seed=2).sample_batch(4)
    >>> batch = decode_batch(graph, "union-find", syndromes)
    >>> batch.num_shots, len(batch.weights)
    (4, 4)
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    spec = decoder_spec(name)
    if config is None:
        config = spec.make_config()
    elif not isinstance(config, spec.config_cls):
        raise TypeError(
            f"decoder {name!r} expects a {spec.config_cls.__name__}, "
            f"got {type(config).__name__}"
        )
    if not syndromes:
        return BatchOutcome()
    if workers == 1 or len(syndromes) == 1:
        outcomes = _decode_chunk(graph, spec.factory, config, syndromes)
        return BatchOutcome.from_outcomes(outcomes)
    chunks = chunk_evenly(syndromes, workers)
    outcomes: list[DecodeOutcome] = []
    with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
        futures = [
            pool.submit(_decode_chunk, graph, spec.factory, config, chunk)
            for chunk in chunks
        ]
        for future in futures:
            outcomes.extend(future.result())
    return BatchOutcome.from_outcomes(outcomes)
