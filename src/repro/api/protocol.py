"""The typed decoder contract implemented by every backend.

The :class:`Decoder` protocol is the single surface the CLI, the Monte-Carlo
harness, the batch API and the examples program against.  All four built-in
backends (``micro-blossom``, ``parity-blossom``, ``union-find``,
``reference``) satisfy it structurally — no inheritance required — and
user-registered decoders only need to provide the same three methods.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome
from .outcome import DecodeOutcome


@runtime_checkable
class Decoder(Protocol):
    """What every decoder of this package exposes.

    ``decode`` returns the defect-level matching, ``decode_to_correction``
    the physical correction (decoding-graph edge indices), and
    ``decode_detailed`` the full :class:`~repro.api.outcome.DecodeOutcome`
    with the operation counts consumed by the latency models.
    """

    #: Stable registry-style identifier of the backend.
    name: str
    #: The decoding graph the decoder was built for.
    graph: DecodingGraph

    def decode(self, syndrome: Syndrome) -> MatchingResult:
        """Return the defect-level matching for one syndrome."""
        ...

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        """Return the correction as a set of decoding-graph edge indices."""
        ...

    def decode_detailed(self, syndrome: Syndrome) -> DecodeOutcome:
        """Return the matching/correction plus all recorded statistics."""
        ...
