"""The typed decoder contract implemented by every backend.

The :class:`Decoder` protocol is the single surface the CLI, the Monte-Carlo
harness, the batch API and the examples program against.  All four built-in
backends (``micro-blossom``, ``parity-blossom``, ``union-find``,
``reference``) satisfy it structurally — no inheritance required — and
user-registered decoders only need to provide the same three methods.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Protocol, runtime_checkable

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome
from .outcome import DecodeOutcome


@runtime_checkable
class Decoder(Protocol):
    """What every decoder of this package exposes.

    ``decode`` returns the defect-level matching, ``decode_to_correction``
    the physical correction (decoding-graph edge indices), and
    ``decode_detailed`` the full :class:`~repro.api.outcome.DecodeOutcome`
    with the operation counts consumed by the latency models.

    The protocol is ``runtime_checkable``:

    >>> from repro.api import get_decoder
    >>> from repro.graphs import circuit_level_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, circuit_level_noise(0.01))
    >>> isinstance(get_decoder("union-find", graph), Decoder)
    True
    """

    #: Stable registry-style identifier of the backend.
    name: str
    #: The decoding graph the decoder was built for.
    graph: DecodingGraph

    def decode(self, syndrome: Syndrome) -> MatchingResult:
        """Return the defect-level matching for one syndrome."""
        ...

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        """Return the correction as a set of decoding-graph edge indices."""
        ...

    def decode_detailed(self, syndrome: Syndrome) -> DecodeOutcome:
        """Return the matching/correction plus all recorded statistics."""
        ...


@runtime_checkable
class StreamingDecoder(Protocol):
    """The incremental round-push protocol (paper §6: round-wise fusion).

    A streaming decoder consumes one measurement round at a time instead of a
    fully-materialised :class:`~repro.graphs.syndrome.Syndrome`:

    1. :meth:`begin` opens a stream (``rounds_hint`` lets backends pre-size
       state; passing a ``graph`` asserts it is the one the decoder was built
       for);
    2. :meth:`push_round` hands over the defects of the next measurement
       round — the round is decoded *as it arrives*, and the returned
       operation-count delta is what the round cost (the
       :class:`~repro.evaluation.StreamEngine` feeds it to the timing models
       for backlog accounting);
    3. :meth:`finalize` closes the stream and returns the
       :class:`~repro.api.outcome.DecodeOutcome` of the whole instance, with
       a matching weight and correction identical to batch-decoding the same
       syndrome on the same backend.

    ``micro-blossom`` implements the protocol natively (constant work left
    after the final round); every batch :class:`Decoder` can be lifted onto it
    with :class:`repro.stream.SlidingWindowAdapter`.  The registry records
    which backends stream natively
    (:attr:`~repro.api.registry.DecoderCapabilities.native_streaming`).
    """

    #: Stable registry-style identifier of the backend.
    name: str
    #: The decoding graph the decoder streams over.
    graph: DecodingGraph

    def begin(
        self,
        graph: DecodingGraph | None = None,
        rounds_hint: int | None = None,
        erasures: Iterable[int] = (),
    ) -> None:
        """Open a new stream (discarding any stream still in flight).

        ``erasures`` carries the shot's heralded erased edges (known when
        the stream opens: erasure heralds arrive with the measurement
        hardware's leakage flags, before decoding starts).  Backends without
        erasure support raise ``ValueError`` on a non-empty set; the
        erasure-aware registry wrapper (:mod:`repro.api.erasure`) and the
        :class:`repro.stream.SlidingWindowAdapter` honor it.
        """
        ...

    def push_round(self, defects: Iterable[int]) -> Counter:
        """Feed the defects of the next measurement round; return its cost."""
        ...

    def finalize(self) -> DecodeOutcome:
        """Close the stream and return the outcome of the whole instance."""
        ...
