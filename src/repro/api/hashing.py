"""Canonical content hashing shared across the package.

Three layers need the same guarantees from a hash: the sweep layer keys its
on-disk result cache by a spec's content (:meth:`repro.sweeps.SweepSpec.spec_hash`)
and derives per-point Monte-Carlo seeds from parameter keys, the decode
service (:mod:`repro.service`) keys its LRU of reusable sessions by
``(code, noise, decoder, config-hash)``, and the benchmark emitters fingerprint
their traces.  All of them want

* **stability** — the same payload hashes identically across processes,
  Python versions and machines (unlike the builtin ``hash``);
* **canonical form** — logically equal payloads serialize identically
  (sorted keys, no whitespace), so field order never changes a hash;
* **short, printable digests** — hex prefixes that fit in cache keys,
  filenames and log lines.

This module is the single implementation.  It deliberately depends only on
the standard library so that every layer — including :mod:`repro.api.config`,
which must import nothing from the decoder packages — can use it freely.

Examples:
    >>> from repro.api.hashing import canonical_json, content_hash, stable_seed
    >>> canonical_json({"b": 2, "a": (1, 2)})
    '{"a":[1,2],"b":2}'
    >>> content_hash({"a": (1, 2), "b": 2}) == content_hash({"b": 2, "a": [1, 2]})
    True
    >>> len(content_hash({"x": 1}))
    16
    >>> 0 <= stable_seed(7, "d=3/decoder=union-find") < 2**63
    True
"""

from __future__ import annotations

import hashlib
import json

#: Default number of hex digits of a truncated content hash (64 bits — ample
#: for cache keys while staying readable in logs and filenames).
DEFAULT_HASH_DIGITS = 16


def canonical_json(payload) -> str:
    """Serialize ``payload`` to its canonical JSON form.

    Keys are sorted and separators minimal, so two logically equal payloads
    (tuples vs lists, any dict insertion order) produce identical strings.

    >>> canonical_json({"z": 1, "a": True})
    '{"a":true,"z":1}'
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload, digits: int = DEFAULT_HASH_DIGITS) -> str:
    """Hex SHA-256 of the canonical JSON form of ``payload``, truncated.

    ``digits`` bounds the returned prefix (``<= 64``); the full digest is
    returned when ``digits`` is 64.

    >>> content_hash({"shots": 100, "seed": 0})
    'ef31070b2e8df604'
    >>> content_hash({"shots": 100, "seed": 0}, digits=64)[:16]
    'ef31070b2e8df604'
    """
    if not 1 <= digits <= 64:
        raise ValueError("digits must lie in [1, 64]")
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:digits]


def stable_seed(base_seed: int, key: str) -> int:
    """Derive a 63-bit RNG seed from a base seed and a parameter key.

    The derivation is ``SHA-256(f"{base_seed}:{key}")`` truncated to 63 bits —
    stable across processes and Python versions, and collision-free for all
    practical purposes, so two distinct parameter keys never share an RNG
    stream.  :meth:`repro.sweeps.SweepSpec.expand` seeds every sweep point
    this way; the service's trace generator derives per-scenario sampler
    seeds from the same primitive.

    >>> stable_seed(0, "d=3") == stable_seed(0, "d=3")
    True
    >>> stable_seed(0, "d=3") != stable_seed(0, "d=5")
    True
    """
    digest = hashlib.sha256(f"{int(base_seed)}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1
