"""Reusable decoding sessions.

A :class:`DecoderSession` binds a decoding graph to one registered decoder and
keeps the expensive per-graph state — the accelerator model, the primal
module, the dual engine — alive across shots.  The Monte-Carlo harness used to
rebuild ``MicroBlossomAccelerator`` + ``PrimalModule`` for every single
syndrome; a session builds them once and ``reset()``s them between shots,
which is where the hot-path win of the unified API comes from (see
``benchmarks/bench_batch_throughput.py``).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome
from .batch import BatchOutcome, decode_batch
from .config import DecoderConfig
from .outcome import DecodeOutcome
from .registry import decoder_spec, get_decoder


class DecoderSession:
    """One decoder bound to one graph, reused shot after shot.

    The session exposes the full :class:`~repro.api.protocol.Decoder` surface
    (``decode`` / ``decode_to_correction`` / ``decode_detailed``) plus batch
    decoding and aggregate statistics (``total_counters`` aggregates over the
    ``decode_detailed``/``decode_to_correction``/``decode_batch`` paths).
    ``reset()`` returns the session to its freshly-built state; decoding
    after a reset yields matchings identical to a brand-new decoder.

    >>> from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, circuit_level_noise(0.01))
    >>> session = DecoderSession(graph, "micro-blossom")
    >>> outcome = session.decode_detailed(SyndromeSampler(graph, seed=1).sample())
    >>> outcome.is_exact, session.shots
    (True, 1)
    >>> session.reset()
    >>> session.shots
    0
    """

    def __init__(
        self,
        graph: DecodingGraph,
        name: str = "micro-blossom",
        config: DecoderConfig | None = None,
    ) -> None:
        spec = decoder_spec(name)
        self.graph = graph
        self.name = name
        self.config = config if config is not None else spec.make_config()
        self.decoder = get_decoder(name, graph, self.config)
        self.shots = 0
        self.total_counters: Counter = Counter()

    # ------------------------------------------------------------------
    # Decoder protocol
    # ------------------------------------------------------------------
    def decode(self, syndrome: Syndrome) -> MatchingResult:
        # Delegate to the backend: correction-only decoders (Union-Find)
        # derive their matching in ``decode`` itself, not in
        # ``decode_detailed``, so taking ``decode_detailed().result`` here
        # would return None for them.
        result = self.decoder.decode(syndrome)
        self.shots += 1
        return result

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        outcome = self.decode_detailed(syndrome)
        return outcome.correction_edges(self.graph)

    def decode_detailed(self, syndrome: Syndrome) -> DecodeOutcome:
        outcome = self.decoder.decode_detailed(syndrome)
        self.shots += 1
        self.total_counters.update(outcome.counters)
        return outcome

    # ------------------------------------------------------------------
    # session management
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Discard all cached per-shot state and aggregate statistics."""
        reset = getattr(self.decoder, "reset", None)
        if callable(reset):
            reset()
        self.shots = 0
        self.total_counters = Counter()

    def decode_batch(
        self, syndromes: Sequence[Syndrome], workers: int = 1
    ) -> BatchOutcome:
        """Decode a batch of syndromes (see :func:`repro.api.batch.decode_batch`).

        With ``workers == 1`` the session's own decoder is reused; with more
        workers the batch is fanned out to processes that rebuild the decoder
        from this session's ``(name, config)``.
        """
        if workers == 1:
            outcomes = [self.decode_detailed(syndrome) for syndrome in syndromes]
            return BatchOutcome.from_outcomes(outcomes)
        batch = decode_batch(
            self.graph, self.name, syndromes, config=self.config, workers=workers
        )
        self.shots += batch.num_shots
        self.total_counters.update(batch.counters)
        return batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecoderSession(name={self.name!r}, shots={self.shots}, "
            f"graph={self.graph!r})"
        )
