"""FPGA resource model of the Micro Blossom accelerator (Table 4, §8.4).

The accelerator instantiates one vertex PU per decoding-graph vertex and one
edge PU per edge; the paper reports per-PU memory, total FPGA memory and LUT
usage, and the maximum clock frequency achieved on a Xilinx VMK180 for code
distances 3 through 15.  This module provides:

* the paper's published Table 4 values (used as ground truth in benchmarks),
* an analytical model that derives the same quantities from the compact PU
  state of Table 2 and an O(d³ polylog d) LUT scaling law fitted to the
  published points, so that arbitrary distances (e.g. the d = 31 projection on
  a VP1902 discussed in §8.4) can be estimated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..latency.model import PAPER_CLOCK_FREQUENCY_MHZ, accelerator_clock_frequency_hz

#: Published Table 4, keyed by code distance.
PAPER_TABLE_4: dict[int, dict[str, float]] = {
    3: {"V": 24, "E": 39, "cpu_mem_bytes": 1_400, "vpu_bits": 19, "epu_bits": 4,
        "fpga_mem_kbits": 0.6, "luts": 4_000, "freq_mhz": 170},
    5: {"V": 90, "E": 245, "cpu_mem_bytes": 5_400, "vpu_bits": 24, "epu_bits": 4,
        "fpga_mem_kbits": 3.1, "luts": 21_000, "freq_mhz": 141},
    7: {"V": 224, "E": 763, "cpu_mem_bytes": 13_000, "vpu_bits": 27, "epu_bits": 4,
        "fpga_mem_kbits": 9.1, "luts": 66_000, "freq_mhz": 107},
    9: {"V": 450, "E": 1_737, "cpu_mem_bytes": 27_000, "vpu_bits": 29, "epu_bits": 4,
        "fpga_mem_kbits": 20, "luts": 156_000, "freq_mhz": 93},
    11: {"V": 792, "E": 3_311, "cpu_mem_bytes": 48_000, "vpu_bits": 32, "epu_bits": 4,
         "fpga_mem_kbits": 39, "luts": 314_000, "freq_mhz": 77},
    13: {"V": 1_274, "E": 5_629, "cpu_mem_bytes": 76_000, "vpu_bits": 34, "epu_bits": 4,
         "fpga_mem_kbits": 66, "luts": 553_000, "freq_mhz": 62},
    15: {"V": 1_920, "E": 8_835, "cpu_mem_bytes": 115_000, "vpu_bits": 34, "epu_bits": 4,
         "fpga_mem_kbits": 101, "luts": 867_000, "freq_mhz": 43},
}

#: LUT capacity of the boards discussed in §8.4.
VMK180_LUTS = 900_000
VP1902_LUTS = 8_500_000

#: Quantised weight width used by the prototype (§8.1): 4-bit edge weights.
EPU_WEIGHT_BITS = 4


def paper_vertex_count(distance: int) -> int:
    """|V| of the paper's circuit-level decoding graph: d (d+1)² / 2."""
    if distance < 3 or distance % 2 == 0:
        raise ValueError("code distance must be an odd integer >= 3")
    return distance * (distance + 1) ** 2 // 2


def paper_edge_count(distance: int) -> int:
    """|E| of the paper's circuit-level decoding graph.

    Table 4 lists the exact values for d = 3..15; other distances use a cubic
    fit (the decoding graph has bounded degree, so |E| = Θ(d³)).
    """
    if distance in PAPER_TABLE_4:
        return int(PAPER_TABLE_4[distance]["E"])
    # Least-squares cubic through the published points (computed once).
    distances = sorted(PAPER_TABLE_4)
    ys = [PAPER_TABLE_4[d]["E"] for d in distances]
    # Solve for a*d^3 + b*d^2 + c*d + e with a tiny normal-equation solve.
    import numpy as np

    matrix = np.vander(np.array(distances, dtype=float), 4)
    coefficients, *_ = np.linalg.lstsq(matrix, np.array(ys, dtype=float), rcond=None)
    value = float(np.polyval(coefficients, distance))
    return max(1, int(round(value)))


@dataclass(frozen=True)
class ResourceEstimate:
    """Resource usage of the accelerator for one code distance."""

    distance: int
    num_vertices: int
    num_edges: int
    vpu_state_bits: int
    epu_state_bits: int
    cpu_memory_bytes: int
    fpga_memory_bits: int
    luts: int
    clock_frequency_mhz: float

    @property
    def fpga_memory_kbits(self) -> float:
        return self.fpga_memory_bits / 1000.0

    def fits_on(self, available_luts: int) -> bool:
        return self.luts <= available_luts


def vpu_state_bits(num_vertices: int, distance: int | None = None) -> int:
    """Bits of the compact per-vertex state (Table 2, §4.3).

    The unique-Touch needs ``ceil(log2 |V|)`` bits, the unique-Node one more
    (blossom indices double the id space), the Residue enough bits for the
    largest cover radius (bounded by the graph diameter times the maximum
    4-bit weight), and the direction / is-defect / is-boundary flags 2 + 1 + 1
    bits.
    """
    index_bits = max(1, math.ceil(math.log2(max(num_vertices, 2))))
    node_bits = index_bits + 1
    if distance is None:
        distance = max(3, round((2 * num_vertices) ** (1.0 / 3.0)))
    max_radius = max(2, 3 * distance * (2 ** EPU_WEIGHT_BITS - 1))
    residue_bits = max(4, math.ceil(math.log2(max_radius)))
    direction_bits = 2
    flag_bits = 2
    return index_bits + node_bits + residue_bits + direction_bits + flag_bits


def _lut_scaling_coefficient() -> float:
    """Fit LUTs = c * |V| * log2(|V|) to the published Table 4 points."""
    numerator = 0.0
    denominator = 0.0
    for distance, row in PAPER_TABLE_4.items():
        x = row["V"] * math.log2(row["V"])
        numerator += x * row["luts"]
        denominator += x * x
    return numerator / denominator


_LUT_COEFFICIENT = _lut_scaling_coefficient()


def estimate_resources(
    distance: int,
    num_vertices: int | None = None,
    num_edges: int | None = None,
) -> ResourceEstimate:
    """Estimate Table 4 quantities for a code distance.

    By default the paper's decoding-graph sizes are used; passing explicit
    ``num_vertices`` / ``num_edges`` estimates resources for a custom graph
    (e.g. the graphs produced by :mod:`repro.graphs`).
    """
    vertices = paper_vertex_count(distance) if num_vertices is None else num_vertices
    edges = paper_edge_count(distance) if num_edges is None else num_edges
    vpu_bits = vpu_state_bits(vertices, distance)
    epu_bits = EPU_WEIGHT_BITS
    fpga_memory_bits = vertices * vpu_bits + edges * epu_bits
    luts = int(round(_LUT_COEFFICIENT * vertices * math.log2(max(vertices, 2))))
    cpu_memory_bytes = int(round(60 * vertices))
    frequency = accelerator_clock_frequency_hz(distance) / 1e6
    return ResourceEstimate(
        distance=distance,
        num_vertices=vertices,
        num_edges=edges,
        vpu_state_bits=vpu_bits,
        epu_state_bits=epu_bits,
        cpu_memory_bytes=cpu_memory_bytes,
        fpga_memory_bits=fpga_memory_bits,
        luts=luts,
        clock_frequency_mhz=frequency,
    )


def maximum_distance_for_luts(available_luts: int) -> int:
    """Largest odd code distance whose accelerator fits in ``available_luts``.

    Reproduces the §8.4 discussion: the VMK180 (900 k LUTs) supports up to
    d = 15 and the VP1902 (8.5 M LUTs) supports roughly d = 31.
    """
    distance = 3
    best = 0
    while distance <= 99:
        if estimate_resources(distance).luts <= available_luts:
            best = distance
        else:
            break
        distance += 2
    return best


def resource_table(distances: list[int] | None = None) -> list[ResourceEstimate]:
    """Regenerate Table 4 (optionally for a custom list of distances)."""
    if distances is None:
        distances = sorted(PAPER_TABLE_4)
    return [estimate_resources(d) for d in distances]


def paper_row(distance: int) -> dict[str, float] | None:
    """Published Table 4 row for comparison, if available."""
    return PAPER_TABLE_4.get(distance)


def minimum_frequency_for_sub_microsecond(distance: int) -> float:
    """Clock frequency (MHz) needed for sub-µs latency at a given distance.

    The paper states 68 MHz is required at d = 15 to keep up with the
    O(p²d² + 1) decoding time scaling (§8.4); the model scales that anchor
    with d² relative to d = 15.
    """
    anchor_distance = 15
    anchor_mhz = 68.0
    return anchor_mhz * (distance / anchor_distance) ** 2


# Re-export the measured clock table for convenience of the benchmarks.
CLOCK_TABLE_MHZ = dict(PAPER_CLOCK_FREQUENCY_MHZ)
