"""FPGA resource model (Table 4, §8.4)."""

from .estimate import (
    CLOCK_TABLE_MHZ,
    EPU_WEIGHT_BITS,
    PAPER_TABLE_4,
    VMK180_LUTS,
    VP1902_LUTS,
    ResourceEstimate,
    estimate_resources,
    maximum_distance_for_luts,
    minimum_frequency_for_sub_microsecond,
    paper_edge_count,
    paper_row,
    paper_vertex_count,
    resource_table,
    vpu_state_bits,
)

__all__ = [
    "CLOCK_TABLE_MHZ",
    "EPU_WEIGHT_BITS",
    "PAPER_TABLE_4",
    "VMK180_LUTS",
    "VP1902_LUTS",
    "ResourceEstimate",
    "estimate_resources",
    "maximum_distance_for_luts",
    "minimum_frequency_for_sub_microsecond",
    "paper_edge_count",
    "paper_row",
    "paper_vertex_count",
    "resource_table",
    "vpu_state_bits",
]
