"""Exhaustive minimum-weight perfect matching for small syndromes.

This solver enumerates matchings by dynamic programming over subsets of the
defect set, allowing each defect to be matched either to another defect or to
the boundary.  It is exponential in the number of defects and therefore only
used as an *independent oracle* in tests (typically up to ~14 defects), where
it cross-checks both the networkx-based reference decoder and the blossom-based
decoders of this package.
"""

from __future__ import annotations

from functools import lru_cache

from ..graphs.syndrome import BOUNDARY, MatchingResult
from .syndrome_graph import SyndromeGraph

#: Safety limit: 2^18 subsets with an O(n) inner loop is still instantaneous,
#: beyond that the caller should use a polynomial decoder instead.
MAX_BRUTE_FORCE_DEFECTS = 18


def brute_force_matching(syndrome_graph: SyndromeGraph) -> MatchingResult:
    """Solve MWPM exactly by subset dynamic programming.

    Returns a :class:`MatchingResult` with the optimal pairs and total weight.
    """
    defects = syndrome_graph.defects
    n = len(defects)
    if n > MAX_BRUTE_FORCE_DEFECTS:
        raise ValueError(
            f"brute force matcher limited to {MAX_BRUTE_FORCE_DEFECTS} defects, got {n}"
        )
    if n == 0:
        return MatchingResult(pairs=[], weight=0)

    boundary_cost = [syndrome_graph.boundary_distance[d] for d in defects]
    pair_cost = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            cost = syndrome_graph.distance(defects[i], defects[j])
            pair_cost[i][j] = cost
            pair_cost[j][i] = cost

    @lru_cache(maxsize=None)
    def solve(mask: int) -> int:
        if mask == 0:
            return 0
        lowest = (mask & -mask).bit_length() - 1
        rest = mask & ~(1 << lowest)
        best = boundary_cost[lowest] + solve(rest)
        remaining = rest
        while remaining:
            j = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            candidate = pair_cost[lowest][j] + solve(rest & ~(1 << j))
            if candidate < best:
                best = candidate
        return best

    # Reconstruct one optimal matching by re-walking the DP decisions.
    pairs: list[tuple[int, int]] = []
    boundary_vertices: dict[int, int] = {}
    mask = (1 << n) - 1
    while mask:
        lowest = (mask & -mask).bit_length() - 1
        rest = mask & ~(1 << lowest)
        total = solve(mask)
        if boundary_cost[lowest] + solve(rest) == total:
            pairs.append((defects[lowest], BOUNDARY))
            boundary_vertices[defects[lowest]] = syndrome_graph.boundary_vertex[
                defects[lowest]
            ]
            mask = rest
            continue
        chosen = None
        remaining = rest
        while remaining:
            j = (remaining & -remaining).bit_length() - 1
            remaining &= remaining - 1
            if pair_cost[lowest][j] + solve(rest & ~(1 << j)) == total:
                chosen = j
                break
        if chosen is None:  # pragma: no cover - defensive, DP is self-consistent
            raise RuntimeError("inconsistent dynamic program reconstruction")
        pairs.append((defects[lowest], defects[chosen]))
        mask = rest & ~(1 << chosen)

    weight = solve((1 << n) - 1)
    solve.cache_clear()
    return MatchingResult(pairs=pairs, boundary_vertices=boundary_vertices, weight=weight)
