"""Syndrome-graph construction.

Given a decoding graph and a syndrome (set of defect vertices), the *syndrome
graph* is the complete graph over the defect vertices whose edge weights are
shortest-path distances in the decoding graph, plus one "boundary" option per
defect (its distance to the nearest virtual vertex).  The classic MWPM decoder
(paper §2) solves a minimum-weight perfect matching on this graph; the
decoding-graph based decoders (Parity/Sparse/Micro Blossom) avoid building it
explicitly, but it remains the reference against which exactness is verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..graphs.decoding_graph import DecodingGraph


@dataclass
class SyndromeGraph:
    """Dense pairwise/boundary distances for a set of defect vertices."""

    graph: DecodingGraph
    defects: tuple[int, ...]
    pair_distance: dict[tuple[int, int], int] = field(default_factory=dict)
    boundary_distance: dict[int, int] = field(default_factory=dict)
    boundary_vertex: dict[int, int] = field(default_factory=dict)

    def distance(self, u: int, v: int) -> int:
        """Shortest decoding-graph distance between two defect vertices."""
        key = (min(u, v), max(u, v))
        return self.pair_distance[key]

    def matching_weight(
        self, pairs: Sequence[tuple[int, int]], boundary: int = -1
    ) -> int:
        """Total weight of a matching expressed as defect pairs.

        ``boundary`` is the sentinel value used for defects matched to the
        boundary (:data:`repro.graphs.syndrome.BOUNDARY`).
        """
        total = 0
        for u, v in pairs:
            if v == boundary:
                total += self.boundary_distance[u]
            else:
                total += self.distance(u, v)
        return total


def build_syndrome_graph(
    graph: DecodingGraph, defects: Sequence[int]
) -> SyndromeGraph:
    """Compute all pairwise and boundary distances for the given defects.

    Raises ``ValueError`` if any defect is a virtual vertex or if a defect
    cannot reach the boundary (decoding graphs built by this package always
    can).
    """
    defects = tuple(sorted(set(defects)))
    for defect in defects:
        if graph.is_virtual(defect):
            raise ValueError(f"defect {defect} is a virtual vertex")
    syndrome_graph = SyndromeGraph(graph=graph, defects=defects)
    for i, u in enumerate(defects):
        distances, _ = graph.shortest_distances(u)
        for v in defects[i + 1 :]:
            if distances[v] < 0:
                raise ValueError(f"defects {u} and {v} are disconnected")
            syndrome_graph.pair_distance[(u, v)] = distances[v]
        best_distance = -1
        best_vertex = -1
        for virtual in graph.virtual_vertices:
            dist = distances[virtual]
            if dist < 0:
                continue
            if best_distance < 0 or dist < best_distance:
                best_distance = dist
                best_vertex = virtual
        if best_distance < 0:
            raise ValueError(f"defect {u} cannot reach the boundary")
        syndrome_graph.boundary_distance[u] = best_distance
        syndrome_graph.boundary_vertex[u] = best_vertex
    return syndrome_graph
