"""Exact MWPM reference decoders on the dense syndrome graph."""

from .brute_force import MAX_BRUTE_FORCE_DEFECTS, brute_force_matching
from .reference import ReferenceDecoder
from .syndrome_graph import SyndromeGraph, build_syndrome_graph

__all__ = [
    "MAX_BRUTE_FORCE_DEFECTS",
    "brute_force_matching",
    "ReferenceDecoder",
    "SyndromeGraph",
    "build_syndrome_graph",
]
