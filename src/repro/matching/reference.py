"""Reference exact MWPM decoder on the syndrome graph.

This is the classical decoding pipeline (paper §2): build the syndrome graph
(complete graph over defects, boundary option per defect) and solve a
minimum-weight perfect matching with a general-purpose matching solver.  The
boundary is handled with the standard construction: each defect ``i`` gets a
private boundary copy ``b_i`` connected to it by its boundary distance, and all
boundary copies are pairwise connected with weight zero, so a perfect matching
always exists and unmatched boundary copies pair up for free.

The heavy lifting of the general matching is delegated to ``networkx`` (an
independent, well-tested implementation of the blossom algorithm), which makes
this decoder a trustworthy oracle for verifying the decoders implemented from
scratch in :mod:`repro.core` and :mod:`repro.parity`.  For very small
instances, :mod:`repro.matching.brute_force` provides a second, fully
independent oracle.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx

from ..api.outcome import DecodeOutcome
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import BOUNDARY, MatchingResult, Syndrome, correction_edges
from .syndrome_graph import SyndromeGraph, build_syndrome_graph


def _solve_dense(syndrome_graph: SyndromeGraph) -> MatchingResult:
    defects = syndrome_graph.defects
    n = len(defects)
    if n == 0:
        return MatchingResult(pairs=[], weight=0)
    graph = nx.Graph()
    for i, u in enumerate(defects):
        graph.add_node(("d", u))
        graph.add_node(("b", u))
        graph.add_edge(("d", u), ("b", u), weight=syndrome_graph.boundary_distance[u])
        for v in defects[i + 1 :]:
            graph.add_edge(("d", u), ("d", v), weight=syndrome_graph.distance(u, v))
    boundary_nodes = [("b", u) for u in defects]
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(boundary_nodes[i], boundary_nodes[j], weight=0)

    matching = nx.min_weight_matching(graph, weight="weight")

    pairs: list[tuple[int, int]] = []
    boundary_vertices: dict[int, int] = {}
    weight = 0
    for a, b in matching:
        kind_a, vertex_a = a
        kind_b, vertex_b = b
        if kind_a == "b" and kind_b == "b":
            continue
        if kind_a == "d" and kind_b == "d":
            pairs.append((vertex_a, vertex_b))
            weight += syndrome_graph.distance(vertex_a, vertex_b)
        else:
            defect = vertex_a if kind_a == "d" else vertex_b
            pairs.append((defect, BOUNDARY))
            boundary_vertices[defect] = syndrome_graph.boundary_vertex[defect]
            weight += syndrome_graph.boundary_distance[defect]
    result = MatchingResult(
        pairs=pairs, boundary_vertices=boundary_vertices, weight=weight
    )
    result.validate_perfect(defects)
    return result


class ReferenceDecoder:
    """Exact MWPM decoder via the dense syndrome graph.

    This decoder is accurate but quadratic in the number of defects (plus a
    general matching solve); it exists to verify exactness of the
    decoding-graph decoders and to provide a trusted accuracy baseline
    ("Sparse Blossom"-equivalent accuracy, since all exact MWPM decoders make
    the same predictions up to tie breaking).
    """

    name = "reference"

    def __init__(self, graph: DecodingGraph) -> None:
        self.graph = graph

    def decode(self, syndrome: Syndrome | Sequence[int]) -> MatchingResult:
        """Return an optimal matching of the syndrome's defects."""
        defects = (
            syndrome.defects if isinstance(syndrome, Syndrome) else tuple(syndrome)
        )
        syndrome_graph = build_syndrome_graph(self.graph, defects)
        return _solve_dense(syndrome_graph)

    def decode_to_correction(self, syndrome: Syndrome | Sequence[int]) -> set[int]:
        """Return the optimal correction as decoding-graph edge indices."""
        return correction_edges(self.graph, self.decode(syndrome))

    def decode_detailed(self, syndrome: Syndrome | Sequence[int]) -> DecodeOutcome:
        """Return the optimal matching wrapped in the shared outcome record.

        The reference decoder delegates to ``networkx`` and therefore has no
        operation counters; the outcome only carries the matching itself.
        """
        result = self.decode(syndrome)
        defects = (
            syndrome.defects if isinstance(syndrome, Syndrome) else tuple(syndrome)
        )
        return DecodeOutcome(result=result, defect_count=len(defects))

    def optimal_weight(self, syndrome: Syndrome | Sequence[int]) -> int:
        """Weight of an optimal matching (convenience for exactness tests)."""
        return self.decode(syndrome).weight
