"""Union-Find decoder (the accuracy/latency trade-off baseline).

Helios [25, 26] — the fastest hardware Union-Find decoder — is the main
non-MWPM comparison point of the paper's effective-accuracy evaluation
(Figure 11).  The Union-Find decoder approximates MWPM decoding: clusters grow
from every defect, merge when they touch, stop when every cluster has even
parity or reaches the code boundary, and a peeling pass inside each cluster
produces the correction.  It is faster than MWPM decoding but loses accuracy
(the paper quotes up to ~1.7x more logical errors at d = 13, p = 0.1% for
Helios-class decoders, and ~5x for plain weighted-growth Union-Find at d = 21).

This implementation is the standard weighted-growth variant (Delfosse &
Nickerson) operating directly on the decoding graph, so it shares the graph
substrate and evaluation harness with the MWPM decoders.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..api.outcome import DecodeOutcome
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import MatchingResult, Syndrome, matching_from_correction

#: Safety bound on growth rounds (each round saturates at least one edge).
_MAX_GROWTH_ROUNDS_FACTOR = 4


@dataclass
class UnionFindOutcome(DecodeOutcome):
    """Correction produced by the Union-Find decoder plus work statistics."""

    growth_rounds: int = 0
    merges: int = 0


class _Clusters:
    """Union-find over decoding-graph vertices with parity/boundary tracking."""

    def __init__(self, graph: DecodingGraph, defects: set[int]) -> None:
        self.graph = graph
        self.parent = list(range(graph.num_vertices))
        self.rank = [0] * graph.num_vertices
        self.parity = [1 if v in defects else 0 for v in range(graph.num_vertices)]
        self.touches_boundary = [graph.is_virtual(v) for v in range(graph.num_vertices)]
        self.in_cluster = [v in defects for v in range(graph.num_vertices)]

    def find(self, vertex: int) -> int:
        root = vertex
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[vertex] != root:
            self.parent[vertex], vertex = root, self.parent[vertex]
        return root

    def union(self, u: int, v: int) -> bool:
        root_u, root_v = self.find(u), self.find(v)
        if root_u == root_v:
            return False
        if self.rank[root_u] < self.rank[root_v]:
            root_u, root_v = root_v, root_u
        self.parent[root_v] = root_u
        if self.rank[root_u] == self.rank[root_v]:
            self.rank[root_u] += 1
        self.parity[root_u] ^= self.parity[root_v]
        self.touches_boundary[root_u] = (
            self.touches_boundary[root_u] or self.touches_boundary[root_v]
        )
        return True

    def is_active(self, root: int) -> bool:
        """A cluster keeps growing while it has odd parity and no boundary."""
        return self.parity[root] == 1 and not self.touches_boundary[root]


class UnionFindDecoder:
    """Weighted-growth Union-Find decoder with peeling."""

    name = "union-find"

    def __init__(self, graph: DecodingGraph) -> None:
        self.graph = graph

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, syndrome: Syndrome) -> MatchingResult:
        """Pair up the defects along the correction's connected components.

        Union-Find is not a matching decoder, so the pairing is derived from
        the peeled correction: within each connected component of correction
        edges the defect endpoints are paired with each other, and a leftover
        defect is paired with the component's boundary vertex.  The weight is
        the total weight of the correction edges (not a shortest-path
        matching weight — the decoder is approximate by design).
        """
        outcome = self.decode_detailed(syndrome)
        return matching_from_correction(self.graph, syndrome.defects, outcome.correction)

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        return self.decode_detailed(syndrome).correction

    def decode_detailed(self, syndrome: Syndrome) -> UnionFindOutcome:
        graph = self.graph
        defects = set(syndrome.defects)
        outcome = UnionFindOutcome(
            correction=set(), defect_count=syndrome.defect_count
        )
        if not defects:
            return outcome
        clusters = _Clusters(graph, defects)
        support = [0] * graph.num_edges
        cluster_vertices: dict[int, set[int]] = {
            clusters.find(d): {d} for d in defects
        }

        max_rounds = _MAX_GROWTH_ROUNDS_FACTOR * graph.num_edges
        for _ in range(max_rounds):
            active_roots = {
                root for root in cluster_vertices if clusters.is_active(clusters.find(root))
            }
            active_roots = {clusters.find(r) for r in active_roots}
            active_roots = {r for r in active_roots if clusters.is_active(r)}
            if not active_roots:
                break
            outcome.growth_rounds += 1
            frontier: list[tuple[int, int]] = []  # (edge, growth rate)
            for edge in graph.edges:
                if support[edge.index] >= edge.weight:
                    continue
                rate = 0
                for endpoint in (edge.u, edge.v):
                    if (
                        clusters.in_cluster[endpoint]
                        and clusters.find(endpoint) in active_roots
                    ):
                        rate += 1
                if rate:
                    frontier.append((edge.index, rate))
            if not frontier:
                break
            step = min(
                (self.graph.edges[index].weight - support[index] + rate - 1) // rate
                for index, rate in frontier
            )
            step = max(1, step)
            newly_saturated: list[int] = []
            for index, rate in frontier:
                support[index] = min(
                    self.graph.edges[index].weight, support[index] + rate * step
                )
                if support[index] >= self.graph.edges[index].weight:
                    newly_saturated.append(index)
            outcome.counters["edges_grown"] += len(frontier)
            for index in newly_saturated:
                edge = graph.edges[index]
                for endpoint in (edge.u, edge.v):
                    if not clusters.in_cluster[endpoint]:
                        clusters.in_cluster[endpoint] = True
                        root = clusters.find(endpoint)
                        cluster_vertices.setdefault(root, set()).add(endpoint)
                root_u, root_v = clusters.find(edge.u), clusters.find(edge.v)
                vertices_u = cluster_vertices.pop(root_u, {edge.u})
                vertices_v = cluster_vertices.pop(root_v, {edge.v})
                if clusters.union(edge.u, edge.v):
                    outcome.merges += 1
                new_root = clusters.find(edge.u)
                cluster_vertices[new_root] = vertices_u | vertices_v

        outcome.correction = self._peel(clusters, support, defects)
        return outcome

    # ------------------------------------------------------------------
    # peeling (correction extraction inside each grown cluster)
    # ------------------------------------------------------------------
    def _peel(
        self, clusters: _Clusters, support: list[int], defects: set[int]
    ) -> set[int]:
        graph = self.graph
        grown_adjacency: dict[int, list[tuple[int, int]]] = {}
        for edge in graph.edges:
            if support[edge.index] < edge.weight:
                continue
            grown_adjacency.setdefault(edge.u, []).append((edge.index, edge.v))
            grown_adjacency.setdefault(edge.v, []).append((edge.index, edge.u))

        correction: set[int] = set()
        remaining_defects = set(defects)
        visited: set[int] = set()
        for start in sorted(defects):
            if start in visited:
                continue
            # Build a spanning tree of the grown component, rooted at a virtual
            # vertex when one is reachable so the boundary can absorb parity.
            component: list[int] = []
            parent_edge: dict[int, tuple[int, int]] = {}
            queue = deque([start])
            seen = {start}
            virtual_root: int | None = None
            while queue:
                vertex = queue.popleft()
                component.append(vertex)
                if graph.is_virtual(vertex) and virtual_root is None:
                    virtual_root = vertex
                for edge_index, neighbor in grown_adjacency.get(vertex, []):
                    if neighbor in seen:
                        continue
                    seen.add(neighbor)
                    parent_edge[neighbor] = (edge_index, vertex)
                    queue.append(neighbor)
            visited |= seen
            root = virtual_root if virtual_root is not None else start
            # Re-root the BFS tree at the chosen root.
            order, parents = self._bfs_tree(grown_adjacency, root, seen)
            defect_flag = {v: (v in remaining_defects) for v in seen}
            for vertex in reversed(order):
                if vertex == root:
                    continue
                if defect_flag.get(vertex):
                    edge_index, parent = parents[vertex]
                    correction.symmetric_difference_update({edge_index})
                    defect_flag[parent] = not defect_flag.get(parent, False)
                    defect_flag[vertex] = False
            if defect_flag.get(root) and not graph.is_virtual(root):
                # Parity left on a non-boundary root: the cluster had odd
                # parity without boundary access, which growth should prevent.
                raise RuntimeError("union-find peeling left an unmatched defect")
        return correction

    @staticmethod
    def _bfs_tree(
        adjacency: dict[int, list[tuple[int, int]]], root: int, allowed: set[int]
    ) -> tuple[list[int], dict[int, tuple[int, int]]]:
        order = [root]
        parents: dict[int, tuple[int, int]] = {}
        seen = {root}
        queue = deque([root])
        while queue:
            vertex = queue.popleft()
            for edge_index, neighbor in adjacency.get(vertex, []):
                if neighbor in seen or neighbor not in allowed:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (edge_index, vertex)
                order.append(neighbor)
                queue.append(neighbor)
        return order, parents
