"""Union-Find decoder baseline (Helios-class approximate decoder)."""

from .decoder import UnionFindDecoder, UnionFindOutcome

__all__ = ["UnionFindDecoder", "UnionFindOutcome"]
