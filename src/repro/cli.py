"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the most common workflows without writing any Python:

* ``decode``     — sample and decode syndromes, verifying exactness;
* ``experiment`` — run one of the paper's experiments and print its table;
* ``resources``  — print the Table 4 resource model;
* ``accuracy``   — Monte-Carlo logical error rate of a decoder;
* ``latency``    — Monte-Carlo latency distribution under the timing models.

``accuracy`` and ``latency`` run on the sharded
:class:`repro.evaluation.MonteCarloEngine` (see ``docs/evaluation.md``):
shots are sampled vectorized in seed-stable shards and fanned out over
``--workers`` processes, with results independent of the worker count.

Decoders are resolved through the :mod:`repro.api` registry, so every backend
— including user-registered ones — is driven through the same typed
:class:`repro.api.Decoder` protocol.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .api import available_decoders, get_decoder
from .evaluation import (
    MonteCarloEngine,
    amdahl_profile,
    effective_error_grid,
    estimate_logical_error_rate,
    format_rows,
    improvement_breakdown,
    latency_sweep,
    modelled_latency_fn,
    resource_usage_table,
    stream_vs_batch,
)
from .graphs import SyndromeSampler, noise_model_by_name, surface_code_decoding_graph
from .matching import ReferenceDecoder

EXPERIMENTS = {
    "figure2": (
        amdahl_profile,
        ["distance", "dual_fraction", "primal_fraction", "potential_speedup"],
    ),
    "figure9": (
        latency_sweep,
        ["decoder", "distance", "physical_error_rate", "mean_latency_us"],
    ),
    "figure10a": (
        improvement_breakdown,
        ["configuration", "distance", "mean_latency_us", "speedup_vs_cpu"],
    ),
    "figure10b": (
        stream_vs_batch,
        ["rounds", "batch_latency_us", "stream_latency_us"],
    ),
    "figure11": (
        effective_error_grid,
        [
            "distance",
            "physical_error_rate",
            "helios_ratio",
            "parity-blossom_ratio",
            "micro-blossom_ratio",
            "best_decoder",
        ],
    ),
    "table4": (
        resource_usage_table,
        ["distance", "num_vertices", "num_edges", "luts", "paper_luts", "clock_mhz"],
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Micro Blossom reproduction: MWPM decoding for QEC",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decode = subparsers.add_parser("decode", help="sample and decode syndromes")
    decode.add_argument("--distance", type=int, default=5)
    decode.add_argument("--error-rate", type=float, default=0.005)
    decode.add_argument("--noise", default="circuit_level")
    decode.add_argument("--samples", type=int, default=5)
    decode.add_argument("--seed", type=int, default=0)
    decode.add_argument(
        "--decoder", choices=available_decoders(), default="micro-blossom"
    )

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    subparsers.add_parser("resources", help="print the Table 4 resource model")

    accuracy = subparsers.add_parser(
        "accuracy", help="Monte-Carlo logical error rate of a decoder"
    )
    accuracy.add_argument("--distance", type=int, default=3)
    accuracy.add_argument("--error-rate", type=float, default=0.02)
    accuracy.add_argument("--noise", default="circuit_level")
    accuracy.add_argument("--samples", type=int, default=200)
    accuracy.add_argument("--seed", type=int, default=0)
    accuracy.add_argument(
        "--decoder", choices=available_decoders(), default="micro-blossom"
    )
    accuracy.add_argument(
        "--workers",
        type=int,
        default=1,
        help="decode the sampled syndromes over this many worker processes",
    )
    accuracy.add_argument(
        "--shard-size",
        type=int,
        default=256,
        help="shots per seed-stable shard of the Monte-Carlo engine",
    )
    accuracy.add_argument(
        "--target-se",
        type=float,
        default=None,
        help="stop early once the standard error reaches this target",
    )

    latency = subparsers.add_parser(
        "latency",
        help="Monte-Carlo latency distribution under the published timing models",
    )
    latency.add_argument("--distance", type=int, default=5)
    latency.add_argument("--error-rate", type=float, default=0.001)
    latency.add_argument("--noise", default="circuit_level")
    latency.add_argument("--samples", type=int, default=200)
    latency.add_argument("--seed", type=int, default=0)
    latency.add_argument(
        "--decoder",
        choices=["micro-blossom", "micro-blossom-batch", "parity-blossom", "union-find"],
        default="micro-blossom",
        help="decoders with a published timing model",
    )
    latency.add_argument("--workers", type=int, default=1)
    latency.add_argument("--shard-size", type=int, default=256)
    return parser


def _command_decode(args: argparse.Namespace) -> int:
    graph = surface_code_decoding_graph(
        args.distance, noise_model_by_name(args.noise, args.error_rate)
    )
    sampler = SyndromeSampler(graph, seed=args.seed)
    decoder = get_decoder(args.decoder, graph)
    reference = ReferenceDecoder(graph)
    rows = []
    for index in range(args.samples):
        syndrome = sampler.sample()
        outcome = decoder.decode_detailed(syndrome)
        correction = outcome.correction_edges(graph)
        row = {
            "sample": index,
            "defects": syndrome.defect_count,
            "correction_edges": len(correction),
            "weight": "-",
            "optimal": "-",
        }
        if outcome.is_exact:
            row["weight"] = outcome.weight
            row["optimal"] = reference.decode(syndrome).weight
        rows.append(row)
    print(format_rows(rows, ["sample", "defects", "correction_edges", "weight", "optimal"]))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    runner, columns = EXPERIMENTS[args.name]
    rows = runner()
    print(format_rows(rows, columns))
    return 0


def _command_resources(_args: argparse.Namespace) -> int:
    rows = resource_usage_table()
    print(
        format_rows(
            rows,
            ["distance", "num_vertices", "num_edges", "luts", "paper_luts", "clock_mhz"],
        )
    )
    return 0


def _command_accuracy(args: argparse.Namespace) -> int:
    graph = surface_code_decoding_graph(
        args.distance, noise_model_by_name(args.noise, args.error_rate)
    )
    estimate = estimate_logical_error_rate(
        graph,
        args.decoder,
        args.samples,
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
        target_standard_error=args.target_se,
    )
    print(
        f"decoder={args.decoder} d={args.distance} p={args.error_rate} "
        f"samples={estimate.samples} errors={estimate.errors} "
        f"logical_error_rate={estimate.rate:.4g} (+/- {estimate.standard_error:.2g})"
    )
    return 0


def _command_latency(args: argparse.Namespace) -> int:
    graph = surface_code_decoding_graph(
        args.distance, noise_model_by_name(args.noise, args.error_rate)
    )
    engine = MonteCarloEngine(
        graph,
        args.decoder,
        shard_size=args.shard_size,
        workers=args.workers,
        latency_fn=modelled_latency_fn(args.decoder, graph),
    )
    result = engine.run(args.samples, seed=args.seed)
    histogram = result.histogram
    print(
        f"decoder={args.decoder} d={args.distance} p={args.error_rate} "
        f"shots={result.shots} decoded={result.decoded_shots} "
        f"logical_error_rate={result.rate:.4g}"
    )
    if histogram.count == 0:
        print(
            "latency_us n/a (no shot carried defects; raise --error-rate or "
            "--samples)"
        )
        return 0
    print(
        f"latency_us mean={histogram.mean * 1e6:.3f} "
        f"p50={histogram.percentile(50) * 1e6:.3f} "
        f"p99={histogram.percentile(99) * 1e6:.3f} "
        f"max={histogram.max_seconds * 1e6:.3f}"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the test suite."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "decode": _command_decode,
        "experiment": _command_experiment,
        "resources": _command_resources,
        "accuracy": _command_accuracy,
        "latency": _command_latency,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
