"""Command-line interface: ``python -m repro <command>``.

The CLI exposes the most common workflows without writing any Python:

* ``decode``     — sample and decode syndromes, verifying exactness;
* ``decoders``   — list registered backends with their capability flags;
* ``experiment`` — run one of the paper's experiments and print its table;
* ``resources``  — print the Table 4 resource model;
* ``accuracy``   — Monte-Carlo logical error rate of a decoder;
* ``latency``    — Monte-Carlo latency distribution under the timing models;
* ``stream``     — continuous-stream decoding: rounds pushed as they arrive,
  reaction-latency percentiles and backlog accounting (``docs/streaming.md``);
* ``sweep``      — declarative, resumable (d × noise × p × decoder ×
  streaming) sweeps with an on-disk result store and a ``BENCH_sweep.json``
  exporter (``run`` / ``resume`` / ``report`` / ``export-bench``, see
  ``docs/sweeps.md``);
* ``serve-bench`` — replay a seed-stable synthetic request trace through the
  micro-batching :class:`repro.service.DecodeService` and emit the
  schema-validated ``BENCH_service.json`` (throughput, queue-delay and
  end-to-end latency percentiles, batch-size histogram; ``docs/service.md``).

``accuracy`` and ``latency`` run on the sharded
:class:`repro.evaluation.MonteCarloEngine`, ``stream`` on the
:class:`repro.evaluation.StreamEngine` (see ``docs/evaluation.md``): shots
are sampled in seed-stable shards and fanned out over ``--workers``
processes, with results independent of the worker count.

Decoders are resolved through the :mod:`repro.api` registry, so every backend
— including user-registered ones — is driven through the same typed
:class:`repro.api.Decoder` protocol.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .api import available_decoders, decoder_spec, get_decoder
from .evaluation import (
    DECODERS_WITH_TIMING_MODELS,
    MonteCarloEngine,
    ServiceLoadEngine,
    StreamEngine,
    amdahl_profile,
    effective_error_grid,
    estimate_logical_error_rate,
    format_rows,
    improvement_breakdown,
    latency_sweep,
    modelled_latency_fn,
    resource_usage_table,
    stream_vs_batch,
)
from .graphs import SyndromeSampler, noise_model_by_name, surface_code_decoding_graph
from .matching import ReferenceDecoder
from .service import (
    HOSTILE_SMOKE_PLAN,
    HOSTILE_SMOKE_TRACES,
    SMOKE_TRACE,
    CodeSpec,
    FaultPlan,
    ServiceBenchSchemaError,
    ServiceConfig,
    TraceSpec,
    cache_comparison_entry,
    hostile_mix_entry,
    make_trace,
    saturation_entry,
    service_bench_document,
    wire_entry,
    write_service_bench,
)
from .sweeps import (
    SMOKE_SPEC,
    BenchSchemaError,
    ResultStore,
    StoreError,
    SweepSpec,
    bench_document,
    fit_sweep_scaling,
    make_spec,
    report_rows,
    run_sweep,
    write_bench,
)

EXPERIMENTS = {
    "figure2": (
        amdahl_profile,
        ["distance", "dual_fraction", "primal_fraction", "potential_speedup"],
    ),
    "figure9": (
        latency_sweep,
        ["decoder", "distance", "physical_error_rate", "mean_latency_us"],
    ),
    "figure10a": (
        improvement_breakdown,
        ["configuration", "distance", "mean_latency_us", "speedup_vs_cpu"],
    ),
    "figure10b": (
        stream_vs_batch,
        ["rounds", "batch_latency_us", "stream_latency_us"],
    ),
    "figure11": (
        effective_error_grid,
        [
            "distance",
            "physical_error_rate",
            "helios_ratio",
            "parity-blossom_ratio",
            "micro-blossom_ratio",
            "best_decoder",
        ],
    ),
    "table4": (
        resource_usage_table,
        ["distance", "num_vertices", "num_edges", "luts", "paper_luts", "clock_mhz"],
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Micro Blossom reproduction: MWPM decoding for QEC",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    decode = subparsers.add_parser("decode", help="sample and decode syndromes")
    decode.add_argument("--distance", type=int, default=5)
    decode.add_argument("--error-rate", type=float, default=0.005)
    decode.add_argument("--noise", default="circuit_level")
    decode.add_argument("--samples", type=int, default=5)
    decode.add_argument("--seed", type=int, default=0)
    decode.add_argument(
        "--decoder", choices=available_decoders(), default="micro-blossom"
    )

    subparsers.add_parser(
        "decoders", help="list registered decoders and their capabilities"
    )

    experiment = subparsers.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    subparsers.add_parser("resources", help="print the Table 4 resource model")

    accuracy = subparsers.add_parser(
        "accuracy", help="Monte-Carlo logical error rate of a decoder"
    )
    accuracy.add_argument("--distance", type=int, default=3)
    accuracy.add_argument("--error-rate", type=float, default=0.02)
    accuracy.add_argument("--noise", default="circuit_level")
    accuracy.add_argument("--samples", type=int, default=200)
    accuracy.add_argument("--seed", type=int, default=0)
    accuracy.add_argument(
        "--decoder", choices=available_decoders(), default="micro-blossom"
    )
    accuracy.add_argument(
        "--workers",
        type=int,
        default=1,
        help="decode the sampled syndromes over this many worker processes",
    )
    accuracy.add_argument(
        "--shard-size",
        type=int,
        default=256,
        help="shots per seed-stable shard of the Monte-Carlo engine",
    )
    accuracy.add_argument(
        "--target-se",
        type=float,
        default=None,
        help="stop early once the standard error reaches this target",
    )

    latency = subparsers.add_parser(
        "latency",
        help="Monte-Carlo latency distribution under the published timing models",
    )
    latency.add_argument("--distance", type=int, default=5)
    latency.add_argument("--error-rate", type=float, default=0.001)
    latency.add_argument("--noise", default="circuit_level")
    latency.add_argument("--samples", type=int, default=200)
    latency.add_argument("--seed", type=int, default=0)
    latency.add_argument(
        "--decoder",
        choices=list(DECODERS_WITH_TIMING_MODELS),
        default="micro-blossom",
        help="decoders with a published timing model",
    )
    latency.add_argument("--workers", type=int, default=1)
    latency.add_argument("--shard-size", type=int, default=256)

    stream = subparsers.add_parser(
        "stream",
        help="continuous-stream decoding: reaction latency and backlog "
        "under round-by-round syndrome arrival",
    )
    stream.add_argument("--distance", type=int, default=5)
    stream.add_argument("--error-rate", type=float, default=0.002)
    stream.add_argument("--noise", default="circuit_level")
    stream.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="measurement rounds per shot (default: the code distance)",
    )
    stream.add_argument("--samples", type=int, default=200)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--decoder",
        choices=list(DECODERS_WITH_TIMING_MODELS),
        default="micro-blossom",
        help="decoders with a published timing model",
    )
    stream.add_argument(
        "--window",
        type=int,
        default=None,
        help="sliding-window size for adapter-streamed backends "
        "(default: unbounded, exactness-preserving)",
    )
    stream.add_argument(
        "--commit-depth",
        type=int,
        default=None,
        help="rounds behind the window base after which decisions freeze",
    )
    stream.add_argument("--workers", type=int, default=1)
    stream.add_argument(
        "--shard-size",
        type=int,
        default=256,
        help="shots per seed-stable shard (= per concurrent logical-qubit stream)",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help="declarative, resumable evaluation sweeps (see docs/sweeps.md)",
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    def add_store(sub, required: bool) -> None:
        sub.add_argument(
            "--store",
            required=required,
            default=None,
            help="JSON-lines result store (completed points are never re-run)",
        )

    run = sweep_sub.add_parser(
        "run", help="run every point of a sweep spec, resuming from the store"
    )
    add_store(run, required=False)
    run.add_argument("--workers", type=int, default=1)
    run.add_argument(
        "--smoke",
        action="store_true",
        help="use the pinned CI smoke spec instead of flags/--spec",
    )
    run.add_argument("--spec", default=None, help="JSON sweep spec file")
    run.add_argument("--name", default="sweep")
    run.add_argument("--distances", default="3,5", help="comma-separated odd distances")
    run.add_argument("--error-rates", default="0.01,0.02", help="comma-separated rates")
    run.add_argument(
        "--decoders", default="micro-blossom", help="comma-separated registry names"
    )
    run.add_argument(
        "--noise-models", default="circuit_level", help="comma-separated noise names"
    )
    run.add_argument("--shots", type=int, default=1000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--shard-size", type=int, default=256)
    run.add_argument(
        "--target-se",
        type=float,
        default=None,
        help="per-point early-stopping target standard error",
    )
    run.add_argument(
        "--latency",
        action="store_true",
        help="collect latency histograms under the published timing models",
    )
    run.add_argument(
        "--streaming",
        action="store_true",
        help="add the streaming axis: run every cell batch AND streamed "
        "(reaction-latency percentiles on the same seeds)",
    )
    run.add_argument(
        "--lut",
        action="store_true",
        help="add a lut+<decoder> variant of every decoder on the axis "
        "(LUT hit rate and speedup-vs-fallback land in BENCH_sweep.json)",
    )

    resume = sweep_sub.add_parser(
        "resume",
        help="continue an interrupted sweep from its store (spec is read "
        "from the store, no flags needed)",
    )
    add_store(resume, required=True)
    resume.add_argument("--workers", type=int, default=1)

    report = sweep_sub.add_parser(
        "report", help="tabulate stored results (zero-failure points as bounds)"
    )
    add_store(report, required=True)

    export = sweep_sub.add_parser(
        "export-bench",
        help="emit the schema-validated BENCH_sweep.json performance trajectory",
    )
    add_store(export, required=True)
    export.add_argument("--output", default="BENCH_sweep.json")

    serve = subparsers.add_parser(
        "serve-bench",
        help="replay a synthetic request trace through the decode service "
        "and emit BENCH_service.json (see docs/service.md)",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="use the pinned CI smoke trace instead of flags/--trace",
    )
    serve.add_argument("--trace", default=None, help="JSON trace spec file")
    serve.add_argument("--name", default="trace")
    serve.add_argument("--requests", type=int, default=256)
    serve.add_argument("--distances", default="3,5", help="comma-separated odd distances")
    serve.add_argument("--error-rates", default="0.02", help="comma-separated rates")
    serve.add_argument(
        "--decoders", default="micro-blossom", help="comma-separated registry names"
    )
    serve.add_argument(
        "--noise-models", default="circuit_level", help="comma-separated noise names"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--arrival",
        choices=("open", "closed"),
        default="open",
        help="open loop (scheduled arrivals) or closed loop (N clients)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop Poisson arrival rate in requests/sec "
        "(default: back-to-back)",
    )
    serve.add_argument(
        "--clients", type=int, default=4, help="closed-loop concurrent callers"
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--max-batch", type=int, default=16, help="micro-batch size flush bound"
    )
    serve.add_argument(
        "--max-wait-us",
        type=float,
        default=1000.0,
        help="micro-batch deadline flush bound (microseconds)",
    )
    serve.add_argument("--queue-capacity", type=int, default=1024)
    serve.add_argument(
        "--max-sessions", type=int, default=8, help="LRU bound on cached sessions"
    )
    serve.add_argument(
        "--policy",
        choices=("block", "shed"),
        default="block",
        help="overload policy at a full admission queue",
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the direct-decode bit-identity check",
    )
    serve.add_argument(
        "--outcome-cache-bytes",
        type=int,
        default=0,
        help="byte budget of the content-addressed outcome cache "
        "(0 disables it; see docs/lut.md)",
    )
    serve.add_argument(
        "--compare-cache",
        action="store_true",
        help="replay the trace twice (outcome cache off, then on) and "
        "record the pair under cache_comparison; --smoke implies this",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        help="JSON fault-plan file injected into the primary replay "
        "(see docs/service.md)",
    )
    serve.add_argument(
        "--session-build-retries",
        type=int,
        default=2,
        help="retry budget for crashed session builds",
    )
    serve.add_argument(
        "--hostile-smoke",
        action="store_true",
        help="additionally replay the pinned hostile trace families under "
        "the pinned fault plan and record them as the hostile_mix series; "
        "fails on any non-isolated fault",
    )
    serve.add_argument("--output", default="BENCH_service.json")

    serve_net = subparsers.add_parser(
        "serve-net",
        help="serve the decode service over TCP with multi-process workers, "
        "or run the network digest/scaling smoke (see docs/service.md)",
    )
    net_mode = serve_net.add_mutually_exclusive_group(required=True)
    net_mode.add_argument(
        "--serve",
        action="store_true",
        help="run a standalone server until SIGTERM/SIGINT (graceful drain)",
    )
    net_mode.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke: replay the pinned trace over loopback at each "
        "--processes count, gate healthy_digest identity against in-process "
        "serving, sweep the closed-loop saturation ladder, compare the "
        "binary-v2 wire against per-request JSON-v1 framing (gating >= 1.5x "
        "throughput and digest identity), and emit a schema-v5 BENCH "
        "document with the saturation and wire blocks",
    )
    serve_net.add_argument(
        "--config",
        default=None,
        help="ServiceConfig JSON file (defaults to the serve-bench sizing: "
        "max_batch_size=16, max_wait_seconds=0.001)",
    )
    serve_net.add_argument("--host", default="127.0.0.1")
    serve_net.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve_net.add_argument(
        "--processes",
        default=None,
        help="worker process count (--serve, default 2) or comma-separated "
        "counts to sweep (--smoke, default 1,2,4)",
    )
    serve_net.add_argument(
        "--client-ladder",
        default="1,2,4,8",
        help="closed-loop client counts the saturation sweep climbs (--smoke)",
    )
    serve_net.add_argument(
        "--prewarm-distances",
        default="3,5",
        help="comma-separated distances packed into shared memory (--serve)",
    )
    serve_net.add_argument(
        "--prewarm-error-rates",
        default="0.02,0.03",
        help="comma-separated error rates crossed with --prewarm-distances",
    )
    serve_net.add_argument("--output", default="BENCH_service_net.json")
    return parser


def _command_decode(args: argparse.Namespace) -> int:
    graph = surface_code_decoding_graph(
        args.distance, noise_model_by_name(args.noise, args.error_rate)
    )
    sampler = SyndromeSampler(graph, seed=args.seed)
    decoder = get_decoder(args.decoder, graph)
    reference = ReferenceDecoder(graph)
    rows = []
    for index in range(args.samples):
        syndrome = sampler.sample()
        outcome = decoder.decode_detailed(syndrome)
        correction = outcome.correction_edges(graph)
        row = {
            "sample": index,
            "defects": syndrome.defect_count,
            "correction_edges": len(correction),
            "weight": "-",
            "optimal": "-",
        }
        if outcome.is_exact:
            row["weight"] = outcome.weight
            row["optimal"] = reference.decode(syndrome).weight
        rows.append(row)
    print(format_rows(rows, ["sample", "defects", "correction_edges", "weight", "optimal"]))
    return 0


def _command_decoders(_args: argparse.Namespace) -> int:
    rows = []
    for name in available_decoders():
        spec = decoder_spec(name)
        caps = spec.capabilities
        rows.append(
            {
                "name": name,
                "streaming": "native" if caps.native_streaming else "adapter",
                "timing_model": "yes" if caps.timing_model else "no",
                "batch_decode": "yes" if caps.batch_decode else "no",
                "exact": "yes" if caps.exact else "no",
                "lut": "yes" if caps.lut_predecode else "no",
                "description": spec.description,
            }
        )
    print(
        format_rows(
            rows,
            ["name", "streaming", "timing_model", "batch_decode", "exact", "lut"],
        )
    )
    for row in rows:
        print(f"  {row['name']}: {row['description']}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    runner, columns = EXPERIMENTS[args.name]
    rows = runner()
    print(format_rows(rows, columns))
    return 0


def _command_resources(_args: argparse.Namespace) -> int:
    rows = resource_usage_table()
    print(
        format_rows(
            rows,
            ["distance", "num_vertices", "num_edges", "luts", "paper_luts", "clock_mhz"],
        )
    )
    return 0


def _command_accuracy(args: argparse.Namespace) -> int:
    graph = surface_code_decoding_graph(
        args.distance, noise_model_by_name(args.noise, args.error_rate)
    )
    estimate = estimate_logical_error_rate(
        graph,
        args.decoder,
        args.samples,
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
        target_standard_error=args.target_se,
    )
    if estimate.zero_failures:
        # 0 errors in n shots is the degenerate estimate 0 ± 0; surface the
        # one-sided rule-of-three bound instead.
        rate_text = (
            f"logical_error_rate<={estimate.upper_bound:.4g} "
            f"(95% one-sided, rule of three; 0 errors observed)"
        )
    else:
        rate_text = (
            f"logical_error_rate={estimate.rate:.4g} "
            f"(+/- {estimate.standard_error:.2g})"
        )
    print(
        f"decoder={args.decoder} d={args.distance} p={args.error_rate} "
        f"samples={estimate.samples} errors={estimate.errors} {rate_text}"
    )
    return 0


def _command_latency(args: argparse.Namespace) -> int:
    graph = surface_code_decoding_graph(
        args.distance, noise_model_by_name(args.noise, args.error_rate)
    )
    engine = MonteCarloEngine(
        graph,
        args.decoder,
        shard_size=args.shard_size,
        workers=args.workers,
        latency_fn=modelled_latency_fn(args.decoder, graph),
    )
    result = engine.run(args.samples, seed=args.seed)
    histogram = result.histogram
    print(
        f"decoder={args.decoder} d={args.distance} p={args.error_rate} "
        f"shots={result.shots} decoded={result.decoded_shots} "
        f"logical_error_rate={result.rate:.4g}"
    )
    if histogram.count == 0:
        print(
            "latency_us n/a (no shot carried defects; raise --error-rate or "
            "--samples)"
        )
        return 0
    print(
        f"latency_us mean={histogram.mean * 1e6:.3f} "
        f"p50={histogram.percentile(50) * 1e6:.3f} "
        f"p99={histogram.percentile(99) * 1e6:.3f} "
        f"max={histogram.max_seconds * 1e6:.3f}"
    )
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    graph = surface_code_decoding_graph(
        args.distance,
        noise_model_by_name(args.noise, args.error_rate),
        rounds=args.rounds,
    )
    engine = StreamEngine(
        graph,
        args.decoder,
        window=args.window,
        commit_depth=args.commit_depth,
        shard_size=args.shard_size,
        workers=args.workers,
    )
    result = engine.run(args.samples, seed=args.seed)
    reaction = result.reaction
    print(
        f"decoder={args.decoder} d={args.distance} p={args.error_rate} "
        f"rounds={graph.num_layers} shots={result.shots} "
        f"streams={result.streams} logical_error_rate={result.rate:.4g}"
    )
    print(
        f"reaction_us mean={reaction.mean * 1e6:.3f} "
        f"p50={reaction.percentile(50) * 1e6:.3f} "
        f"p99={reaction.percentile(99) * 1e6:.3f} "
        f"max={reaction.max_seconds * 1e6:.3f}"
    )
    print(f"max_backlog_us={result.max_backlog_seconds * 1e6:.3f}")
    return 0


REPORT_COLUMNS = [
    "distance",
    "noise",
    "physical_error_rate",
    "decoder",
    "mode",
    "shots",
    "errors",
    "logical_error_rate",
    "upper_bound",
    "shots_per_sec",
    "cached",
]


def _parse_list(text: str, convert) -> tuple:
    return tuple(convert(item) for item in text.split(",") if item.strip())


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    if args.smoke:
        return SMOKE_SPEC
    if args.spec:
        return SweepSpec.from_file(args.spec)
    decoders = _parse_list(args.decoders, str)
    if getattr(args, "lut", False):
        decoders = decoders + tuple(
            f"lut+{name}" for name in decoders if not name.startswith("lut+")
        )
    return make_spec(
        args.name,
        _parse_list(args.distances, int),
        _parse_list(args.error_rates, float),
        decoders,
        args.shots,
        noise_models=_parse_list(args.noise_models, str),
        seed=args.seed,
        shard_size=args.shard_size,
        target_standard_error=args.target_se,
        collect_latency=args.latency,
        streaming=(False, True) if args.streaming else (False,),
    )


def _report_table(results) -> str:
    rows = report_rows(results)
    columns = list(REPORT_COLUMNS)
    if any("latency_p99_us" in row for row in rows):
        columns.append("latency_p99_us")
    return format_rows(rows, columns)


def _print_sweep_summary(run) -> None:
    spec = run.spec
    print(
        f"sweep {spec.name!r} [{run.spec_hash}]: "
        f"{len(run.results)} points ({run.completed} run, {run.cached} cached)"
    )
    print(_report_table(run.results))


def _run_sweep_command(args: argparse.Namespace, spec: SweepSpec) -> int:
    store = ResultStore(args.store)
    total = len(spec.expand())

    def progress(point, result) -> None:
        status = "cached" if result.cached else f"{result.elapsed_seconds:.2f}s"
        print(f"  [{len(completed) + 1}/{total}] {point.key} {status}")
        completed.append(point)

    completed: list = []
    run = run_sweep(spec, store, workers=args.workers, progress=progress)
    _print_sweep_summary(run)
    return 0


def _command_sweep_run(args: argparse.Namespace) -> int:
    return _run_sweep_command(args, _sweep_spec_from_args(args))


def _command_sweep_resume(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    specs = store.specs
    if not specs:
        print(
            f"store {args.store!r} records no sweep spec; run `repro sweep run` first",
            file=sys.stderr,
        )
        return 2
    for spec in specs.values():
        run = run_sweep(spec, store, workers=args.workers)
        _print_sweep_summary(run)
    return 0


def _command_sweep_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if not len(store):
        print(f"store {args.store!r} holds no results", file=sys.stderr)
        return 2
    for spec_hash, spec in store.specs.items():
        results = store.results(spec_hash)
        if not results:
            continue
        print(f"sweep {spec.name!r} [{spec_hash}]: {len(results)} stored points")
        print(_report_table(results))
        for noise in spec.noise_models:
            for decoder in spec.decoders:
                try:
                    fit = fit_sweep_scaling(results, noise=noise, decoder=decoder)
                except ValueError:
                    continue
                print(
                    f"  scaling fit {noise}/{decoder}: "
                    f"threshold={fit.threshold:.3g} amplitude={fit.amplitude:.3g}"
                )
    return 0


def _command_sweep_export(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    specs = store.specs
    if not specs:
        print(f"store {args.store!r} records no sweep spec", file=sys.stderr)
        return 2
    # export the most recently recorded sweep
    spec_hash, spec = list(specs.items())[-1]
    run = run_sweep(spec, store)  # cache-complete by construction
    if run.completed:
        print(
            f"note: {run.completed} missing points were computed before export",
            file=sys.stderr,
        )
    try:
        path = write_bench(bench_document(run), args.output)
    except BenchSchemaError as error:
        print(f"BENCH schema violation: {error}", file=sys.stderr)
        return 1
    print(f"wrote {path} ({len(run.results)} points, spec {spec.name!r})")
    return 0


def _serve_trace_from_args(args: argparse.Namespace) -> TraceSpec:
    if args.smoke:
        return SMOKE_TRACE
    if args.trace:
        return TraceSpec.from_file(args.trace)
    return make_trace(
        args.name,
        _parse_list(args.distances, int),
        _parse_list(args.error_rates, float),
        _parse_list(args.decoders, str),
        args.requests,
        noise_models=_parse_list(args.noise_models, str),
        seed=args.seed,
        arrival=args.arrival,
        rate_rps=args.rate,
        clients=args.clients,
    )


#: Outcome-cache byte budget used by cache comparisons when the user did not
#: pick one (``serve-bench --smoke`` / ``--compare-cache`` without
#: ``--outcome-cache-bytes``).
_DEFAULT_COMPARE_CACHE_BYTES = 4 << 20


#: Drain bound of every CLI-driven service replay: a close() that cannot
#: finish within this raises ServiceDrainError and fails the run instead of
#: wedging CI.
_SERVE_DRAIN_TIMEOUT_SECONDS = 60.0


#: Minimum end-to-end throughput ratio of the binary-batched v2 wire over
#: per-request JSON-v1 framing the serve-net smoke accepts (acceptance gate
#: of the codec: the bytes saved must show up as wall-clock time).
_WIRE_SPEEDUP_FLOOR = 1.5


def _serve_config(
    args: argparse.Namespace,
    outcome_cache_bytes: int | None,
    fault_plan: FaultPlan | None = None,
) -> ServiceConfig:
    """The ServiceConfig every serve-bench replay runs under."""
    return ServiceConfig(
        workers=args.workers,
        max_batch_size=args.max_batch,
        max_wait_seconds=args.max_wait_us * 1e-6,
        queue_capacity=args.queue_capacity,
        max_sessions=args.max_sessions,
        overload_policy=args.policy,
        outcome_cache_bytes=outcome_cache_bytes,
        fault_plan=fault_plan,
        session_build_retries=args.session_build_retries,
        session_build_backoff_seconds=0.0005,
    )


def _serve_engine(
    args: argparse.Namespace,
    trace: TraceSpec,
    outcome_cache_bytes: int | None,
    repeats: int = 1,
    fault_plan: FaultPlan | None = None,
) -> ServiceLoadEngine:
    return ServiceLoadEngine(
        trace,
        config=_serve_config(args, outcome_cache_bytes, fault_plan),
        repeats=repeats,
        drain_timeout_seconds=_SERVE_DRAIN_TIMEOUT_SECONDS,
    )


def _run_hostile_mix(args: argparse.Namespace) -> tuple[list, list]:
    """Replay every pinned hostile family under the pinned fault plan.

    Returns the ``hostile_mix`` entries plus the names of families whose
    faults were NOT isolated (any poisoned request not resolved as an error,
    any identity or stream mismatch) — the caller fails on a non-empty list.
    """
    entries = []
    failed = []
    for family, spec in HOSTILE_SMOKE_TRACES:
        config = ServiceConfig(
            workers=args.workers,
            max_batch_size=args.max_batch,
            max_wait_seconds=args.max_wait_us * 1e-6,
            queue_capacity=args.queue_capacity,
            max_sessions=8,
            overload_policy="block",  # no shedding: digests stay comparable
            fault_plan=HOSTILE_SMOKE_PLAN,
            session_build_retries=2,
            session_build_backoff_seconds=0.0005,
        )
        engine = ServiceLoadEngine(
            spec,
            config=config,
            drain_timeout_seconds=_SERVE_DRAIN_TIMEOUT_SECONDS,
        )
        result = engine.run(verify_identity=True)
        entry = hostile_mix_entry(family, spec, HOSTILE_SMOKE_PLAN, result)
        entries.append(entry)
        verdict = "isolated" if entry["isolated"] else "NOT ISOLATED"
        print(
            f"hostile {family:14s} [{entry['trace_hash']}]: "
            f"{result.completed} ok, {result.error_responses} error "
            f"({result.poisoned_errored}/{result.poisoned} poisoned), "
            f"{result.retries} retries, "
            f"{result.streams - result.stream_mismatches}/{result.streams} "
            f"streams, fairness min={result.min_completion_ratio:.2f} "
            f"-> {verdict}"
        )
        if not entry["isolated"]:
            failed.append(family)
    return entries, failed


def _command_serve_bench(args: argparse.Namespace) -> int:
    trace = _serve_trace_from_args(args)
    fault_plan = FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    compare = args.compare_cache or args.smoke
    cache_bytes = args.outcome_cache_bytes
    if compare and cache_bytes <= 0:
        cache_bytes = _DEFAULT_COMPARE_CACHE_BYTES
    comparison = None
    if compare:
        # The same trace, two passes per side (pass 2 re-submits the same
        # syndromes — the cache's target workload), cache off then on.  The
        # cache-on run is the primary document (and the identity-gated one —
        # verifying it proves cached responses equal direct decodes).
        off_result = _serve_engine(args, trace, None, repeats=2, fault_plan=fault_plan).run()
        result = _serve_engine(
            args, trace, cache_bytes, repeats=2, fault_plan=fault_plan
        ).run(verify_identity=not args.no_verify)
        comparison = cache_comparison_entry(off_result, result)
    else:
        result = _serve_engine(
            args, trace, cache_bytes if cache_bytes > 0 else None, fault_plan=fault_plan
        ).run(verify_identity=not args.no_verify)
    print(
        f"trace {trace.name!r} [{trace.trace_hash()}]: "
        f"{result.requests} requests ({result.completed} completed, "
        f"{result.shed} shed, {result.error_responses} error) "
        f"in {result.elapsed_seconds:.2f}s "
        f"= {result.throughput_rps:.0f} req/s"
    )
    if fault_plan is not None:
        print(
            f"fault_plan {fault_plan.name!r} [{fault_plan.plan_hash()}]: "
            f"{result.poisoned_errored}/{result.poisoned} poisoned errored, "
            f"{result.retries} retries, shed_rate={result.shed_rate:.3f}, "
            f"fairness min={result.min_completion_ratio:.2f} "
            f"max={result.max_completion_ratio:.2f}"
        )
    print(
        f"queue_delay_us p50={result.queue_delay.percentile(50) * 1e6:.1f} "
        f"p99={result.queue_delay.percentile(99) * 1e6:.1f}  "
        f"latency_us p50={result.latency.percentile(50) * 1e6:.1f} "
        f"p99={result.latency.percentile(99) * 1e6:.1f}"
    )
    sessions = result.session_stats
    print(
        f"batches={result.batches} mean_batch_size={result.mean_batch_size:.2f} "
        f"sessions hits={sessions.get('hits', 0)} "
        f"misses={sessions.get('misses', 0)} "
        f"evictions={sessions.get('evictions', 0)}"
    )
    if result.outcome_cache.get("enabled"):
        cache = result.outcome_cache
        print(
            f"outcome_cache hits={cache['hits']} misses={cache['misses']} "
            f"evictions={cache['evictions']} "
            f"bytes_resident={cache['bytes_resident']}"
        )
    if comparison is not None:
        print(
            f"cache_comparison throughput x{comparison['throughput_ratio']:.2f} "
            f"(off={comparison['off']['throughput_rps']:.0f} req/s, "
            f"on={comparison['on']['throughput_rps']:.0f} req/s)"
        )
    if result.evaluated:
        print(
            f"logical_error_rate={result.logical_error_rate:.4g} "
            f"({result.errors}/{result.evaluated}) "
            f"outcome_digest={result.outcome_digest}"
        )
    if not args.no_verify:
        print(
            f"identity: {result.identity_checked} checked, "
            f"{result.identity_mismatches} mismatches"
        )
    hostile_mix = None
    hostile_failures: list = []
    if args.hostile_smoke:
        hostile_mix, hostile_failures = _run_hostile_mix(args)
    try:
        path = write_service_bench(
            service_bench_document(
                trace,
                result,
                cache_comparison=comparison,
                fault_plan=fault_plan,
                hostile_mix=hostile_mix,
            ),
            args.output,
        )
    except ServiceBenchSchemaError as error:
        print(f"BENCH_service schema violation: {error}", file=sys.stderr)
        return 1
    print(f"wrote {path}")
    if result.identity_mismatches:
        print(
            f"service outcomes diverged from direct decodes "
            f"({result.identity_mismatches} mismatches)",
            file=sys.stderr,
        )
        return 1
    if fault_plan is not None and result.poisoned_errored != result.poisoned:
        print(
            f"fault isolation failed: {result.poisoned - result.poisoned_errored} "
            f"poisoned request(s) did not resolve as errors",
            file=sys.stderr,
        )
        return 1
    if hostile_failures:
        print(
            f"hostile smoke: faults not isolated in {', '.join(hostile_failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_serve_net(args: argparse.Namespace) -> int:
    # Local import: the net tier (asyncio, multiprocessing.shared_memory)
    # should not tax every other CLI command's startup.
    from .service.net import NetServer
    from .service.net.bench import NET_CONFIG_DEFAULTS, scaling_bench, wire_comparison

    config = (
        ServiceConfig.from_file(args.config)
        if args.config
        else ServiceConfig(**NET_CONFIG_DEFAULTS)
    )
    if args.serve:
        processes = int(args.processes) if args.processes else 2
        prewarm = [
            CodeSpec(distance, physical_error_rate=rate)
            for distance in _parse_list(args.prewarm_distances, int)
            for rate in _parse_list(args.prewarm_error_rates, float)
        ]
        server = NetServer(
            config,
            processes=processes,
            host=args.host,
            port=args.port,
            prewarm=prewarm,
            drain_timeout_seconds=_SERVE_DRAIN_TIMEOUT_SECONDS,
        )
        server.run_forever()
        return 0

    trace = SMOKE_TRACE
    counts = _parse_list(args.processes or "1,2,4", int)
    engine = ServiceLoadEngine(
        trace, config=config, drain_timeout_seconds=_SERVE_DRAIN_TIMEOUT_SECONDS
    )
    inproc = engine.run(verify_identity=True)
    print(
        f"in-process [{trace.trace_hash()}]: {inproc.completed} completed "
        f"= {inproc.throughput_rps:.0f} req/s, "
        f"healthy_digest={inproc.healthy_digest}"
    )
    saturation = engine.saturate(client_ladder=_parse_list(args.client_ladder, int))
    for point in saturation.points:
        marker = " <- knee" if point.clients == saturation.knee_clients else ""
        print(
            f"saturation clients={point.clients:3d}: "
            f"{point.throughput_rps:.0f} req/s "
            f"p99={point.latency_p99_us:.0f}us{marker}"
        )
    scaling, net_results = scaling_bench(trace, process_counts=counts, config=config)
    digest_failures = []
    for row in scaling["series"]:
        match = row["healthy_digest"] == inproc.healthy_digest
        if not match:
            digest_failures.append(row["processes"])
        print(
            f"net processes={row['processes']}: {row['throughput_rps']:.0f} req/s "
            f"efficiency={row['efficiency']:.2f} "
            f"digest {'==' if match else '!='} in-process"
        )
    print(
        f"scaling measured on {scaling['cpu_count']} CPU core(s); "
        f"efficiency is relative to {counts[0]} process(es)"
    )
    comparison = wire_comparison(trace, processes=counts[-1], config=config)
    for side in ("v2", "v1"):
        stats = comparison[side]
        print(
            f"wire {side} (codec {stats['codec']}): "
            f"{stats['throughput_rps']:.0f} req/s, "
            f"{stats['bytes_sent']} B out / {stats['bytes_received']} B in "
            f"over {stats['frames_sent']}+{stats['frames_received']} frames"
        )
    print(
        f"wire v2 speedup over v1: {comparison['speedup']:.2f}x "
        f"(floor {_WIRE_SPEEDUP_FLOOR}x), digest "
        f"{'==' if comparison['digest_match'] else '!='} across codecs"
    )
    try:
        path = write_service_bench(
            service_bench_document(
                trace,
                inproc,
                saturation=saturation_entry(saturation, scaling=scaling),
                wire=wire_entry(net_results[counts[-1]].wire, comparison),
            ),
            args.output,
        )
    except ServiceBenchSchemaError as error:
        print(f"BENCH_service schema violation: {error}", file=sys.stderr)
        return 1
    print(f"wrote {path}")
    failed = False
    if inproc.identity_mismatches:
        print(
            f"in-process outcomes diverged from direct decodes "
            f"({inproc.identity_mismatches} mismatches)",
            file=sys.stderr,
        )
        failed = True
    if digest_failures:
        print(
            f"network digest mismatch vs in-process at process count(s) "
            f"{digest_failures}",
            file=sys.stderr,
        )
        failed = True
    if not saturation.digest_match:
        print("saturation rungs disagree on healthy_digest", file=sys.stderr)
        failed = True
    error_responses = sum(r.error_responses for r in net_results.values())
    if error_responses:
        print(
            f"network replay produced {error_responses} error response(s)",
            file=sys.stderr,
        )
        failed = True
    if comparison["speedup"] < _WIRE_SPEEDUP_FLOOR:
        print(
            f"binary wire speedup {comparison['speedup']:.2f}x below the "
            f"{_WIRE_SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        failed = True
    if not comparison["digest_match"]:
        print("v2 and v1 wire replays disagree on healthy_digest", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _command_sweep(args: argparse.Namespace) -> int:
    handlers = {
        "run": _command_sweep_run,
        "resume": _command_sweep_resume,
        "report": _command_sweep_report,
        "export-bench": _command_sweep_export,
    }
    try:
        return handlers[args.sweep_command](args)
    except StoreError as error:
        # torn trailing lines are repaired transparently on load; reaching
        # here means genuine corruption (a malformed *terminated* record)
        print(f"result store is corrupt: {error}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the test suite."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "decode": _command_decode,
        "decoders": _command_decoders,
        "experiment": _command_experiment,
        "resources": _command_resources,
        "accuracy": _command_accuracy,
        "latency": _command_latency,
        "stream": _command_stream,
        "sweep": _command_sweep,
        "serve-bench": _command_serve_bench,
        "serve-net": _command_serve_net,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
