"""repro: a Python reproduction of Micro Blossom (ASPLOS 2025).

Micro Blossom is a heterogeneous architecture for exact Minimum-Weight Perfect
Matching (MWPM) decoding of surface-code syndromes with sub-microsecond
latency.  This package provides:

* decoding-graph construction for surface/repetition codes under
  code-capacity, phenomenological, and circuit-level noise (:mod:`repro.graphs`);
* an exact reference MWPM decoder on the syndrome graph (:mod:`repro.matching`);
* the Micro Blossom architecture — a behavioural simulator of the
  vertex/edge-parallel dual-phase accelerator, the software primal module, the
  isolated-Conflict pre-matching offload, and round-wise fusion
  (:mod:`repro.core`);
* the Parity Blossom software baseline (:mod:`repro.parity`) and a Union-Find
  decoder baseline (:mod:`repro.unionfind`);
* latency / resource models and the Monte-Carlo evaluation harness that
  regenerate every table and figure of the paper's evaluation
  (:mod:`repro.latency`, :mod:`repro.resources`, :mod:`repro.evaluation`).
"""

__version__ = "1.0.0"

from . import graphs

__all__ = ["graphs", "__version__"]
