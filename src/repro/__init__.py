"""repro: a Python reproduction of Micro Blossom (ASPLOS 2025).

Micro Blossom is a heterogeneous architecture for exact Minimum-Weight Perfect
Matching (MWPM) decoding of surface-code syndromes with sub-microsecond
latency.  This package provides:

* decoding-graph construction for surface/repetition codes under
  code-capacity, phenomenological, and circuit-level noise (:mod:`repro.graphs`);
* an exact reference MWPM decoder on the syndrome graph (:mod:`repro.matching`);
* the Micro Blossom architecture — a behavioural simulator of the
  vertex/edge-parallel dual-phase accelerator, the software primal module, the
  isolated-Conflict pre-matching offload, and round-wise fusion
  (:mod:`repro.core`);
* the Parity Blossom software baseline (:mod:`repro.parity`) and a Union-Find
  decoder baseline (:mod:`repro.unionfind`);
* latency / resource models and the Monte-Carlo evaluation harness that
  regenerate every table and figure of the paper's evaluation
  (:mod:`repro.latency`, :mod:`repro.resources`, :mod:`repro.evaluation`);
* a first-class streaming decode subsystem — the incremental round-push
  protocol, sliding-window adapters for every backend, and the
  continuous-stream evaluation engine (:mod:`repro.stream`,
  :class:`repro.evaluation.StreamEngine`, ``docs/streaming.md``);
* an asynchronous decode service with dynamic micro-batching, an LRU of
  reusable sessions, bounded-queue backpressure and a load-replay engine
  (:mod:`repro.service`, :class:`repro.evaluation.ServiceLoadEngine`,
  ``docs/service.md``).
"""

__version__ = "1.3.0"

from . import api, graphs
from .api import (
    BatchOutcome,
    DecodeOutcome,
    Decoder,
    DecoderConfig,
    DecoderSession,
    MicroBlossomConfig,
    ParityBlossomConfig,
    ReferenceConfig,
    StreamingDecoder,
    UnionFindConfig,
    available_decoders,
    decode_batch,
    decoder_capabilities,
    get_decoder,
    register_decoder,
)
# The decoder classes are exported lazily (PEP 562) so that ``import repro``
# stays light — matching the registry, which also imports backends on demand
# (``ReferenceDecoder`` pulls in networkx, for example).
_DECODER_EXPORTS = {
    "MicroBlossomDecoder": "core",
    "ReferenceDecoder": "matching",
    "ParityBlossomDecoder": "parity",
    "UnionFindDecoder": "unionfind",
}


def __getattr__(name: str):
    module_name = _DECODER_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module_name}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DECODER_EXPORTS))


__all__ = [
    "api",
    "graphs",
    "__version__",
    "BatchOutcome",
    "DecodeOutcome",
    "Decoder",
    "DecoderConfig",
    "DecoderSession",
    "MicroBlossomConfig",
    "ParityBlossomConfig",
    "ReferenceConfig",
    "StreamingDecoder",
    "UnionFindConfig",
    "available_decoders",
    "decode_batch",
    "decoder_capabilities",
    "get_decoder",
    "register_decoder",
    "MicroBlossomDecoder",
    "ReferenceDecoder",
    "ParityBlossomDecoder",
    "UnionFindDecoder",
]
