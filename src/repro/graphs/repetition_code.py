"""Decoding-graph construction for the quantum repetition code.

The repetition code is the one-dimensional cousin of the surface code; the
paper's artifact uses it as the smallest correctness-verification target
(§A.6).  A distance-``d`` repetition code has ``d`` data qubits in a line and
``d - 1`` stabilizers; error chains terminate on the two ends of the line,
represented by two virtual vertices per layer.
"""

from __future__ import annotations

from .decoding_graph import DEFAULT_MAX_WEIGHT, DecodingGraph, GraphBuilder
from .noise import NoiseModel, NoiseModelError


def repetition_code_decoding_graph(
    distance: int,
    noise_model: NoiseModel,
    rounds: int | None = None,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> DecodingGraph:
    """Build the decoding graph of a distance-``d`` repetition code memory.

    The logical observable is the left boundary edge of every layer: a chain of
    bit flips causes a logical error iff it crosses the left boundary an odd
    number of times.
    """
    if distance < 3:
        raise ValueError("code distance must be >= 3")
    if not noise_model.is_three_dimensional:
        effective_rounds = 1
    else:
        effective_rounds = distance if rounds is None else rounds
    if effective_rounds < 1:
        raise ValueError("rounds must be >= 1")
    if noise_model.diagonal > 0.0 and effective_rounds < 2:
        raise NoiseModelError(
            "circuit-level noise requires at least two measurement rounds"
        )

    builder = GraphBuilder(max_weight=max_weight)
    builder.metadata.update(
        {
            "code": "repetition",
            "distance": distance,
            "rounds": effective_rounds,
            "noise_model": noise_model.name,
            "physical_error_rate": noise_model.spatial,
        }
    )
    reference = noise_model.minimum_probability

    stabilizers = distance - 1
    real_index: dict[tuple[int, int], int] = {}
    left_virtual: dict[int, int] = {}
    right_virtual: dict[int, int] = {}
    for layer in range(effective_rounds):
        for position in range(stabilizers):
            real_index[(layer, position)] = builder.add_vertex(layer, 0, position)
        left_virtual[layer] = builder.add_vertex(layer, 0, -1, is_virtual=True)
        right_virtual[layer] = builder.add_vertex(
            layer, 0, stabilizers, is_virtual=True
        )

    for layer in range(effective_rounds):
        builder.add_edge(
            left_virtual[layer],
            real_index[(layer, 0)],
            noise_model.boundary,
            reference,
            observable=True,
            kind="boundary",
        )
        for position in range(stabilizers - 1):
            builder.add_edge(
                real_index[(layer, position)],
                real_index[(layer, position + 1)],
                noise_model.spatial,
                reference,
                kind="spatial",
            )
        builder.add_edge(
            real_index[(layer, stabilizers - 1)],
            right_virtual[layer],
            noise_model.boundary,
            reference,
            kind="boundary",
        )

    if noise_model.temporal > 0.0:
        for layer in range(effective_rounds - 1):
            for position in range(stabilizers):
                builder.add_edge(
                    real_index[(layer, position)],
                    real_index[(layer + 1, position)],
                    noise_model.temporal,
                    reference,
                    kind="temporal",
                )

    if noise_model.diagonal > 0.0:
        for layer in range(effective_rounds - 1):
            for position in range(stabilizers - 1):
                builder.add_edge(
                    real_index[(layer, position)],
                    real_index[(layer + 1, position + 1)],
                    noise_model.diagonal,
                    reference,
                    kind="diagonal",
                )

    return builder.build()
