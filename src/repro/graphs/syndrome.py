"""Error sampling, syndromes, and logical-error evaluation.

A *syndrome* is the set of defect vertices (stabilizers whose measurement
outcome flipped).  We sample syndromes by flipping every decoding-graph edge
independently with its error probability and taking the parity of flipped
edges incident to each real vertex; virtual vertices absorb chains without
producing defects (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .decoding_graph import DecodingGraph

#: Sentinel used in matchings to denote "matched to the boundary".
BOUNDARY = -1


@dataclass(frozen=True)
class Syndrome:
    """A sampled decoding instance.

    Attributes:
        defects: sorted tuple of defect vertex indices (all non-virtual).
        error_edges: edges that actually flipped (ground truth; empty when the
            syndrome was supplied externally).
        logical_flip: whether the ground-truth error flips the logical
            observable (None when unknown).
    """

    defects: tuple[int, ...]
    error_edges: tuple[int, ...] = ()
    logical_flip: bool | None = None

    @property
    def defect_count(self) -> int:
        return len(self.defects)

    def defects_in_layers(self, graph: DecodingGraph, layers: set[int]) -> tuple[int, ...]:
        """Subset of the defects lying in the given measurement rounds."""
        return tuple(
            d for d in self.defects if graph.vertices[d].layer in layers
        )


@dataclass
class MatchingResult:
    """Output of a decoder: a pairing of every defect vertex.

    ``pairs`` contains tuples ``(u, v)`` of defect vertices matched to each
    other and ``(u, BOUNDARY)`` for defects matched to the boundary (with the
    concrete virtual vertex recorded in ``boundary_vertices`` when known).
    ``weight`` is the total matching weight in decoding-graph units.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    boundary_vertices: dict[int, int] = field(default_factory=dict)
    weight: int = 0

    def matched_vertices(self) -> list[int]:
        vertices: list[int] = []
        for u, v in self.pairs:
            vertices.append(u)
            if v != BOUNDARY:
                vertices.append(v)
        return vertices

    def validate_perfect(self, defects: Sequence[int]) -> None:
        """Raise ``ValueError`` unless every defect is matched exactly once."""
        matched = self.matched_vertices()
        if len(matched) != len(set(matched)):
            raise ValueError("a defect vertex is matched more than once")
        if set(matched) != set(defects):
            missing = set(defects) - set(matched)
            extra = set(matched) - set(defects)
            raise ValueError(
                f"matching is not perfect (missing={sorted(missing)}, extra={sorted(extra)})"
            )


class SyndromeSampler:
    """Samples decoding instances from a decoding graph's error model."""

    def __init__(self, graph: DecodingGraph, seed: int | None = None) -> None:
        self.graph = graph
        self.rng = np.random.default_rng(seed)
        self._probabilities = np.array(
            [edge.probability for edge in graph.edges], dtype=float
        )

    def sample(self) -> Syndrome:
        """Sample one syndrome by flipping each edge independently."""
        flips = self.rng.random(len(self._probabilities)) < self._probabilities
        error_edges = tuple(int(i) for i in np.flatnonzero(flips))
        return self.syndrome_from_errors(error_edges)

    def sample_batch(self, count: int) -> list[Syndrome]:
        return [self.sample() for _ in range(count)]

    def syndrome_from_errors(self, error_edges: Iterable[int]) -> Syndrome:
        """Derive the syndrome produced by a known set of flipped edges."""
        error_edges = tuple(sorted(set(error_edges)))
        parity = [0] * self.graph.num_vertices
        for edge_index in error_edges:
            edge = self.graph.edges[edge_index]
            parity[edge.u] ^= 1
            parity[edge.v] ^= 1
        defects = tuple(
            index
            for index, flipped in enumerate(parity)
            if flipped and not self.graph.is_virtual(index)
        )
        logical_flip = self.graph.crosses_observable(error_edges)
        return Syndrome(defects=defects, error_edges=error_edges, logical_flip=logical_flip)


def matching_weight(graph: DecodingGraph, result: MatchingResult) -> int:
    """Total decoding-graph weight realised by a matching.

    Defect pairs contribute their shortest-path distance; boundary matches
    contribute the distance to the specific virtual vertex they were matched
    to (or to the nearest one when unspecified).  Exact decoders must realise
    the same total weight as the reference MWPM decoder.
    """
    total = 0
    for u, v in result.pairs:
        if v == BOUNDARY:
            target = result.boundary_vertices.get(u)
            if target is None:
                distance, _ = graph.nearest_virtual(u)
            else:
                distance = graph.distance(u, target)
            total += distance
        else:
            total += graph.distance(u, v)
    return total


def correction_edges(graph: DecodingGraph, result: MatchingResult) -> set[int]:
    """Expand a matching into a correction (set of decoding-graph edges)."""
    correction: set[int] = set()
    for u, v in result.pairs:
        if v == BOUNDARY:
            target = result.boundary_vertices.get(u)
            if target is None:
                _, target = graph.nearest_virtual(u)
            if target < 0:
                raise ValueError(f"defect {u} cannot reach any boundary vertex")
        else:
            target = v
        for edge_index in graph.shortest_path_edges(u, target):
            if edge_index in correction:
                correction.discard(edge_index)
            else:
                correction.add(edge_index)
    return correction


def is_logical_error(
    graph: DecodingGraph, syndrome: Syndrome, result: MatchingResult
) -> bool:
    """Compare the decoder's correction with the ground-truth error.

    A logical error occurs when the parity of observable crossings of the
    correction differs from that of the actual error chain.
    """
    if syndrome.logical_flip is None:
        raise ValueError("syndrome does not carry ground-truth information")
    correction = correction_edges(graph, result)
    predicted_flip = graph.crosses_observable(correction)
    return predicted_flip != syndrome.logical_flip


def residual_defects(
    graph: DecodingGraph, syndrome: Syndrome, correction: Iterable[int]
) -> tuple[int, ...]:
    """Defects that remain after applying ``correction`` on top of the error.

    A valid correction must annihilate every defect; this is used by tests as
    a structural invariant for every decoder.
    """
    parity = [0] * graph.num_vertices
    for edge_index in list(syndrome.error_edges) + list(correction):
        edge = graph.edges[edge_index]
        parity[edge.u] ^= 1
        parity[edge.v] ^= 1
    return tuple(
        index
        for index, flipped in enumerate(parity)
        if flipped and not graph.is_virtual(index)
    )
