"""Error sampling, syndromes, and logical-error evaluation.

A *syndrome* is the set of defect vertices (stabilizers whose measurement
outcome flipped).  We sample syndromes by flipping every decoding-graph edge
independently with its error probability and taking the parity of flipped
edges incident to each real vertex; virtual vertices absorb chains without
producing defects (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .decoding_graph import DecodingGraph

#: Sentinel used in matchings to denote "matched to the boundary".
BOUNDARY = -1


def _uint32_threshold(probability: float) -> np.uint32:
    """Fixed-point comparison threshold of a probability in [0, 1].

    A 32-bit lane fires when it is below ``round(p * 2**32)``; probabilities
    within ``2**-33`` of 1 clip to ``2**32 - 1`` (a miss chance of ``2**-32``
    per draw — immaterial, and it keeps the threshold in uint32 range).
    """
    return np.uint32(min(int(round(probability * float(1 << 32))), (1 << 32) - 1))


@dataclass(frozen=True)
class Syndrome:
    """A sampled decoding instance.

    Attributes:
        defects: sorted tuple of defect vertex indices (all non-virtual).
        error_edges: edges that actually flipped (ground truth; empty when the
            syndrome was supplied externally).
        logical_flip: whether the ground-truth error flips the logical
            observable (None when unknown).
        erasures: sorted tuple of *heralded* erased edge indices (empty for
            non-erasure noise).  Erasure-aware decoders treat these edges as
            zero-weight; an erased edge flipped with probability 1/2 and
            appears in ``error_edges`` only when it actually did.
    """

    defects: tuple[int, ...]
    error_edges: tuple[int, ...] = ()
    logical_flip: bool | None = None
    erasures: tuple[int, ...] = ()

    @property
    def defect_count(self) -> int:
        return len(self.defects)

    def to_dict(self) -> dict:
        """JSON-shaped wire form (the network decode service's codec).

        ``erasures`` appears only when non-empty, so the wire form (and every
        content hash over it) of erasure-free syndromes is byte-identical to
        earlier releases.

        >>> Syndrome((1, 4), logical_flip=True).to_dict()
        {'defects': [1, 4], 'error_edges': [], 'logical_flip': True}
        >>> Syndrome((1,), erasures=(0, 2)).to_dict()["erasures"]
        [0, 2]
        """
        data = {
            "defects": list(self.defects),
            "error_edges": list(self.error_edges),
            "logical_flip": self.logical_flip,
        }
        if self.erasures:
            data["erasures"] = list(self.erasures)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Syndrome":
        """Inverse of :meth:`to_dict`.

        >>> Syndrome.from_dict({"defects": [2]}) == Syndrome((2,))
        True
        """
        flip = data.get("logical_flip")
        return cls(
            defects=tuple(int(d) for d in data["defects"]),
            error_edges=tuple(int(e) for e in data.get("error_edges", ())),
            logical_flip=None if flip is None else bool(flip),
            erasures=tuple(int(e) for e in data.get("erasures", ())),
        )

    def defects_in_layers(
        self, graph: DecodingGraph, layers: Iterable[int]
    ) -> tuple[int, ...]:
        """Subset of the defects lying in the given measurement rounds.

        ``layers`` may be any iterable of layer indices (a set, list, range or
        generator); it is materialised once so one-shot iterables work too.
        """
        layer_set = frozenset(layers)
        return tuple(
            d for d in self.defects if graph.vertices[d].layer in layer_set
        )

    def defects_by_layer(self, graph: DecodingGraph) -> tuple[tuple[int, ...], ...]:
        """The defects split per measurement round, in arrival order.

        Returns one (possibly empty) tuple per graph layer; concatenating
        them restores ``defects`` exactly.  This is the push schedule of the
        streaming decoders: round ``r``'s entry is what
        :meth:`repro.api.StreamingDecoder.push_round` receives.
        """
        rounds: list[list[int]] = [[] for _ in range(graph.num_layers)]
        for defect in self.defects:
            rounds[graph.vertices[defect].layer].append(defect)
        return tuple(tuple(layer) for layer in rounds)


@dataclass
class MatchingResult:
    """Output of a decoder: a pairing of every defect vertex.

    ``pairs`` contains tuples ``(u, v)`` of defect vertices matched to each
    other and ``(u, BOUNDARY)`` for defects matched to the boundary (with the
    concrete virtual vertex recorded in ``boundary_vertices`` when known).
    ``weight`` is the total matching weight in decoding-graph units.
    """

    pairs: list[tuple[int, int]] = field(default_factory=list)
    boundary_vertices: dict[int, int] = field(default_factory=dict)
    weight: int = 0

    def to_dict(self) -> dict:
        """JSON-shaped wire form (pairs as 2-lists, vertex keys as strings).

        >>> MatchingResult(pairs=[(0, BOUNDARY)], weight=3).to_dict()
        {'pairs': [[0, -1]], 'boundary_vertices': {}, 'weight': 3}
        """
        return {
            "pairs": [[int(u), int(v)] for u, v in self.pairs],
            "boundary_vertices": {
                str(defect): int(virtual)
                for defect, virtual in self.boundary_vertices.items()
            },
            "weight": int(self.weight),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MatchingResult":
        """Inverse of :meth:`to_dict`.

        >>> MatchingResult.from_dict({"pairs": [[0, -1]], "weight": 3}).weight
        3
        """
        return cls(
            pairs=[(int(u), int(v)) for u, v in data.get("pairs", [])],
            boundary_vertices={
                int(defect): int(virtual)
                for defect, virtual in data.get("boundary_vertices", {}).items()
            },
            weight=int(data.get("weight", 0)),
        )

    def matched_vertices(self) -> list[int]:
        vertices: list[int] = []
        for u, v in self.pairs:
            vertices.append(u)
            if v != BOUNDARY:
                vertices.append(v)
        return vertices

    def validate_perfect(self, defects: Sequence[int]) -> None:
        """Raise ``ValueError`` unless every defect is matched exactly once."""
        matched = self.matched_vertices()
        if len(matched) != len(set(matched)):
            raise ValueError("a defect vertex is matched more than once")
        if set(matched) != set(defects):
            missing = set(defects) - set(matched)
            extra = set(matched) - set(defects)
            raise ValueError(
                f"matching is not perfect (missing={sorted(missing)}, extra={sorted(extra)})"
            )


class SyndromeSampler:
    """Samples decoding instances from a decoding graph's error model.

    Edge flips are decided stim-style, in fixed point: the generator produces
    raw 64-bit words, each word is split into two 32-bit lanes, and lane ``i``
    flips edge ``i`` when it is below the edge's threshold
    ``round(p_e * 2**32)``.  The realised flip probability is therefore
    ``round(p_e * 2**32) / 2**32`` — within ``2**-33`` absolutely of ``p_e``,
    i.e. exact for every physically meaningful error rate — while consuming
    half the random words of a float64 draw, which is the hot path of
    Monte-Carlo evaluation.  The bit generator is
    :class:`numpy.random.SFC64`, the fastest one numpy ships.

    ``seed`` accepts an int, a :class:`numpy.random.SeedSequence` (so sharded
    evaluation engines can hand each sampler its own spawn-keyed sequence), an
    existing :class:`numpy.random.Generator`, or ``None`` for OS entropy.

    :meth:`sample_batch` consumes the exact same word stream as the
    equivalent number of :meth:`sample` calls, so the two are bit-identical
    per shot and can be mixed freely on one sampler.

    *Dynamic* noise models (correlated bursts, erasures — flagged by
    :attr:`repro.graphs.NoiseModel.is_dynamic` on the graph's recorded noise
    model) consume extra random words per shot, in a fixed per-shot layout:
    first the burst-chain words (one 32-bit lane per measurement round), then
    the erasure words (one lane per edge), then the usual flip words.  Both
    the scalar and the batch path draw whole shots from that identical
    layout, so the scalar==batch bit-identity contract extends to every
    family — and static models consume the exact word stream they always
    did.
    """

    #: Cap on raw 64-bit words drawn per internal chunk of
    #: :meth:`sample_batch` (bounds peak memory and keeps the flip buffers
    #: cache-sized; chunking does not change the RNG stream).
    _CHUNK_WORDS = 1 << 20

    def __init__(
        self,
        graph: DecodingGraph,
        seed: int | np.random.SeedSequence | np.random.Generator | None = None,
    ) -> None:
        self.graph = graph
        if isinstance(seed, np.random.Generator):
            self.rng = seed
        else:
            self.rng = np.random.Generator(np.random.SFC64(seed))
        self._probabilities = np.array(
            [edge.probability for edge in graph.edges], dtype=float
        )
        #: One 64-bit word feeds two 32-bit comparison lanes; the surplus lane
        #: of an odd edge count is padded with a never-flipping zero threshold.
        self._words_per_shot = (graph.num_edges + 1) // 2
        self._thresholds = np.zeros(2 * self._words_per_shot, dtype=np.uint32)
        self._thresholds[: graph.num_edges] = np.round(
            self._probabilities * float(1 << 32)
        ).astype(np.uint32)
        # Dynamic-noise machinery (bursts/erasures): extra word groups per
        # shot, laid out [chain words][erasure words][flip words].  Static
        # models keep `_shot_words == _words_per_shot` and the original
        # single-group stream, so their RNG consumption is unchanged.
        model = graph.noise_model
        self._dynamic = model is not None and model.is_dynamic
        self._chain_words = 0
        self._erasure_words = 0
        if self._dynamic and model.burst_entry > 0.0:
            self._chain_words = (graph.num_layers + 1) // 2
            self._entry_threshold = _uint32_threshold(model.burst_entry)
            self._exit_threshold = _uint32_threshold(model.burst_exit)
            boosted = self._probabilities * model.burst_multiplier
            self._burst_thresholds = np.zeros(
                2 * self._words_per_shot, dtype=np.uint32
            )
            self._burst_thresholds[: graph.num_edges] = np.round(
                boosted * float(1 << 32)
            ).astype(np.uint32)
            # An edge "belongs" to the round of its later endpoint — the
            # round whose measurement realises the error.  Padding lanes get
            # layer 0; their thresholds are 0 either way.
            layers = np.zeros(2 * self._words_per_shot, dtype=np.int64)
            layers[: graph.num_edges] = [
                max(graph.vertices[e.u].layer, graph.vertices[e.v].layer)
                for e in graph.edges
            ]
            self._edge_lane_layers = layers
        if self._dynamic and model.erasure > 0.0:
            self._erasure_words = self._words_per_shot
            self._erasure_thresholds = np.zeros(
                2 * self._words_per_shot, dtype=np.uint32
            )
            self._erasure_thresholds[: graph.num_edges] = _uint32_threshold(
                model.erasure
            )
        self._shot_words = (
            self._chain_words + self._erasure_words + self._words_per_shot
        )
        self._chunk_shots = max(1, self._CHUNK_WORDS // max(1, self._shot_words))
        self._incidence: tuple[np.ndarray, ...] | None = None
        self._flip_buffer: np.ndarray | None = None

    def _burst_rounds(self, chain_lanes: np.ndarray) -> np.ndarray:
        """Advance the burst Markov chain over the rounds of each shot.

        ``chain_lanes`` is ``(shots, num_layers)`` uint32; the result is the
        ``(shots, num_layers)`` boolean burst state per round.  Each shot's
        chain starts quiet; a quiet round bursts when its lane falls below
        the entry threshold, a bursting round recovers when its lane falls
        below the exit threshold.  Scalar and batch sampling share this
        exact comparison sequence, preserving bit-identity.
        """
        shots, layers = chain_lanes.shape
        burst = np.empty((shots, layers), dtype=bool)
        state = np.zeros(shots, dtype=bool)
        for r in range(layers):
            lane = chain_lanes[:, r]
            state = np.where(state, lane >= self._exit_threshold, lane < self._entry_threshold)
            burst[:, r] = state
        return burst

    def _shot_thresholds(
        self, burst: np.ndarray | None, erased: np.ndarray | None
    ) -> np.ndarray:
        """Effective per-lane flip thresholds of one or more shots.

        ``burst`` is ``(shots, num_layers)`` bool (or None without a chain);
        ``erased`` is ``(shots, 2 * words_per_shot)`` bool (or None without
        erasures).  Bursting rounds use the boosted thresholds; erased lanes
        flip with probability 1/2 regardless of bursts.
        """
        thresholds: np.ndarray = self._thresholds
        if burst is not None:
            thresholds = np.where(
                burst[:, self._edge_lane_layers], self._burst_thresholds, thresholds
            )
        if erased is not None:
            thresholds = np.where(erased, np.uint32(1 << 31), thresholds)
        return thresholds

    def sample(self) -> Syndrome:
        """Sample one syndrome by flipping each edge independently."""
        if not self._dynamic:
            lanes = self.rng.bit_generator.random_raw(self._words_per_shot).view(
                np.uint32
            )
            flips = lanes < self._thresholds
            error_edges = tuple(
                int(i) for i in np.flatnonzero(flips[: self.graph.num_edges])
            )
            return self.syndrome_from_errors(error_edges)
        lanes = self.rng.bit_generator.random_raw(self._shot_words).view(np.uint32)
        offset = 0
        burst = None
        if self._chain_words:
            burst = self._burst_rounds(
                lanes[np.newaxis, : self.graph.num_layers]
            )
            offset = 2 * self._chain_words
        erased = None
        erasures: tuple[int, ...] = ()
        if self._erasure_words:
            erasure_lanes = lanes[offset : offset + 2 * self._erasure_words]
            erased = (erasure_lanes < self._erasure_thresholds)[np.newaxis, :]
            erasures = tuple(
                int(i) for i in np.flatnonzero(erased[0, : self.graph.num_edges])
            )
            offset += 2 * self._erasure_words
        # A dynamic model has a chain, erasures, or both, so the effective
        # thresholds always come back with a leading shot axis here.
        thresholds = self._shot_thresholds(burst, erased)
        flips = lanes[offset:] < thresholds[0]
        error_edges = tuple(
            int(i) for i in np.flatnonzero(flips[: self.graph.num_edges])
        )
        return self.syndrome_from_errors(error_edges, erasures=erasures)

    def sample_rounds(self) -> tuple[Syndrome, tuple[tuple[int, ...], ...]]:
        """Sample one syndrome and emit its defects round by round.

        Returns ``(syndrome, rounds)`` where ``rounds[r]`` holds the defects
        produced by measurement round ``r`` — the push schedule for a
        :class:`repro.api.StreamingDecoder`.  The underlying draw is one
        ordinary :meth:`sample` call, so a round-streamed shot is
        bit-identical to (and freely interleavable with) batch sampling.
        """
        syndrome = self.sample()
        return syndrome, syndrome.defects_by_layer(self.graph)

    def _incidence_arrays(self) -> tuple[np.ndarray, ...]:
        """Sparse incidence matrix of the graph, restricted to real vertices.

        Returns ``(real_vertices, u_rows, v_rows, observable)`` where
        ``real_vertices`` maps parity-matrix rows back to vertex indices,
        ``u_rows[e]`` / ``v_rows[e]`` are the parity-matrix rows of edge
        ``e``'s endpoints (-1 for virtual endpoints, which absorb chains
        without producing defects), and ``observable`` flags the edges of the
        logical observable.
        """
        if self._incidence is None:
            graph = self.graph
            real_vertices = np.array(
                [v.index for v in graph.vertices if not v.is_virtual],
                dtype=np.int64,
            )
            row_of = np.full(graph.num_vertices, -1, dtype=np.int64)
            row_of[real_vertices] = np.arange(len(real_vertices))
            u_rows = np.array([row_of[e.u] for e in graph.edges], dtype=np.int64)
            v_rows = np.array([row_of[e.v] for e in graph.edges], dtype=np.int64)
            observable = np.array(
                [e.index in graph.observable_edges for e in graph.edges], dtype=bool
            )
            self._incidence = (real_vertices, u_rows, v_rows, observable)
        return self._incidence

    def sample_batch(self, count: int) -> list[Syndrome]:
        """Sample ``count`` syndromes with one vectorized draw per chunk.

        The ``(count, num_edges)`` error matrix is drawn in a single RNG call
        (chunked only to bound memory), and defects / logical flips are derived
        through the incidence matrix with array operations instead of per-shot
        Python loops.  The result is bit-identical per shot to ``count``
        sequential :meth:`sample` calls from the same RNG state, and leaves the
        sampler in the same RNG state afterwards.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        syndromes: list[Syndrome] = []
        remaining = count
        while remaining > 0:
            take = min(self._chunk_shots, remaining)
            self._sample_chunk(take, syndromes)
            remaining -= take
        return syndromes

    def _sample_chunk(self, count: int, out: list[Syndrome]) -> None:
        real_vertices, u_rows, v_rows, observable = self._incidence_arrays()
        num_real = len(real_vertices)
        num_lanes = 2 * self._words_per_shot
        if self._flip_buffer is None:
            self._flip_buffer = np.empty((self._chunk_shots, num_lanes), dtype=bool)
        if self._dynamic:
            flips, erasure_data = self._dynamic_chunk_flips(count)
        else:
            erasure_data = None
            lanes = (
                self.rng.bit_generator.random_raw(count * self._words_per_shot)
                .view(np.uint32)
                .reshape(count, num_lanes)
            )
            flips = self._flip_buffer[:count]
            np.less(lanes, self._thresholds, out=flips)
        # ``flatnonzero`` scans row-major, so per-shot edge indices come out
        # sorted exactly like the scalar path's.  Padding lanes carry a zero
        # threshold and can never flip, so every index maps to a real edge.
        flat = np.flatnonzero(np.ravel(flips))
        shot_index = flat // num_lanes
        edge_index = flat - shot_index * num_lanes

        # Defect parity through the incidence matrix: each flipped edge
        # toggles its real endpoints, and a vertex is a defect when it is
        # toggled an odd number of times.
        endpoint_u = u_rows[edge_index]
        endpoint_v = v_rows[edge_index]
        base = shot_index * num_real
        toggles = np.concatenate(
            [(base + endpoint_u)[endpoint_u >= 0], (base + endpoint_v)[endpoint_v >= 0]]
        )
        keys, multiplicity = np.unique(toggles, return_counts=True)
        odd = keys[(multiplicity & 1).astype(bool)]
        defect_shot = odd // num_real
        defect_vertices = tuple(real_vertices[odd - defect_shot * num_real].tolist())
        defect_offsets = np.bincount(defect_shot, minlength=count).cumsum().tolist()

        error_edges = tuple(edge_index.tolist())
        edge_offsets = np.bincount(shot_index, minlength=count).cumsum().tolist()

        logical_flips = (
            np.bincount(shot_index[observable[edge_index]], minlength=count) & 1
        ).astype(bool).tolist()

        # Hot path: ``Syndrome`` instances are assembled via ``__new__`` plus a
        # direct ``__dict__`` assignment, skipping the frozen-dataclass
        # ``__init__`` (which routes every field through
        # ``object.__setattr__``).  The instances are indistinguishable from
        # normally-constructed ones; ``erasures`` left out of the ``__dict__``
        # falls back to the class-level default ``()``.
        make = object.__new__
        cls = Syndrome
        defect_start = 0
        edge_start = 0
        if erasure_data is None:
            for defect_stop, edge_stop, flip in zip(
                defect_offsets, edge_offsets, logical_flips
            ):
                syndrome = make(cls)
                syndrome.__dict__["defects"] = defect_vertices[defect_start:defect_stop]
                syndrome.__dict__["error_edges"] = error_edges[edge_start:edge_stop]
                syndrome.__dict__["logical_flip"] = flip
                out.append(syndrome)
                defect_start = defect_stop
                edge_start = edge_stop
        else:
            erased_edges, erasure_offsets = erasure_data
            erasure_start = 0
            for defect_stop, edge_stop, erasure_stop, flip in zip(
                defect_offsets, edge_offsets, erasure_offsets, logical_flips
            ):
                syndrome = make(cls)
                syndrome.__dict__["defects"] = defect_vertices[defect_start:defect_stop]
                syndrome.__dict__["error_edges"] = error_edges[edge_start:edge_stop]
                syndrome.__dict__["logical_flip"] = flip
                syndrome.__dict__["erasures"] = erased_edges[erasure_start:erasure_stop]
                out.append(syndrome)
                defect_start = defect_stop
                edge_start = edge_stop
                erasure_start = erasure_stop

    def _dynamic_chunk_flips(
        self, count: int
    ) -> tuple[np.ndarray, tuple[tuple[int, ...], list[int]] | None]:
        """Draw and threshold one chunk of dynamic-noise shots.

        Returns ``(flips, erasure_data)``: the ``(count, num_lanes)`` flip
        matrix, plus — for erasure models — the flattened per-shot erased
        edge indices and their cumulative offsets (None otherwise).  The
        word stream is consumed in whole shots of the same
        chain/erasure/flip layout as :meth:`sample`, so chunked batches stay
        bit-identical to scalar draws.
        """
        num_lanes = 2 * self._words_per_shot
        words = (
            self.rng.bit_generator.random_raw(count * self._shot_words)
            .view(np.uint32)
            .reshape(count, 2 * self._shot_words)
        )
        col = 0
        burst = None
        if self._chain_words:
            burst = self._burst_rounds(words[:, : self.graph.num_layers])
            col = 2 * self._chain_words
        erased = None
        erasure_data = None
        if self._erasure_words:
            erased = words[:, col : col + num_lanes] < self._erasure_thresholds
            col += num_lanes
            flat = np.flatnonzero(np.ravel(erased))
            shot_index = flat // num_lanes
            edge_index = flat - shot_index * num_lanes
            erasure_data = (
                tuple(edge_index.tolist()),
                np.bincount(shot_index, minlength=count).cumsum().tolist(),
            )
        thresholds = self._shot_thresholds(burst, erased)
        flips = self._flip_buffer[:count]
        np.less(words[:, col:], thresholds, out=flips)
        return flips, erasure_data

    def syndrome_from_errors(
        self, error_edges: Iterable[int], erasures: Iterable[int] = ()
    ) -> Syndrome:
        """Derive the syndrome produced by a known set of flipped edges."""
        error_edges = tuple(sorted(set(error_edges)))
        parity = [0] * self.graph.num_vertices
        for edge_index in error_edges:
            edge = self.graph.edges[edge_index]
            parity[edge.u] ^= 1
            parity[edge.v] ^= 1
        defects = tuple(
            index
            for index, flipped in enumerate(parity)
            if flipped and not self.graph.is_virtual(index)
        )
        logical_flip = self.graph.crosses_observable(error_edges)
        return Syndrome(
            defects=defects,
            error_edges=error_edges,
            logical_flip=logical_flip,
            erasures=tuple(sorted(set(int(e) for e in erasures))),
        )


def matching_weight(graph: DecodingGraph, result: MatchingResult) -> int:
    """Total decoding-graph weight realised by a matching.

    Defect pairs contribute their shortest-path distance; boundary matches
    contribute the distance to the specific virtual vertex they were matched
    to (or to the nearest one when unspecified).  Exact decoders must realise
    the same total weight as the reference MWPM decoder.
    """
    total = 0
    for u, v in result.pairs:
        if v == BOUNDARY:
            target = result.boundary_vertices.get(u)
            if target is None:
                distance, _ = graph.nearest_virtual(u)
            else:
                distance = graph.distance(u, target)
            total += distance
        else:
            total += graph.distance(u, v)
    return total


def matching_from_correction(
    graph: DecodingGraph, defects: Sequence[int], correction: Iterable[int]
) -> MatchingResult:
    """Derive a defect pairing from a correction edge set.

    The endpoints of the correction paths are exactly the vertices of odd
    degree in the correction subgraph: the defects, plus the boundary
    vertices absorbing unpaired parity.  Defects in the same connected
    component are paired with each other; a leftover defect is matched to a
    boundary vertex of its component.  The weight is the total weight of the
    correction edges (not a shortest-path matching weight — used by decoders
    that are approximate by design, and by streaming adapters that only hold
    a correction for part of the instance).
    """
    defect_set = set(defects)
    adjacency: dict[int, list[int]] = {}
    degree: dict[int, int] = {}
    weight = 0
    for edge_index in correction:
        edge = graph.edges[edge_index]
        weight += edge.weight
        adjacency.setdefault(edge.u, []).append(edge.v)
        adjacency.setdefault(edge.v, []).append(edge.u)
        degree[edge.u] = degree.get(edge.u, 0) + 1
        degree[edge.v] = degree.get(edge.v, 0) + 1

    result = MatchingResult(weight=weight)
    seen: set[int] = set()
    for start in sorted(adjacency):
        if start in seen:
            continue
        component: set[int] = set()
        queue = [start]
        seen.add(start)
        while queue:
            vertex = queue.pop()
            component.add(vertex)
            for neighbor in adjacency.get(vertex, []):
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        odd = [v for v in sorted(component) if degree.get(v, 0) % 2 == 1]
        odd_defects = [v for v in odd if v in defect_set]
        odd_boundary = [v for v in odd if v not in defect_set]
        for first, second in zip(odd_defects[0::2], odd_defects[1::2]):
            result.pairs.append((first, second))
        if len(odd_defects) % 2 == 1:
            leftover = odd_defects[-1]
            result.pairs.append((leftover, BOUNDARY))
            if odd_boundary:
                result.boundary_vertices[leftover] = odd_boundary[0]
    matched = set(result.matched_vertices())
    if matched != defect_set:
        # Degenerate corrections (e.g. a defect whose paths cancelled out)
        # leave defects without correction edges; they must still appear
        # in the matching, matched to the nearest boundary for weight 0+.
        for defect in sorted(defect_set - matched):
            result.pairs.append((defect, BOUNDARY))
    result.validate_perfect(list(defects))
    return result


def correction_edges(graph: DecodingGraph, result: MatchingResult) -> set[int]:
    """Expand a matching into a correction (set of decoding-graph edges)."""
    correction: set[int] = set()
    for u, v in result.pairs:
        if v == BOUNDARY:
            target = result.boundary_vertices.get(u)
            if target is None:
                _, target = graph.nearest_virtual(u)
            if target < 0:
                raise ValueError(f"defect {u} cannot reach any boundary vertex")
        else:
            target = v
        for edge_index in graph.shortest_path_edges(u, target):
            if edge_index in correction:
                correction.discard(edge_index)
            else:
                correction.add(edge_index)
    return correction


def is_logical_error(
    graph: DecodingGraph, syndrome: Syndrome, result: MatchingResult
) -> bool:
    """Compare the decoder's correction with the ground-truth error.

    A logical error occurs when the parity of observable crossings of the
    correction differs from that of the actual error chain.
    """
    if syndrome.logical_flip is None:
        raise ValueError("syndrome does not carry ground-truth information")
    correction = correction_edges(graph, result)
    predicted_flip = graph.crosses_observable(correction)
    return predicted_flip != syndrome.logical_flip


def residual_defects(
    graph: DecodingGraph, syndrome: Syndrome, correction: Iterable[int]
) -> tuple[int, ...]:
    """Defects that remain after applying ``correction`` on top of the error.

    A valid correction must annihilate every defect; this is used by tests as
    a structural invariant for every decoder.
    """
    parity = [0] * graph.num_vertices
    for edge_index in list(syndrome.error_edges) + list(correction):
        edge = graph.edges[edge_index]
        parity[edge.u] ^= 1
        parity[edge.v] ^= 1
    return tuple(
        index
        for index, flipped in enumerate(parity)
        if flipped and not graph.is_virtual(index)
    )
