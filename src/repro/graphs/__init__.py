"""Decoding-graph substrate: codes, noise models, syndromes."""

from .decoding_graph import (
    DEFAULT_MAX_WEIGHT,
    WEIGHT_DOUBLING,
    DecodingGraph,
    Edge,
    GraphBuilder,
    Vertex,
    quantized_weight,
)
from .noise import (
    NOISE_FAMILY_NAMES,
    NoiseModel,
    NoiseModelError,
    circuit_level_noise,
    code_capacity_noise,
    correlated_burst_noise,
    erasure_noise,
    noise_model_by_name,
    phenomenological_noise,
    time_varying_noise,
)
from .repetition_code import repetition_code_decoding_graph
from .surface_code import SurfaceCodeLayout, surface_code_decoding_graph
from .syndrome import (
    BOUNDARY,
    MatchingResult,
    Syndrome,
    SyndromeSampler,
    correction_edges,
    is_logical_error,
    matching_from_correction,
    residual_defects,
)

__all__ = [
    "DEFAULT_MAX_WEIGHT",
    "WEIGHT_DOUBLING",
    "DecodingGraph",
    "Edge",
    "GraphBuilder",
    "Vertex",
    "quantized_weight",
    "NOISE_FAMILY_NAMES",
    "NoiseModel",
    "NoiseModelError",
    "circuit_level_noise",
    "code_capacity_noise",
    "correlated_burst_noise",
    "erasure_noise",
    "noise_model_by_name",
    "phenomenological_noise",
    "time_varying_noise",
    "repetition_code_decoding_graph",
    "SurfaceCodeLayout",
    "surface_code_decoding_graph",
    "BOUNDARY",
    "MatchingResult",
    "Syndrome",
    "SyndromeSampler",
    "correction_edges",
    "is_logical_error",
    "matching_from_correction",
    "residual_defects",
]
