"""Noise models used to construct decoding graphs.

Three families are supported, matching the artifact of the paper (§A.6):

* **code capacity** — only data-qubit errors, perfect measurements, a single
  measurement round (2D decoding graph).
* **phenomenological** — data-qubit errors plus independent measurement errors,
  ``rounds`` measurement rounds (3D decoding graph with vertical edges).
* **circuit level** — like phenomenological plus space-time correlated ("hook")
  error mechanisms represented by diagonal edges between consecutive rounds
  (Figure 1c of the paper).

The noise model fixes the probability of every edge *kind*; the code-family
builders then create edges with these probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass


class NoiseModelError(ValueError):
    """Raised when a noise model is configured inconsistently."""


@dataclass(frozen=True)
class NoiseModel:
    """Per-edge-kind error probabilities of a decoding graph.

    Attributes:
        name: one of ``code_capacity``, ``phenomenological``, ``circuit_level``.
        spatial: probability of a data-qubit error (spatial edge).
        temporal: probability of a measurement error (time-like edge); zero for
            code-capacity noise.
        diagonal: probability of a hook/space-time error (diagonal edge); zero
            unless the model is circuit level.
        boundary: probability of a data-qubit error on a boundary edge.
    """

    name: str
    spatial: float
    temporal: float
    diagonal: float
    boundary: float

    def __post_init__(self) -> None:
        for field_name in ("spatial", "temporal", "diagonal", "boundary"):
            value = getattr(self, field_name)
            if value < 0.0 or value >= 0.5:
                raise NoiseModelError(
                    f"{field_name} probability must lie in [0, 0.5), got {value}"
                )
        if self.spatial <= 0.0:
            raise NoiseModelError("spatial probability must be positive")

    @property
    def is_three_dimensional(self) -> bool:
        return self.temporal > 0.0

    @property
    def minimum_probability(self) -> float:
        """Smallest nonzero edge probability (used as the weight reference)."""
        candidates = [
            p
            for p in (self.spatial, self.temporal, self.diagonal, self.boundary)
            if p > 0.0
        ]
        return min(candidates)

    def probability_for_kind(self, kind: str) -> float:
        mapping = {
            "spatial": self.spatial,
            "temporal": self.temporal,
            "diagonal": self.diagonal,
            "boundary": self.boundary,
        }
        try:
            return mapping[kind]
        except KeyError as exc:  # pragma: no cover - defensive
            raise NoiseModelError(f"unknown edge kind {kind!r}") from exc


def code_capacity_noise(p: float) -> NoiseModel:
    """Data-qubit errors only; measurements are perfect."""
    return NoiseModel(
        name="code_capacity", spatial=p, temporal=0.0, diagonal=0.0, boundary=p
    )


def phenomenological_noise(p: float) -> NoiseModel:
    """Data-qubit errors plus measurement errors of the same probability."""
    return NoiseModel(
        name="phenomenological", spatial=p, temporal=p, diagonal=0.0, boundary=p
    )


def circuit_level_noise(p: float, hook_fraction: float = 0.5) -> NoiseModel:
    """Circuit-level noise: adds diagonal (hook) error mechanisms.

    ``hook_fraction`` scales the diagonal edge probability relative to ``p``;
    the exact value only shifts weights slightly and does not change the shape
    of any evaluation result.
    """
    if not 0.0 < hook_fraction <= 1.0:
        raise NoiseModelError("hook_fraction must lie in (0, 1]")
    return NoiseModel(
        name="circuit_level",
        spatial=p,
        temporal=p,
        diagonal=p * hook_fraction,
        boundary=p,
    )


def noise_model_by_name(name: str, p: float) -> NoiseModel:
    """Factory used by command-line style entry points and the test matrix."""
    factories = {
        "code_capacity": code_capacity_noise,
        "phenomenological": phenomenological_noise,
        "circuit_level": circuit_level_noise,
    }
    try:
        factory = factories[name]
    except KeyError as exc:
        raise NoiseModelError(
            f"unknown noise model {name!r}; expected one of {sorted(factories)}"
        ) from exc
    return factory(p)
