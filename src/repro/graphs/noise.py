"""Noise models used to construct decoding graphs.

Three i.i.d. families match the artifact of the paper (§A.6):

* **code capacity** — only data-qubit errors, perfect measurements, a single
  measurement round (2D decoding graph).
* **phenomenological** — data-qubit errors plus independent measurement errors,
  ``rounds`` measurement rounds (3D decoding graph with vertical edges).
* **circuit level** — like phenomenological plus space-time correlated ("hook")
  error mechanisms represented by diagonal edges between consecutive rounds
  (Figure 1c of the paper).

Three further families model hardware noise beyond i.i.d. edge flips:

* **correlated burst** — a two-state Markov chain over measurement rounds:
  each shot starts quiet, enters a burst round with probability
  ``burst_entry``, leaves it with probability ``burst_exit``, and every edge
  whose round is bursting flips with its probability scaled by
  ``burst_multiplier``.  Flips stay independent *given* the chain, so the
  decoding graph (and hence the weights) is unchanged — only the sampler
  reads the chain fields.
* **erasure** — every edge is additionally *erased* (heralded, located
  error) with probability ``erasure``; an erased edge flips with
  probability 1/2 and its index is carried on ``Syndrome.erasures``, which
  erasure-aware decoders honor as a zero-weight edge.
* **time varying** — a per-round multiplier ``schedule`` scales every edge
  probability by ``schedule[round % len(schedule)]``; the scaling is static
  per layer, so it is applied to the decoding graph at build time and the
  sampler needs no special handling.

The noise model fixes the probability of every edge *kind*; the code-family
builders then create edges with these probabilities.  The new fields all
default to "off" and are serialized by :meth:`NoiseModel.to_dict` only at
non-default values, so hashes and wire payloads of the original three
families are byte-identical to earlier releases.
"""

from __future__ import annotations

from dataclasses import dataclass


class NoiseModelError(ValueError):
    """Raised when a noise model is configured inconsistently."""


@dataclass(frozen=True)
class NoiseModel:
    """Per-edge-kind error probabilities of a decoding graph.

    Attributes:
        name: one of :data:`NOISE_FAMILY_NAMES`.
        spatial: probability of a data-qubit error (spatial edge).
        temporal: probability of a measurement error (time-like edge); zero for
            code-capacity noise.
        diagonal: probability of a hook/space-time error (diagonal edge); zero
            unless the model is circuit level.
        boundary: probability of a data-qubit error on a boundary edge.
        burst_multiplier: factor applied to every edge probability while the
            burst chain is in its burst state (1.0 = bursts change nothing).
        burst_entry: per-round probability of entering the burst state
            (0.0 disables the chain entirely).
        burst_exit: per-round probability of leaving the burst state.
        erasure: per-edge probability of a heralded erasure (0.0 = no
            erasures).
        schedule: per-round probability multipliers, cycled over rounds;
            empty = constant-in-time noise.
    """

    name: str
    spatial: float
    temporal: float
    diagonal: float
    boundary: float
    burst_multiplier: float = 1.0
    burst_entry: float = 0.0
    burst_exit: float = 0.5
    erasure: float = 0.0
    schedule: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", tuple(float(s) for s in self.schedule))
        for field_name in ("spatial", "temporal", "diagonal", "boundary"):
            value = getattr(self, field_name)
            if value < 0.0 or value >= 0.5:
                raise NoiseModelError(
                    f"{field_name} probability must lie in [0, 0.5), got {value}"
                )
        if self.spatial <= 0.0:
            raise NoiseModelError("spatial probability must be positive")
        if self.burst_multiplier < 1.0:
            raise NoiseModelError(
                f"burst_multiplier must be >= 1, got {self.burst_multiplier}"
            )
        if not 0.0 <= self.burst_entry < 1.0:
            raise NoiseModelError(
                f"burst_entry must lie in [0, 1), got {self.burst_entry}"
            )
        if not 0.0 < self.burst_exit <= 1.0:
            raise NoiseModelError(
                f"burst_exit must lie in (0, 1], got {self.burst_exit}"
            )
        if not 0.0 <= self.erasure < 0.5:
            raise NoiseModelError(
                f"erasure probability must lie in [0, 0.5), got {self.erasure}"
            )
        for multiplier in self.schedule:
            if multiplier <= 0.0:
                raise NoiseModelError(
                    f"schedule multipliers must be positive, got {multiplier}"
                )
        # The largest probability the sampler can ever apply to an edge must
        # stay a probability below 1/2 (weights are log-likelihood ratios).
        peak = max(self.spatial, self.temporal, self.diagonal, self.boundary)
        if self.schedule:
            peak *= max(self.schedule)
        if self.burst_entry > 0.0:
            peak *= self.burst_multiplier
        if peak >= 0.5:
            raise NoiseModelError(
                "boosted edge probability must stay below 0.5 "
                f"(peak multiplier yields {peak})"
            )

    @property
    def is_three_dimensional(self) -> bool:
        return self.temporal > 0.0

    @property
    def is_dynamic(self) -> bool:
        """True when sampling needs per-shot randomness beyond edge flips.

        Burst chains and erasure draws consume extra RNG words per shot;
        time-varying schedules do *not* (they rescale the graph statically).
        """
        return self.burst_entry > 0.0 or self.erasure > 0.0

    @property
    def minimum_probability(self) -> float:
        """Smallest nonzero edge probability (used as the weight reference)."""
        candidates = [
            p
            for p in (self.spatial, self.temporal, self.diagonal, self.boundary)
            if p > 0.0
        ]
        smallest = min(candidates)
        if self.schedule:
            smallest *= min(self.schedule)
        return smallest

    def round_multiplier(self, layer: int) -> float:
        """The schedule's probability multiplier for measurement round ``layer``.

        >>> time_varying_noise(0.01, schedule=(1.0, 2.0)).round_multiplier(3)
        2.0
        >>> phenomenological_noise(0.01).round_multiplier(7)
        1.0
        """
        if not self.schedule:
            return 1.0
        return self.schedule[layer % len(self.schedule)]

    def probability_for_kind(self, kind: str) -> float:
        mapping = {
            "spatial": self.spatial,
            "temporal": self.temporal,
            "diagonal": self.diagonal,
            "boundary": self.boundary,
        }
        try:
            return mapping[kind]
        except KeyError as exc:  # pragma: no cover - defensive
            raise NoiseModelError(f"unknown edge kind {kind!r}") from exc

    def to_dict(self) -> dict:
        """JSON-shaped form, fed into graph metadata and content hashes.

        Dynamic-noise fields appear only at non-default values, so the
        serialized form (and every hash derived from it) of the original
        three families is unchanged by their existence.

        >>> code_capacity_noise(0.01).to_dict()
        {'name': 'code_capacity', 'spatial': 0.01, 'temporal': 0.0, 'diagonal': 0.0, 'boundary': 0.01}
        """
        data = {
            "name": self.name,
            "spatial": self.spatial,
            "temporal": self.temporal,
            "diagonal": self.diagonal,
            "boundary": self.boundary,
        }
        if self.burst_multiplier != 1.0:
            data["burst_multiplier"] = self.burst_multiplier
        if self.burst_entry != 0.0:
            data["burst_entry"] = self.burst_entry
        if self.burst_exit != 0.5:
            data["burst_exit"] = self.burst_exit
        if self.erasure != 0.0:
            data["erasure"] = self.erasure
        if self.schedule:
            data["schedule"] = list(self.schedule)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "NoiseModel":
        """Inverse of :meth:`to_dict`.

        >>> model = correlated_burst_noise(0.01)
        >>> NoiseModel.from_dict(model.to_dict()) == model
        True
        """
        return cls(
            name=str(data["name"]),
            spatial=float(data["spatial"]),
            temporal=float(data["temporal"]),
            diagonal=float(data["diagonal"]),
            boundary=float(data["boundary"]),
            burst_multiplier=float(data.get("burst_multiplier", 1.0)),
            burst_entry=float(data.get("burst_entry", 0.0)),
            burst_exit=float(data.get("burst_exit", 0.5)),
            erasure=float(data.get("erasure", 0.0)),
            schedule=tuple(float(s) for s in data.get("schedule", ())),
        )

    def model_hash(self) -> str:
        """16-hex content hash of the serialized model (see :meth:`to_dict`)."""
        from ..api.hashing import content_hash

        return content_hash(self.to_dict())


def code_capacity_noise(p: float) -> NoiseModel:
    """Data-qubit errors only; measurements are perfect."""
    return NoiseModel(
        name="code_capacity", spatial=p, temporal=0.0, diagonal=0.0, boundary=p
    )


def phenomenological_noise(p: float) -> NoiseModel:
    """Data-qubit errors plus measurement errors of the same probability."""
    return NoiseModel(
        name="phenomenological", spatial=p, temporal=p, diagonal=0.0, boundary=p
    )


def circuit_level_noise(p: float, hook_fraction: float = 0.5) -> NoiseModel:
    """Circuit-level noise: adds diagonal (hook) error mechanisms.

    ``hook_fraction`` scales the diagonal edge probability relative to ``p``;
    the exact value only shifts weights slightly and does not change the shape
    of any evaluation result.
    """
    if not 0.0 < hook_fraction <= 1.0:
        raise NoiseModelError("hook_fraction must lie in (0, 1]")
    return NoiseModel(
        name="circuit_level",
        spatial=p,
        temporal=p,
        diagonal=p * hook_fraction,
        boundary=p,
    )


def correlated_burst_noise(
    p: float,
    burst_multiplier: float = 4.0,
    burst_entry: float = 0.1,
    burst_exit: float = 0.4,
) -> NoiseModel:
    """Phenomenological noise modulated by a two-state Markov burst chain.

    Each shot carries a hidden chain over measurement rounds (started in the
    quiet state): a quiet round bursts with probability ``burst_entry``, a
    bursting round recovers with probability ``burst_exit``, and every edge
    in a bursting round flips with ``burst_multiplier`` times its quiet
    probability.  Edge flips remain independent given the chain, so decoding
    graphs and weights are those of the quiet rates.
    """
    return NoiseModel(
        name="correlated_burst",
        spatial=p,
        temporal=p,
        diagonal=0.0,
        boundary=p,
        burst_multiplier=burst_multiplier,
        burst_entry=burst_entry,
        burst_exit=burst_exit,
    )


def erasure_noise(p: float, erasure: float | None = None) -> NoiseModel:
    """Phenomenological noise plus heralded erasures.

    Every edge is independently erased with probability ``erasure``
    (defaulting to ``2 * p``, the superconducting-hardware regime where
    erasure conversion dominates Pauli noise); an erased edge flips with
    probability 1/2 and is reported on :attr:`repro.graphs.Syndrome.erasures`
    for decoders to treat as a zero-weight edge.
    """
    if erasure is None:
        erasure = min(2.0 * p, 0.25)
    return NoiseModel(
        name="erasure",
        spatial=p,
        temporal=p,
        diagonal=0.0,
        boundary=p,
        erasure=erasure,
    )


def time_varying_noise(
    p: float, schedule: tuple[float, ...] = (1.0, 1.5, 0.5)
) -> NoiseModel:
    """Phenomenological noise whose strength varies over measurement rounds.

    ``schedule`` is cycled over rounds: round ``r`` scales every edge
    probability by ``schedule[r % len(schedule)]``.  The scaling is static
    per layer and is baked into the decoding graph (probabilities *and*
    weights), so samplers and decoders need no special handling.
    """
    if not schedule:
        raise NoiseModelError("time-varying noise needs a non-empty schedule")
    return NoiseModel(
        name="time_varying",
        spatial=p,
        temporal=p,
        diagonal=0.0,
        boundary=p,
        schedule=tuple(schedule),
    )


#: Every noise family :func:`noise_model_by_name` accepts, sorted (pinned by
#: ``tests/test_noise.py``).
NOISE_FAMILY_NAMES = (
    "circuit_level",
    "code_capacity",
    "correlated_burst",
    "erasure",
    "phenomenological",
    "time_varying",
)


def noise_model_by_name(name: str, p: float) -> NoiseModel:
    """Factory used by command-line style entry points and the test matrix.

    >>> noise_model_by_name("erasure", 0.01).erasure
    0.02
    >>> noise_model_by_name("bogus", 0.01)
    Traceback (most recent call last):
        ...
    repro.graphs.noise.NoiseModelError: unknown noise model 'bogus'; expected one of ['circuit_level', 'code_capacity', 'correlated_burst', 'erasure', 'phenomenological', 'time_varying']
    """
    factories = {
        "code_capacity": code_capacity_noise,
        "phenomenological": phenomenological_noise,
        "circuit_level": circuit_level_noise,
        "correlated_burst": correlated_burst_noise,
        "erasure": erasure_noise,
        "time_varying": time_varying_noise,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise NoiseModelError(
            f"unknown noise model {name!r}; expected one of {sorted(factories)}"
        ) from None
    return factory(p)
