"""Decoding-graph construction for the rotated surface code.

We build the decoding graph of one stabilizer type (Z-type stabilizers, which
detect X errors; the other type is decoded independently and identically,
paper Figure 1a).  The construction follows the structure used throughout the
paper:

* one layer per measurement round (Figure 1c), ``rounds`` layers in total
  (``rounds = d`` for the standard memory experiment);
* within a layer, real vertices form a ``(d-1) x (d+1)/2`` grid of stabilizer
  measurements; spatial edges connect horizontally/vertically adjacent
  stabilizers (each corresponding to a data-qubit error mechanism);
* each layer has two virtual boundary vertices (top and bottom) absorbing the
  error chains that terminate on the code boundary; the shortest chain of
  errors connecting the two boundaries has exactly ``d`` edges, preserving the
  code distance;
* vertical (temporal) edges connect the same stabilizer in consecutive rounds
  (measurement errors); circuit-level noise additionally adds diagonal
  space-time edges (hook errors).

The logical observable is the set of *top boundary* edges (plus the diagonal
edges that cross the same cut): an error chain flips the logical qubit iff it
crosses the top boundary an odd number of times.

The vertex/edge counts differ slightly from the authors' circuit-generated
graphs (Table 4), because the exact stabilizer extraction circuit is not
published in the paper; the asymptotic scaling |V| = Θ(d³), |E| = Θ(d³) and the
code distance are preserved.  ``repro.resources`` reports both our counts and
the paper's published counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from .decoding_graph import DEFAULT_MAX_WEIGHT, DecodingGraph, GraphBuilder
from .noise import NoiseModel, NoiseModelError


@dataclass(frozen=True)
class SurfaceCodeLayout:
    """Geometry of the Z-stabilizer lattice of a distance-``d`` rotated code."""

    distance: int

    def __post_init__(self) -> None:
        if self.distance < 3 or self.distance % 2 == 0:
            raise ValueError("code distance must be an odd integer >= 3")

    @property
    def rows(self) -> int:
        """Number of stabilizer rows between the two boundaries."""
        return self.distance - 1

    @property
    def cols(self) -> int:
        """Number of stabilizers per row."""
        return (self.distance + 1) // 2

    @property
    def real_vertices_per_layer(self) -> int:
        return self.rows * self.cols

    @property
    def virtual_vertices_per_layer(self) -> int:
        return 2


def surface_code_decoding_graph(
    distance: int,
    noise_model: NoiseModel,
    rounds: int | None = None,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> DecodingGraph:
    """Build the decoding graph of a rotated surface code memory experiment.

    Args:
        distance: odd code distance ``d >= 3``.
        noise_model: per-edge-kind probabilities; a code-capacity model forces
            a single round regardless of ``rounds``.
        rounds: number of measurement rounds (defaults to ``d`` for 3D models).
        max_weight: maximum quantised weight (4 bits / 14 in the paper).

    Returns:
        The populated :class:`DecodingGraph`; metadata records the code family,
        distance, rounds, and noise model name.
    """
    layout = SurfaceCodeLayout(distance)
    if not noise_model.is_three_dimensional:
        effective_rounds = 1
    else:
        effective_rounds = distance if rounds is None else rounds
    if effective_rounds < 1:
        raise ValueError("rounds must be >= 1")
    if noise_model.diagonal > 0.0 and effective_rounds < 2:
        raise NoiseModelError(
            "circuit-level noise requires at least two measurement rounds"
        )

    builder = GraphBuilder(max_weight=max_weight)
    builder.metadata.update(
        {
            "code": "rotated_surface",
            "distance": distance,
            "rounds": effective_rounds,
            "noise_model": noise_model.name,
            "physical_error_rate": noise_model.spatial,
            "noise": noise_model.to_dict(),
        }
    )
    reference = noise_model.minimum_probability

    # Per-round probability scaling (time-varying noise).  Scaling by the
    # multiplier 1.0 of schedule-free models is an exact float no-op, so the
    # probabilities — and hence weights, thresholds and sampled RNG streams —
    # of the original families are byte-identical to earlier releases.
    # Temporal/diagonal edges span two rounds and take the *later* round's
    # multiplier (the round whose measurement realises the error).
    def scaled(base: float, layer: int) -> float:
        return base * noise_model.round_multiplier(layer)

    rows, cols = layout.rows, layout.cols
    # vertex index bookkeeping -------------------------------------------------
    real_index: dict[tuple[int, int, int], int] = {}
    top_virtual: dict[int, int] = {}
    bottom_virtual: dict[int, int] = {}
    for layer in range(effective_rounds):
        for row in range(rows):
            for col in range(cols):
                real_index[(layer, row, col)] = builder.add_vertex(layer, row, col)
        top_virtual[layer] = builder.add_vertex(layer, -1, 0, is_virtual=True)
        bottom_virtual[layer] = builder.add_vertex(layer, rows, 0, is_virtual=True)

    # spatial edges ------------------------------------------------------------
    for layer in range(effective_rounds):
        for row in range(rows):
            for col in range(cols):
                vertex = real_index[(layer, row, col)]
                if col + 1 < cols:
                    builder.add_edge(
                        vertex,
                        real_index[(layer, row, col + 1)],
                        scaled(noise_model.spatial, layer),
                        reference,
                        kind="spatial",
                    )
                if row + 1 < rows:
                    builder.add_edge(
                        vertex,
                        real_index[(layer, row + 1, col)],
                        scaled(noise_model.spatial, layer),
                        reference,
                        kind="spatial",
                    )
        # boundary edges: top row to the top virtual vertex (these carry the
        # logical observable), bottom row to the bottom virtual vertex.
        for col in range(cols):
            builder.add_edge(
                real_index[(layer, 0, col)],
                top_virtual[layer],
                scaled(noise_model.boundary, layer),
                reference,
                observable=True,
                kind="boundary",
            )
            builder.add_edge(
                real_index[(layer, rows - 1, col)],
                bottom_virtual[layer],
                scaled(noise_model.boundary, layer),
                reference,
                kind="boundary",
            )

    # temporal edges (measurement errors) --------------------------------------
    if noise_model.temporal > 0.0:
        for layer in range(effective_rounds - 1):
            for row in range(rows):
                for col in range(cols):
                    builder.add_edge(
                        real_index[(layer, row, col)],
                        real_index[(layer + 1, row, col)],
                        scaled(noise_model.temporal, layer + 1),
                        reference,
                        kind="temporal",
                    )

    # diagonal (hook) edges for circuit-level noise -----------------------------
    if noise_model.diagonal > 0.0:
        for layer in range(effective_rounds - 1):
            for row in range(rows):
                for col in range(cols):
                    if row + 1 < rows:
                        builder.add_edge(
                            real_index[(layer, row, col)],
                            real_index[(layer + 1, row + 1, col)],
                            scaled(noise_model.diagonal, layer + 1),
                            reference,
                            kind="diagonal",
                        )
            # hook errors reaching over the top boundary cross the logical
            # observable cut, exactly like top boundary edges do.
            for col in range(cols):
                builder.add_edge(
                    real_index[(layer, 0, col)],
                    top_virtual[layer + 1],
                    scaled(noise_model.diagonal, layer + 1),
                    reference,
                    observable=True,
                    kind="diagonal",
                )

    return builder.build()
