"""Decoding graph data structures.

A decoding graph ``G = (V, E, W)`` is derived from a QEC code and a noise model
(paper §2).  Each vertex corresponds to a stabilizer measurement (or a virtual
boundary vertex); each edge corresponds to an independent error mechanism with
probability ``p_e`` and weight ``w_e = log((1 - p_e) / p_e)``.

Weights are quantised to small non-negative integers (the paper's prototype
uses 4-bit weights with a maximum of 14, §8.1) and then doubled internally so
that all dual variables of the blossom algorithm stay integral even when two
covers meet in the middle of an edge.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Internal multiplier applied to every quantised weight so that half-integral
#: dual updates of the blossom algorithm become integral.
WEIGHT_DOUBLING = 2

#: Default maximum quantised weight (4-bit representation, paper §8.1).
DEFAULT_MAX_WEIGHT = 14

#: Sentinel distinguishing "noise model not parsed yet" from "absent".
_UNSET = object()


@dataclass(frozen=True)
class Vertex:
    """A vertex of the decoding graph.

    Attributes:
        index: position of the vertex in ``DecodingGraph.vertices``.
        layer: measurement round this vertex belongs to (0 for 2D graphs).
        row, col: spatial coordinates inside the layer.
        is_virtual: True for boundary (virtual) vertices, which represent the
            unknown measurements along the code boundary and never host defects.
    """

    index: int
    layer: int
    row: int
    col: int
    is_virtual: bool = False


@dataclass(frozen=True)
class Edge:
    """An edge of the decoding graph (one independent error mechanism)."""

    index: int
    u: int
    v: int
    weight: int
    probability: float
    #: True if this error flips the logical observable used for evaluation.
    observable: bool = False
    #: Classification used by noise models and resource accounting.
    kind: str = "spatial"

    def other(self, vertex: int) -> int:
        """Return the endpoint of the edge that is not ``vertex``."""
        if vertex == self.u:
            return self.v
        if vertex == self.v:
            return self.u
        raise ValueError(f"vertex {vertex} is not an endpoint of edge {self.index}")


def quantized_weight(
    probability: float,
    reference_probability: float,
    max_weight: int = DEFAULT_MAX_WEIGHT,
) -> int:
    """Quantise ``log((1-p)/p)`` onto ``1..max_weight`` (before doubling).

    ``reference_probability`` is the smallest error probability present in the
    graph; it maps to ``max_weight`` so that the full dynamic range of the
    fixed-point representation is used (paper §8.1: "maximum edge weight 14").
    """
    if not 0.0 < probability < 0.5:
        raise ValueError("edge probability must lie in (0, 0.5)")
    if not 0.0 < reference_probability < 0.5:
        raise ValueError("reference probability must lie in (0, 0.5)")
    raw = math.log((1.0 - probability) / probability)
    raw_max = math.log((1.0 - reference_probability) / reference_probability)
    scaled = int(round(raw / raw_max * max_weight))
    return max(1, min(max_weight, scaled))


class DecodingGraph:
    """A weighted decoding graph with virtual (boundary) vertices.

    The graph is immutable after construction.  It offers the adjacency and
    shortest-path queries needed both by decoders (path reconstruction for the
    final correction) and by the reference syndrome-graph MWPM decoder.
    """

    def __init__(
        self,
        vertices: Sequence[Vertex],
        edges: Sequence[Edge],
        observable_edges: Iterable[int] | None = None,
        metadata: dict | None = None,
    ) -> None:
        self.vertices: list[Vertex] = list(vertices)
        self.edges: list[Edge] = list(edges)
        self.metadata: dict = dict(metadata or {})
        self._validate()
        self.adjacency: list[list[tuple[int, int]]] = [[] for _ in self.vertices]
        for edge in self.edges:
            self.adjacency[edge.u].append((edge.index, edge.v))
            self.adjacency[edge.v].append((edge.index, edge.u))
        if observable_edges is None:
            observable_edges = [e.index for e in self.edges if e.observable]
        self.observable_edges: frozenset[int] = frozenset(observable_edges)
        self.virtual_vertices: list[int] = [
            v.index for v in self.vertices if v.is_virtual
        ]
        self._distance_cache: dict[int, tuple[list[int], list[int | None]]] = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for i, vertex in enumerate(self.vertices):
            if vertex.index != i:
                raise ValueError("vertex indices must be consecutive and ordered")
        seen: set[tuple[int, int]] = set()
        for i, edge in enumerate(self.edges):
            if edge.index != i:
                raise ValueError("edge indices must be consecutive and ordered")
            if edge.u == edge.v:
                raise ValueError("self loops are not allowed in decoding graphs")
            if not (0 <= edge.u < len(self.vertices)) or not (
                0 <= edge.v < len(self.vertices)
            ):
                raise ValueError("edge endpoint out of range")
            if edge.weight < 0:
                raise ValueError("edge weights must be non-negative")
            key = (min(edge.u, edge.v), max(edge.u, edge.v))
            if key in seen:
                raise ValueError(f"duplicate edge between {key}")
            seen.add(key)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def num_real_vertices(self) -> int:
        return self.num_vertices - len(self.virtual_vertices)

    def is_virtual(self, vertex: int) -> bool:
        return self.vertices[vertex].is_virtual

    def neighbors(self, vertex: int) -> list[tuple[int, int]]:
        """Return ``(edge_index, neighbor_vertex)`` pairs incident to ``vertex``."""
        return self.adjacency[vertex]

    def edge_between(self, u: int, v: int) -> Edge | None:
        """Return the edge connecting ``u`` and ``v`` if it exists."""
        for edge_index, neighbor in self.adjacency[u]:
            if neighbor == v:
                return self.edges[edge_index]
        return None

    def total_weight(self) -> int:
        return sum(edge.weight for edge in self.edges)

    def max_weight(self) -> int:
        return max((edge.weight for edge in self.edges), default=0)

    # ------------------------------------------------------------------
    # shortest paths
    # ------------------------------------------------------------------
    def shortest_distances(self, source: int) -> tuple[list[int], list[int | None]]:
        """Dijkstra from ``source``.

        Returns ``(distances, predecessor_edges)`` where ``predecessor_edges[v]``
        is the edge index used to reach ``v`` (``None`` for the source or
        unreachable vertices).  Results are cached per source.
        """
        cached = self._distance_cache.get(source)
        if cached is not None:
            return cached
        infinity = math.inf
        distances: list[float] = [infinity] * self.num_vertices
        predecessors: list[int | None] = [None] * self.num_vertices
        distances[source] = 0
        heap: list[tuple[int, int]] = [(0, source)]
        while heap:
            dist, vertex = heapq.heappop(heap)
            if dist > distances[vertex]:
                continue
            for edge_index, neighbor in self.adjacency[vertex]:
                weight = self.edges[edge_index].weight
                candidate = dist + weight
                if candidate < distances[neighbor]:
                    distances[neighbor] = candidate
                    predecessors[neighbor] = edge_index
                    heapq.heappush(heap, (candidate, neighbor))
        result = (
            [int(d) if d is not infinity else -1 for d in distances],
            predecessors,
        )
        self._distance_cache[source] = result
        return result

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance between two vertices (-1 if disconnected)."""
        distances, _ = self.shortest_distances(u)
        return distances[v]

    def shortest_path_edges(self, u: int, v: int) -> list[int]:
        """Edge indices along one shortest path from ``u`` to ``v``."""
        distances, predecessors = self.shortest_distances(u)
        if distances[v] < 0:
            raise ValueError(f"vertices {u} and {v} are disconnected")
        path: list[int] = []
        current = v
        while current != u:
            edge_index = predecessors[current]
            if edge_index is None:
                raise ValueError(f"vertices {u} and {v} are disconnected")
            path.append(edge_index)
            current = self.edges[edge_index].other(current)
        path.reverse()
        return path

    def nearest_virtual(self, vertex: int) -> tuple[int, int]:
        """Return ``(distance, virtual_vertex)`` of the closest boundary vertex.

        Returns ``(-1, -1)`` when the graph has no virtual vertices reachable
        from ``vertex``.
        """
        distances, _ = self.shortest_distances(vertex)
        best_distance = -1
        best_vertex = -1
        for virtual in self.virtual_vertices:
            dist = distances[virtual]
            if dist < 0:
                continue
            if best_distance < 0 or dist < best_distance:
                best_distance = dist
                best_vertex = virtual
        return best_distance, best_vertex

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------
    def correction_from_pairs(
        self, pairs: Iterable[tuple[int, int]]
    ) -> set[int]:
        """Turn matched defect pairs into a correction (a set of edge indices).

        Each pair contributes one shortest path between its endpoints; edges
        appearing an even number of times cancel out (XOR semantics).
        """
        correction: set[int] = set()
        for u, v in pairs:
            for edge_index in self.shortest_path_edges(u, v):
                correction.symmetric_difference_update({edge_index})
        return correction

    def crosses_observable(self, edge_indices: Iterable[int]) -> bool:
        """Parity of the given edge set restricted to the logical observable."""
        crossings = sum(1 for index in edge_indices if index in self.observable_edges)
        return crossings % 2 == 1

    def vertices_in_layer(self, layer: int) -> list[int]:
        return [v.index for v in self.vertices if v.layer == layer]

    @property
    def num_layers(self) -> int:
        return 1 + max((v.layer for v in self.vertices), default=0)

    @property
    def noise_model(self):
        """The :class:`repro.graphs.NoiseModel` this graph was built under.

        Parsed (once, then cached) from ``metadata["noise"]``, which the
        surface-code builder records; ``None`` for graphs built without it
        (hand-assembled test graphs, legacy metadata).
        """
        model = getattr(self, "_noise_model", _UNSET)
        if model is _UNSET:
            data = self.metadata.get("noise")
            if data is None:
                model = None
            else:
                from .noise import NoiseModel

                model = NoiseModel.from_dict(data)
            self._noise_model = model
        return model

    def with_erasures(self, erasures: Iterable[int]) -> "DecodingGraph":
        """A graph variant in which the given edges carry zero weight.

        Heralded erasures are located errors: an erased edge flipped with
        probability 1/2, so its log-likelihood weight is 0 and any decoder
        may use it for free.  Returns ``self`` when ``erasures`` is empty;
        otherwise a new graph sharing vertices, observable set, and metadata,
        with fresh distance caches (erasures change shortest paths).
        """
        from dataclasses import replace

        erased = sorted(set(int(e) for e in erasures))
        if not erased:
            return self
        for index in erased:
            if not 0 <= index < self.num_edges:
                raise ValueError(f"erased edge index {index} out of range")
        edges = list(self.edges)
        for index in erased:
            edges[index] = replace(edges[index], weight=0)
        return DecodingGraph(
            self.vertices,
            edges,
            observable_edges=self.observable_edges,
            metadata=self.metadata,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DecodingGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"layers={self.num_layers}, virtual={len(self.virtual_vertices)})"
        )


@dataclass
class GraphBuilder:
    """Incremental builder used by the code-family specific constructors."""

    max_weight: int = DEFAULT_MAX_WEIGHT
    vertices: list[Vertex] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    _edge_keys: set[tuple[int, int]] = field(default_factory=set)
    metadata: dict = field(default_factory=dict)

    def add_vertex(
        self, layer: int, row: int, col: int, is_virtual: bool = False
    ) -> int:
        index = len(self.vertices)
        self.vertices.append(Vertex(index, layer, row, col, is_virtual))
        return index

    def add_edge(
        self,
        u: int,
        v: int,
        probability: float,
        reference_probability: float,
        observable: bool = False,
        kind: str = "spatial",
    ) -> int:
        key = (min(u, v), max(u, v))
        if key in self._edge_keys:
            raise ValueError(f"duplicate edge between {key}")
        self._edge_keys.add(key)
        weight = WEIGHT_DOUBLING * quantized_weight(
            probability, reference_probability, self.max_weight
        )
        index = len(self.edges)
        self.edges.append(
            Edge(index, u, v, weight, probability, observable=observable, kind=kind)
        )
        return index

    def build(self) -> DecodingGraph:
        return DecodingGraph(self.vertices, self.edges, metadata=self.metadata)
