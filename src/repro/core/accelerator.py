"""Behavioural model of the Micro Blossom dual-phase accelerator.

The accelerator (paper §3–§6) contains one vertex PU per decoding-graph vertex
and one edge PU per edge, a broadcast network for instructions and a
convergecast tree for responses.  On top of the cover-based dual phase of
:class:`repro.core.dual.DualGraphState` this class adds the hardware-only
behaviour:

* **pre-matching of isolated Conflicts** (paper §5.2, Equations 1–3): pairs of
  defects — or a defect and a boundary vertex — whose Covers touch while no
  other Cover is nearby are matched entirely inside the PUs; their nodes stop
  growing without any CPU interaction and are only handed to the software if a
  third Cover later disturbs them;
* **round-wise fusion** (paper §6): syndrome layers are loaded one measurement
  round at a time; vertices of rounds not yet loaded behave like virtual
  boundary vertices;
* **bus/instruction accounting** used by the latency model: every instruction
  word and every blocking response read is counted, together with the number
  of accelerator clock cycles they occupy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..graphs.decoding_graph import DecodingGraph
from .dual import DEFAULT_DUAL_SCALE, DualGraphState
from .interface import GROW, HOLD, Obstacle
from .instructions import (
    find_conflict_word,
    grow_word,
    load_defects_word,
    reset_word,
    set_cover_word,
    set_direction_word,
)


@dataclass(frozen=True)
class PreMatch:
    """A pair handled entirely inside the accelerator (isolated Conflict)."""

    defect: int
    peer: int
    edge: int
    peer_is_boundary: bool


class MicroBlossomAccelerator(DualGraphState):
    """Dual-phase accelerator with pre-matching and round-wise fusion."""

    def __init__(
        self,
        graph: DecodingGraph,
        scale: int = DEFAULT_DUAL_SCALE,
        enable_prematching: bool = True,
    ) -> None:
        self.enable_prematching = enable_prematching
        self._prematches: dict[int, PreMatch] = {}
        self._instruction_words: int = 0
        self._response_reads: int = 0
        self._prematched_floor: int = 0
        super().__init__(graph, scale=scale)

    # ------------------------------------------------------------------
    # instruction accounting wrappers
    # ------------------------------------------------------------------
    def reset(self) -> None:
        super().reset()
        self._prematches = {}
        # ``prematched_defects`` is a per-shot high-water mark; remember the
        # cumulative value at reset so reused engines report per-shot deltas
        # identical to a freshly-built accelerator.
        self._prematched_floor = self.counters.get(
            "prematched_defects", getattr(self, "_prematched_floor", 0)
        )
        self._instruction_words = getattr(self, "_instruction_words", 0) + 1
        self.counters["bus_words"] = self.counters.get("bus_words", 0) + 1
        _ = reset_word()

    def load(self, defects: Iterable[int], layers: Iterable[int] | None = None) -> None:
        super().load(defects, layers)
        # One load instruction per layer loaded; syndrome bits stream in
        # directly from the quantum control stack (paper Figure 5), so they do
        # not cross the CPU bus.
        layer_count = 1 if layers is None else len(set(layers))
        for layer in range(layer_count):
            _ = load_defects_word(layer)
        self.counters["bus_words"] += layer_count
        self._prematches_dirty = True

    def set_direction(self, node: int, direction: int) -> None:
        super().set_direction(node, direction)
        _ = set_direction_word(min(node, 2**15 - 1), direction)
        self.counters["bus_words"] += 1
        self._prematches_dirty = True

    def create_blossom(self, children: Iterable[int], blossom_id: int) -> None:
        children = list(children)
        super().create_blossom(children, blossom_id)
        for child in children:
            _ = set_cover_word(min(child, 2**15 - 1), min(blossom_id, 2**15 - 1))
        self.counters["bus_words"] += len(children)
        self._prematches_dirty = True

    def expand_blossom(self, blossom_id: int, new_roots) -> None:
        super().expand_blossom(blossom_id, new_roots)
        for defect, root in new_roots.items():
            _ = set_cover_word(min(defect, 2**15 - 1), min(root, 2**15 - 1))
        self.counters["bus_words"] += len(new_roots)
        self._prematches_dirty = True

    def grow(self, length: int) -> None:
        super().grow(length)
        _ = grow_word(length)
        self.counters["bus_words"] += 1
        self._prematches_dirty = True

    def find_obstacle(self) -> Obstacle:
        _ = find_conflict_word()
        self.counters["bus_words"] += 1
        self.counters["response_reads"] += 1
        return super().find_obstacle()

    # ------------------------------------------------------------------
    # pre-matching (paper §5.2)
    # ------------------------------------------------------------------
    def _effective_directions(self) -> dict[int, int]:
        directions = dict(self.node_direction)
        if not self.enable_prematching:
            self._prematches = {}
            return directions
        self._prematches = self._compute_prematches()
        for prematch in self._prematches.values():
            directions[prematch.defect] = HOLD
            if not prematch.peer_is_boundary:
                directions[prematch.peer] = HOLD
        return directions

    def _direction_for_growth(self, node: int) -> int:
        if self.enable_prematching and node in self._prematches:
            return HOLD
        return self.node_direction.get(node, HOLD)

    def _prematch_eligible(self, vertex: int) -> bool:
        """A defect may be pre-matched only while it is still an autonomous
        singleton node growing with its default direction (never touched by
        the CPU and not absorbed into any blossom)."""
        return (
            self.loaded[vertex]
            and self.is_defect[vertex]
            and self.defect_root.get(vertex) == vertex
            and self.node_direction.get(vertex, HOLD) == GROW
        )

    def _compute_prematches(self) -> dict[int, PreMatch]:
        covers = self._ensure_covers()
        graph = self.graph
        residue = [
            max((value for value, _touch in cover.values()), default=0)
            for cover in covers
        ]
        tight = [False] * graph.num_edges
        tight_count = [0] * graph.num_vertices
        for edge in graph.edges:
            if residue[edge.u] + residue[edge.v] >= self._edge_weight[edge.index]:
                tight[edge.index] = True
                tight_count[edge.u] += 1
                tight_count[edge.v] += 1

        prematches: dict[int, PreMatch] = {}
        claimed: set[int] = set()

        def try_regular(edge) -> bool:
            """Equation 1: an isolated error away from any boundary."""
            u, v = edge.u, edge.v
            if not (self._prematch_eligible(u) and self._prematch_eligible(v)):
                return False
            if tight_count[u] != 1 or tight_count[v] != 1:
                return False
            prematch = PreMatch(defect=u, peer=v, edge=edge.index, peer_is_boundary=False)
            prematches[u] = prematch
            prematches[v] = prematch
            claimed.update((u, v))
            return True

        def try_boundary(edge) -> bool:
            """Equations 2/3: an isolated error on the (possibly fusion) boundary."""
            for defect, boundary in ((edge.u, edge.v), (edge.v, edge.u)):
                if not self.is_boundary_node(boundary):
                    continue
                if not self._prematch_eligible(defect):
                    continue
                safe = True
                for other_index, neighbor in graph.adjacency[defect]:
                    if other_index == edge.index or not tight[other_index]:
                        continue
                    if self.is_boundary_node(neighbor):
                        continue
                    if self.is_defect[neighbor] or tight_count[neighbor] > 1:
                        safe = False
                        break
                if not safe:
                    continue
                prematch = PreMatch(
                    defect=defect, peer=boundary, edge=edge.index, peer_is_boundary=True
                )
                prematches[defect] = prematch
                claimed.add(defect)
                return True
            return False

        for edge in graph.edges:
            if not tight[edge.index]:
                continue
            if edge.u in claimed or edge.v in claimed:
                continue
            if try_regular(edge):
                continue
            try_boundary(edge)
        if prematches:
            self.counters["prematched_defects"] = max(
                self.counters.get("prematched_defects", 0),
                self._prematched_floor + len(claimed),
            )
        return prematches

    def prematched_pairs(self) -> list[PreMatch]:
        """Pairs still handled in hardware when decoding finishes (§5.2)."""
        if not self.enable_prematching:
            return []
        self._prematches = self._compute_prematches()
        unique: dict[int, PreMatch] = {}
        for prematch in self._prematches.values():
            unique[prematch.edge] = prematch
        return sorted(unique.values(), key=lambda p: p.edge)

    # ------------------------------------------------------------------
    # hardware report for the latency/resource models
    # ------------------------------------------------------------------
    def hardware_report(self) -> dict[str, int]:
        """Bus and instruction statistics accumulated since construction."""
        return self.hardware_report_from(self.counters)

    @staticmethod
    def hardware_report_from(counters) -> dict[str, int]:
        """Bus and instruction statistics from a counter snapshot.

        Used with per-shot counter deltas when the accelerator model is
        reused across decodes (engine reuse / decoder sessions).
        """
        return {
            "bus_words": int(counters.get("bus_words", 0)),
            "response_reads": int(counters.get("response_reads", 0)),
            "grow_instructions": int(counters.get("instr_grow", 0)),
            "find_obstacle_instructions": int(
                counters.get("instr_find_obstacle", 0)
            ),
            "set_direction_instructions": int(
                counters.get("instr_set_direction", 0)
            ),
            "set_cover_instructions": int(counters.get("instr_set_cover", 0)),
            "conflicts_reported": int(counters.get("conflicts_reported", 0)),
            "defects_loaded": int(counters.get("defects_loaded", 0)),
        }
