"""Shared interfaces between the dual phase (accelerator) and the primal phase.

The blossom algorithm is split exactly as in the paper (§3): the *dual phase*
maintains the Covers of all nodes and detects Obstacles; the *primal phase*
(software) maintains matched pairs, alternating trees and blossoms and resolves
the Obstacles.  The two halves communicate through the tiny vocabulary defined
here: obstacle reports flowing up and instructions flowing down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

#: Directions of dual variables (paper §2): grow, hold, shrink.
GROW = 1
HOLD = 0
SHRINK = -1


class DualPhaseError(RuntimeError):
    """Raised when the dual phase reaches an inconsistent state."""


class IntegralityError(DualPhaseError):
    """Raised when integer dual arithmetic would require a finer step.

    The decoder catches this and retries with a finer internal dual scale;
    see :class:`repro.core.dual.DualGraphState`.
    """


@dataclass(frozen=True)
class Obstacle:
    """Base class of all dual-phase responses."""


@dataclass(frozen=True)
class Conflict(Obstacle):
    """Two nodes grow toward each other across an already-tight edge.

    Attributes:
        node_1, node_2: outer node identifiers.  ``node_2`` may identify a
            boundary pseudo-node (a virtual or not-yet-loaded vertex).
        touch_1, touch_2: the defect (or boundary vertex) of each node whose
            Cover realises the tight edge; these become the endpoints of the
            correction path if the two nodes end up matched.
        vertex_1, vertex_2: the decoding-graph edge endpoint on each side
            where the Conflict was detected (reported by the ePU).
    """

    node_1: int
    node_2: int
    touch_1: int
    touch_2: int
    vertex_1: int
    vertex_2: int


@dataclass(frozen=True)
class GrowLength(Obstacle):
    """No Conflict exists; the dual variables can safely grow by ``length``.

    The length is expressed in the dual module's internal units (see
    ``DualGraphState.scale``); the primal phase treats it opaquely.
    """

    length: int


@dataclass(frozen=True)
class Finished(Obstacle):
    """No node is growing: the dual phase cannot make further progress."""


class DualDriver(Protocol):
    """Instruction-set level interface implemented by every dual module.

    ``MicroBlossomAccelerator`` (parallel PUs) and ``SerialDualPhase``
    (software baseline) both implement this protocol, which mirrors the
    accelerator instruction set of Table 3.
    """

    def reset(self) -> None: ...

    def load(self, defects, layers=None) -> None: ...

    def set_direction(self, node: int, direction: int) -> None: ...

    def create_blossom(self, children, blossom_id: int) -> None: ...

    def expand_blossom(self, blossom_id: int, new_roots) -> None: ...

    def grow(self, length: int) -> None: ...

    def find_obstacle(self) -> Obstacle: ...

    def is_boundary_node(self, node: int) -> bool: ...
