"""Dual-phase engine on the decoding graph (Parity-Blossom style Covers).

This module implements the dual phase of the blossom algorithm exactly in the
form accelerated by Micro Blossom (paper §4): every node ``S`` of the blossom
algorithm owns a *Cover* — the union of balls centred at its defect vertices
with radii equal to the accumulated dual variables — and the dual phase
repeatedly answers one question: *can the Covers keep growing, and if not,
which two nodes collided?*

The paper distributes the Covers over per-vertex state (Residue ``r_v``,
Touches ``T_v``, Nodes ``N_v``, Table 2) so that one processing unit per vertex
and per edge can maintain them with local rules (Table 1).  This class keeps
the same per-vertex state and produces the same responses; for simulation
efficiency the fix-point of the local update rules is computed with a
multi-source Dijkstra sweep, which yields the identical state the hardware
reaches after its Update pipeline stage settles.

Dual variables are tracked per *defect vertex* as the accumulated cover radius
``R(u) = sum of y over the nodes containing u`` — precisely the quantity each
vPU can maintain locally because every ``grow`` instruction changes it by
``l * direction(Root(u))``.

Integer arithmetic: decoding-graph weights are even integers; the blossom
algorithm may nevertheless require half-integral dual updates.  The engine
therefore works in internal units of ``1 / scale`` weight units (``scale = 2``
by default).  In the rare event that an even finer step would be required, an
:class:`IntegralityError` is raised and the decoder retries with a doubled
scale (see :class:`repro.core.decoder.MicroBlossomDecoder`).
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Iterable, Mapping

from ..graphs.decoding_graph import DecodingGraph
from .interface import (
    Conflict,
    DualPhaseError,
    Finished,
    GrowLength,
    GROW,
    HOLD,
    IntegralityError,
    Obstacle,
)

#: Default internal dual scale (half-weight units), sufficient for the
#: half-integral dual updates of the blossom algorithm on integer weights.
DEFAULT_DUAL_SCALE = 2


class DualGraphState:
    """Cover-based dual phase of the blossom algorithm on a decoding graph.

    The class exposes the accelerator's instruction-set level interface
    (:class:`repro.core.interface.DualDriver`); the Micro Blossom accelerator
    and the Parity Blossom software baseline both build on it.
    """

    def __init__(self, graph: DecodingGraph, scale: int = DEFAULT_DUAL_SCALE) -> None:
        if scale < 1:
            raise ValueError("dual scale must be >= 1")
        self.graph = graph
        self.scale = scale
        self._edge_weight = [edge.weight * scale for edge in graph.edges]
        self.counters: Counter = Counter()
        self.reset()

    # ------------------------------------------------------------------
    # instruction set
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all PU state (the ``reset`` instruction)."""
        graph = self.graph
        self.loaded = [False] * graph.num_vertices
        self.is_defect = [False] * graph.num_vertices
        self.defect_radius: dict[int, int] = {}
        self.defect_root: dict[int, int] = {}
        self.node_direction: dict[int, int] = {}
        self._covers: list[dict[int, tuple[int, int]]] | None = None
        self.counters["instr_reset"] += 1

    def load(
        self, defects: Iterable[int], layers: Iterable[int] | None = None
    ) -> None:
        """Load syndrome data into the vPUs (the ``load defects`` instruction).

        When ``layers`` is None the whole graph is loaded at once (batch
        decoding).  Otherwise only vertices of the given measurement rounds are
        loaded and all other vertices keep acting as virtual boundary vertices
        (round-wise fusion, paper §6.2).
        """
        defects = set(defects)
        layer_filter = None if layers is None else set(layers)
        for vertex in range(self.graph.num_vertices):
            layer = self.graph.vertices[vertex].layer
            if layer_filter is not None and layer not in layer_filter:
                continue
            if self.loaded[vertex]:
                continue
            self.loaded[vertex] = True
            if vertex in defects:
                if self.graph.is_virtual(vertex):
                    raise DualPhaseError(
                        f"virtual vertex {vertex} cannot be a defect"
                    )
                self.is_defect[vertex] = True
                self.defect_radius[vertex] = 0
                self.defect_root[vertex] = vertex
                # A freshly loaded defect is an unmatched singleton node and
                # starts growing without any CPU involvement.
                self.node_direction.setdefault(vertex, GROW)
        loaded_defects = [d for d in defects if self.loaded[d]]
        uncovered = [d for d in defects if not self.loaded[d]]
        if uncovered:
            raise DualPhaseError(
                f"defects {uncovered} lie outside the loaded measurement rounds"
            )
        self.counters["instr_load"] += 1
        self.counters["defects_loaded"] += len(loaded_defects)
        self._covers = None

    def set_direction(self, node: int, direction: int) -> None:
        """Broadcast a node direction (the ``set direction`` instruction)."""
        if direction not in (-1, 0, 1):
            raise ValueError("direction must be -1, 0 or +1")
        self.node_direction[node] = direction
        self.counters["instr_set_direction"] += 1
        # Directions change future growth only; covers themselves are intact.

    def create_blossom(self, children: Iterable[int], blossom_id: int) -> None:
        """Merge the Covers of ``children`` into a new blossom node."""
        children = set(children)
        if blossom_id in self.node_direction:
            raise DualPhaseError(f"node id {blossom_id} already exists")
        for defect, root in self.defect_root.items():
            if root in children:
                self.defect_root[defect] = blossom_id
        self.node_direction[blossom_id] = GROW
        self.counters["instr_set_cover"] += len(children)
        self._covers = None

    def expand_blossom(self, blossom_id: int, new_roots: Mapping[int, int]) -> None:
        """Split a blossom Cover back into its children's Covers.

        ``new_roots`` maps every defect vertex previously rooted at
        ``blossom_id`` to its new outer node (computed by the primal module,
        which owns the blossom structure, paper §4.3).
        """
        for defect, root in new_roots.items():
            if self.defect_root.get(defect) != blossom_id:
                raise DualPhaseError(
                    f"defect {defect} is not rooted at blossom {blossom_id}"
                )
            self.defect_root[defect] = root
        remaining = [d for d, r in self.defect_root.items() if r == blossom_id]
        if remaining:
            raise DualPhaseError(
                f"blossom {blossom_id} still owns defects {remaining} after expansion"
            )
        self.node_direction.pop(blossom_id, None)
        self.counters["instr_set_cover"] += len(new_roots)
        self._covers = None

    def grow(self, length: int) -> None:
        """Grow/shrink every Cover according to its direction (``grow l``)."""
        if length <= 0:
            raise ValueError("grow length must be positive")
        for defect in self.defect_radius:
            direction = self._direction_for_growth(self.defect_root[defect])
            if direction == HOLD:
                continue
            radius = self.defect_radius[defect] + length * direction
            if radius < 0:
                raise DualPhaseError(
                    f"cover radius of defect {defect} would become negative"
                )
            self.defect_radius[defect] = radius
        self.counters["instr_grow"] += 1
        self.counters["total_growth"] += length
        self._covers = None

    def find_obstacle(self) -> Obstacle:
        """Report a Conflict, a safe growth length, or completion."""
        self.counters["instr_find_obstacle"] += 1
        covers = self._ensure_covers()
        directions = self._effective_directions()
        conflict = self._scan_conflicts(covers, directions)
        if conflict is not None:
            self.counters["conflicts_reported"] += 1
            return conflict
        if not self._any_growing(directions):
            return Finished()
        length = self._max_grow_length(covers, directions)
        if length is None:
            raise DualPhaseError("growing nodes exist but growth is unbounded")
        if length <= 0:
            raise IntegralityError(
                "dual update requires a step finer than the internal scale"
            )
        return GrowLength(length)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_boundary_node(self, node: int) -> bool:
        """True if ``node`` is a boundary pseudo-node (virtual or unloaded)."""
        if node >= self.graph.num_vertices:
            return False
        return self.graph.is_virtual(node) or not self.loaded[node]

    def direction_of(self, node: int) -> int:
        return self.node_direction.get(node, HOLD)

    def radius_of(self, defect: int) -> int:
        """Accumulated cover radius of a defect vertex, in internal units."""
        return self.defect_radius[defect]

    def weight_units(self, internal: int) -> float:
        """Convert an internal dual quantity back into decoding-graph units."""
        return internal / self.scale

    def loaded_defects(self) -> list[int]:
        return sorted(self.defect_radius)

    # ------------------------------------------------------------------
    # hooks overridden by subclasses
    # ------------------------------------------------------------------
    def _effective_directions(self) -> dict[int, int]:
        """Direction of every known node as seen by the PUs.

        The Micro Blossom accelerator overrides this to stall pre-matched
        nodes (paper §5.2) without any CPU interaction.
        """
        return dict(self.node_direction)

    def _direction_for_growth(self, node: int) -> int:
        return self.node_direction.get(node, HOLD)

    # ------------------------------------------------------------------
    # cover maintenance
    # ------------------------------------------------------------------
    def _sources(self) -> list[tuple[int, int, int]]:
        """Return ``(vertex, root_node, radius)`` for every Cover source.

        Sources are loaded defects, virtual vertices, and all not-yet-loaded
        vertices (which act as the fusion boundary, paper §6.2).
        """
        sources: list[tuple[int, int, int]] = []
        for vertex in range(self.graph.num_vertices):
            if not self.loaded[vertex] or self.graph.is_virtual(vertex):
                sources.append((vertex, vertex, 0))
            elif self.is_defect[vertex]:
                sources.append(
                    (vertex, self.defect_root[vertex], self.defect_radius[vertex])
                )
        return sources

    def _ensure_covers(self) -> list[dict[int, tuple[int, int]]]:
        if self._covers is None:
            self._covers = self._recompute_covers()
        return self._covers

    def _recompute_covers(self) -> list[dict[int, tuple[int, int]]]:
        """Per-vertex cover membership: ``{node: (residual, touch_vertex)}``.

        ``residual`` is how far the node's Cover extends beyond the vertex
        (``>= 0`` iff the vertex lies inside the Cover); ``touch_vertex`` is a
        defect (or boundary vertex) of the node realising that residual.  This
        is the full per-vertex state of paper §4.2 (Residue, Touches, Nodes).
        """
        graph = self.graph
        covers: list[dict[int, tuple[int, int]]] = [
            {} for _ in range(graph.num_vertices)
        ]
        heap: list[tuple[int, int, int, int]] = []
        for vertex, root, radius in self._sources():
            if radius < 0:
                raise DualPhaseError("negative cover radius")
            heap.append((-radius, vertex, root, vertex))
        heapq.heapify(heap)
        while heap:
            negative_value, vertex, root, touch = heapq.heappop(heap)
            value = -negative_value
            existing = covers[vertex].get(root)
            if existing is not None and existing[0] >= value:
                continue
            covers[vertex][root] = (value, touch)
            self.counters["cover_cells_updated"] += 1
            for edge_index, neighbor in graph.adjacency[vertex]:
                next_value = value - self._edge_weight[edge_index]
                if next_value < 0:
                    continue
                current = covers[neighbor].get(root)
                if current is not None and current[0] >= next_value:
                    continue
                heapq.heappush(heap, (-next_value, neighbor, root, touch))
        return covers

    # ------------------------------------------------------------------
    # conflict detection and growth length (Theorems of §4.2)
    # ------------------------------------------------------------------
    def _any_growing(self, directions: dict[int, int]) -> bool:
        for defect, root in self.defect_root.items():
            if directions.get(root, HOLD) > 0:
                return True
        return False

    def _scan_conflicts(
        self,
        covers: list[dict[int, tuple[int, int]]],
        directions: dict[int, int],
    ) -> Conflict | None:
        """Theorem: Conflict Detection — evaluated on every ePU and vPU."""
        graph = self.graph
        # Edge-level detection (ePUs).
        for edge in graph.edges:
            cover_u = covers[edge.u]
            cover_v = covers[edge.v]
            if not cover_u or not cover_v:
                continue
            weight = self._edge_weight[edge.index]
            self.counters["edges_scanned"] += 1
            for node_u, (residual_u, touch_u) in cover_u.items():
                direction_u = directions.get(node_u, HOLD)
                for node_v, (residual_v, touch_v) in cover_v.items():
                    if node_u == node_v:
                        continue
                    if direction_u + directions.get(node_v, HOLD) <= 0:
                        continue
                    if residual_u + residual_v >= weight:
                        return self._make_conflict(
                            node_u, node_v, touch_u, touch_v, edge.u, edge.v
                        )
        # Vertex-level detection (vPUs): two Covers overlapping on a vertex.
        for vertex in range(graph.num_vertices):
            cover = covers[vertex]
            if len(cover) < 2:
                continue
            items = list(cover.items())
            for i, (node_a, (residual_a, touch_a)) in enumerate(items):
                direction_a = directions.get(node_a, HOLD)
                for node_b, (residual_b, touch_b) in items[i + 1 :]:
                    if direction_a + directions.get(node_b, HOLD) <= 0:
                        continue
                    return self._make_conflict(
                        node_a, node_b, touch_a, touch_b, vertex, vertex
                    )
        return None

    def _make_conflict(
        self,
        node_1: int,
        node_2: int,
        touch_1: int,
        touch_2: int,
        vertex_1: int,
        vertex_2: int,
    ) -> Conflict:
        """Normalise a conflict so that a non-boundary node comes first."""
        if self.is_boundary_node(node_1) and not self.is_boundary_node(node_2):
            node_1, node_2 = node_2, node_1
            touch_1, touch_2 = touch_2, touch_1
            vertex_1, vertex_2 = vertex_2, vertex_1
        return Conflict(node_1, node_2, touch_1, touch_2, vertex_1, vertex_2)

    def _max_grow_length(
        self,
        covers: list[dict[int, tuple[int, int]]],
        directions: dict[int, int],
    ) -> int | None:
        """Theorem: Local Length to Grow — evaluated on every vPU and ePU."""
        graph = self.graph
        best: int | None = None

        def consider(candidate: int) -> None:
            nonlocal best
            if best is None or candidate < best:
                best = candidate

        for edge in graph.edges:
            weight = self._edge_weight[edge.index]
            cover_u = covers[edge.u]
            cover_v = covers[edge.v]
            self.counters["edges_scanned"] += 1
            # Pairs of distinct nodes approaching each other across this edge.
            for node_u, (residual_u, _touch_u) in cover_u.items():
                direction_u = directions.get(node_u, HOLD)
                for node_v, (residual_v, _touch_v) in cover_v.items():
                    if node_u == node_v:
                        continue
                    rate = direction_u + directions.get(node_v, HOLD)
                    if rate <= 0:
                        continue
                    slack = weight - residual_u - residual_v
                    consider(slack // rate)
            # A growing Cover must not overshoot a vertex it has not reached
            # yet: stop exactly when the Cover boundary arrives there, so that
            # the Update stage can register the new vertex before continuing.
            for this_end, other_end, cover_here, cover_there in (
                (edge.u, edge.v, cover_u, cover_v),
                (edge.v, edge.u, cover_v, cover_u),
            ):
                for node, (residual, _touch) in cover_here.items():
                    direction = directions.get(node, HOLD)
                    if direction <= 0:
                        continue
                    if node in cover_there:
                        continue
                    consider((weight - residual) // direction)
        # Shrinking Covers must not recede past a vertex in one step, so that
        # Touches/Nodes can be updated consistently (vPU-side term of the
        # theorem).  Residuals are recomputed from defect radii here, so this
        # is only needed to keep single steps aligned with the hardware.
        for vertex in range(graph.num_vertices):
            for node, (residual, _touch) in covers[vertex].items():
                if directions.get(node, HOLD) < 0 and residual > 0:
                    consider(residual)
        return best
