"""Micro Blossom decoder front-end: CPU + accelerator co-simulation.

``MicroBlossomDecoder`` combines the software primal module with the
behavioural accelerator model and supports the three configurations evaluated
in the paper (Figure 10a):

* ``parallel dual phase`` only — pre-matching and streaming disabled;
* ``+ parallel primal phase`` — pre-matching of isolated Conflicts enabled;
* ``+ round-wise fusion`` — streaming, one measurement round at a time.

Every decode returns a :class:`MicroBlossomOutcome` carrying the matching
itself and all the operation counts needed by the latency model (§8.2):
accelerator instructions, blocking response reads, conflicts escalated to the
CPU, and — for stream decoding — the share of the work that happens after the
final measurement round arrived (which is what determines the decoding
latency).

The decoder keeps its accelerator model and primal module alive across
decodes (``reuse_engines=True``, the default): each shot snapshots the
counters, ``reset()``s both engines and reports per-shot counter deltas, so
the results and statistics are identical to a freshly-built decoder while the
per-shot construction cost disappears from the Monte-Carlo hot path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..api.outcome import DecodeOutcome as DecodeOutcomeBase
from ..api.outcome import counter_delta
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import (
    BOUNDARY,
    MatchingResult,
    Syndrome,
    correction_edges,
    matching_weight,
)
from .accelerator import MicroBlossomAccelerator
from .dual import DEFAULT_DUAL_SCALE
from .interface import IntegralityError
from .primal import PrimalModule

#: Maximum internal dual-scale doublings attempted before giving up.
MAX_SCALE_RETRIES = 4


@dataclass
class MicroBlossomOutcome(DecodeOutcomeBase):
    """Full record of one Micro Blossom decoding run."""

    post_final_round_counters: Counter = field(default_factory=Counter)
    hardware_report: dict = field(default_factory=dict)
    prematched_pairs: int = 0
    stream: bool = False
    prematching: bool = True


#: Backwards-compatible alias (the outcome class used to carry this name).
DecodeOutcome = MicroBlossomOutcome


@dataclass
class _StreamState:
    """State of one in-flight incremental stream (``begin`` … ``finalize``)."""

    accelerator: MicroBlossomAccelerator
    primal: PrimalModule
    baseline: Counter
    scale: int
    #: Defects of every round pushed so far (replayed on a scale retry).
    rounds: list[tuple[int, ...]] = field(default_factory=list)
    #: Absolute counter snapshot taken at the start of the latest round —
    #: the work recorded after it is what remains once the final round
    #: arrived (paper §8.2).
    last_snapshot: Counter = field(default_factory=Counter)
    retries: int = 0
    any_defects: bool = False


class MicroBlossomDecoder:
    """Exact MWPM decoder with the Micro Blossom heterogeneous architecture.

    Besides the batch :class:`~repro.api.protocol.Decoder` surface, the class
    natively implements the incremental
    :class:`~repro.api.protocol.StreamingDecoder` protocol
    (``begin`` / ``push_round`` / ``finalize``): each pushed round is loaded
    and fused immediately, so only the residual work remains when the final
    round arrives.  ``decode_detailed`` with ``stream=True`` is simply the
    protocol driven from a fully-materialised syndrome.
    """

    name = "micro-blossom"

    def __init__(
        self,
        graph: DecodingGraph,
        enable_prematching: bool = True,
        stream: bool = False,
        scale: int = DEFAULT_DUAL_SCALE,
        reuse_engines: bool = True,
    ) -> None:
        self.graph = graph
        self.enable_prematching = enable_prematching
        self.stream = stream
        self.scale = scale
        self.reuse_engines = reuse_engines
        self._engines: dict[int, tuple[MicroBlossomAccelerator, PrimalModule]] = {}
        self._stream_state: _StreamState | None = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, syndrome: Syndrome) -> MatchingResult:
        """Decode a syndrome and return the defect-level matching."""
        return self.decode_detailed(syndrome).result

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        """Decode a syndrome and return the correction edge set."""
        return correction_edges(self.graph, self.decode(syndrome))

    def decode_detailed(self, syndrome: Syndrome) -> MicroBlossomOutcome:
        """Decode a syndrome and return the matching plus all statistics.

        Every decode starts from ``self.scale``; when an
        :class:`IntegralityError` forces a retry at a doubled scale, the
        doubled scale is confined to that retry (and its cached engine) and
        never leaks into subsequent decodes of the same decoder or session.
        In stream mode the syndrome is replayed through the incremental
        round-push protocol, one measurement round at a time.
        """
        if self.stream:
            self.begin(rounds_hint=self.graph.num_layers)
            for round_defects in syndrome.defects_by_layer(self.graph):
                self.push_round(round_defects)
            return self.finalize()
        scale = self.scale
        last_error: IntegralityError | None = None
        for retry in range(MAX_SCALE_RETRIES + 1):
            try:
                outcome = self._decode_once(syndrome, scale)
                outcome.scale_retries = retry
                return outcome
            except IntegralityError as error:
                last_error = error
                scale *= 2
        raise IntegralityError(
            f"decoding failed even at dual scale {scale}: {last_error}"
        )

    def reset(self) -> None:
        """Drop all cached engines; the next decode rebuilds them."""
        self._engines = {}
        self._stream_state = None

    # ------------------------------------------------------------------
    # incremental streaming (StreamingDecoder protocol, paper §6)
    # ------------------------------------------------------------------
    def begin(
        self,
        graph: DecodingGraph | None = None,
        rounds_hint: int | None = None,
        erasures: Iterable[int] = (),
    ) -> None:
        """Open a new stream; any stream still in flight is discarded."""
        if graph is not None and graph is not self.graph:
            raise ValueError("streaming decoder was built for a different graph")
        if tuple(erasures):
            raise ValueError(
                "micro-blossom streams on fixed edge weights; heralded "
                "erasures need the erasure-aware registry wrapper "
                "(repro.api.erasure)"
            )
        if rounds_hint is not None and rounds_hint > self.graph.num_layers:
            raise ValueError(
                f"rounds_hint {rounds_hint} exceeds the graph's "
                f"{self.graph.num_layers} measurement rounds"
            )
        accelerator, primal, baseline = self._acquire(self.scale)
        snapshot = Counter(accelerator.counters)
        snapshot.update(primal.counters)
        self._stream_state = _StreamState(
            accelerator=accelerator,
            primal=primal,
            baseline=baseline,
            scale=self.scale,
            last_snapshot=snapshot,
        )

    def push_round(self, defects: Iterable[int]) -> Counter:
        """Fuse the next measurement round; return the work it cost.

        The round is decoded *now*: its defects are loaded, matchings to the
        receding fusion boundary are broken, and the primal module runs to
        quiescence.  The returned counter delta is the complete cost of the
        round.  An :class:`IntegralityError` is resolved by replaying every
        pushed round at a doubled internal scale, exactly like the batch
        path's retry — so streamed outcomes match batch outcomes even on
        retry-triggering instances.
        """
        state = self._stream_state
        if state is None:
            raise RuntimeError("push_round before begin(); open a stream first")
        layer = len(state.rounds)
        if layer >= self.graph.num_layers:
            raise ValueError(
                f"stream already received all {self.graph.num_layers} rounds"
            )
        defects = tuple(defects)
        for defect in defects:
            if self.graph.vertices[defect].layer != layer:
                raise ValueError(
                    f"defect {defect} belongs to round "
                    f"{self.graph.vertices[defect].layer}, not round {layer}"
                )
        state.rounds.append(defects)
        try:
            return self._stream_step(state, layer, defects)
        except IntegralityError as error:
            last_error = error
        while state.retries < MAX_SCALE_RETRIES:
            state.retries += 1
            state.scale *= 2
            try:
                return self._stream_replay(state)
            except IntegralityError as error:
                last_error = error
        raise IntegralityError(
            f"stream decoding failed even at dual scale {state.scale}: {last_error}"
        )

    def finalize(self) -> MicroBlossomOutcome:
        """Close the stream and return the outcome of the whole instance.

        Rounds never pushed keep acting as the fusion boundary, so a stream
        closed early decodes the instance "as seen so far".  The outcome's
        ``post_final_round_counters`` cover everything recorded since the
        final pushed round arrived — the quantity that determines decoding
        latency (paper §8.2).
        """
        state = self._stream_state
        if state is None:
            raise RuntimeError("finalize before begin(); open a stream first")
        accelerator, primal = state.accelerator, state.primal
        post_final = counter_delta(
            state.last_snapshot, accelerator.counters, primal.counters
        )
        defects = tuple(sorted(d for round_defects in state.rounds for d in round_defects))
        syndrome = Syndrome(defects=defects)
        result = self._collect_result(syndrome, accelerator, primal)
        counters = counter_delta(state.baseline, accelerator.counters, primal.counters)
        prematched = len(accelerator.prematched_pairs())
        outcome = MicroBlossomOutcome(
            result=result,
            defect_count=len(defects),
            counters=counters,
            post_final_round_counters=post_final,
            hardware_report=MicroBlossomAccelerator.hardware_report_from(counters),
            prematched_pairs=prematched,
            stream=True,
            prematching=self.enable_prematching,
        )
        outcome.scale_retries = state.retries
        self._stream_state = None
        return outcome

    def _stream_step(
        self, state: _StreamState, layer: int, defects: tuple[int, ...]
    ) -> Counter:
        """Fuse one round into the running solution and return its cost."""
        accelerator, primal = state.accelerator, state.primal
        snapshot = Counter(accelerator.counters)
        snapshot.update(primal.counters)
        state.last_snapshot = snapshot
        graph = self.graph
        accelerator.load(defects, layers={layer})
        if defects or state.any_defects:
            # Zero-defect fast path: with no defect loaded so far there is no
            # node to re-examine, so an empty round is just a layer load.
            state.any_defects = state.any_defects or bool(defects)
            newly_real = {
                v for v in graph.vertices_in_layer(layer) if not graph.is_virtual(v)
            }
            primal.break_boundary_matches(newly_real)
            primal.run()
        return counter_delta(snapshot, accelerator.counters, primal.counters)

    def _stream_replay(self, state: _StreamState) -> Counter:
        """Re-run every pushed round at ``state.scale`` on fresh engines.

        The accumulated delta of the whole replay is returned: the push that
        triggered the retry is charged for all the re-done work, since the
        deltas earlier pushes reported belong to the abandoned engine.
        """
        accelerator, primal, baseline = self._acquire(state.scale)
        state.accelerator = accelerator
        state.primal = primal
        state.baseline = baseline
        state.any_defects = False
        state.last_snapshot = Counter(accelerator.counters)
        state.last_snapshot.update(primal.counters)
        delta: Counter = Counter()
        for layer, defects in enumerate(state.rounds):
            delta.update(self._stream_step(state, layer, defects))
        return delta

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _acquire(
        self, scale: int
    ) -> tuple[MicroBlossomAccelerator, PrimalModule, Counter]:
        """Return an accelerator/primal pair ready for one decode.

        Engines are cached per dual scale.  For a reused pair the returned
        baseline holds the counters accumulated by previous shots (snapshotted
        *before* the reset, so the reset instruction is accounted to the new
        shot exactly as construction-time reset is for a fresh pair).
        """
        if self.reuse_engines:
            cached = self._engines.get(scale)
            if cached is not None:
                accelerator, primal = cached
                baseline = Counter(accelerator.counters)
                baseline.update(primal.counters)
                accelerator.reset()
                primal.reset()
                return accelerator, primal, baseline
        accelerator = MicroBlossomAccelerator(
            self.graph, scale=scale, enable_prematching=self.enable_prematching
        )
        primal = PrimalModule(self.graph, accelerator)
        if self.reuse_engines:
            self._engines[scale] = (accelerator, primal)
        return accelerator, primal, Counter()

    def _decode_once(self, syndrome: Syndrome, scale: int) -> MicroBlossomOutcome:
        accelerator, primal, baseline = self._acquire(scale)
        accelerator.load(syndrome.defects)
        primal.run()
        post_final = counter_delta(baseline, accelerator.counters, primal.counters)
        result = self._collect_result(syndrome, accelerator, primal)
        counters = counter_delta(baseline, accelerator.counters, primal.counters)
        prematched = len(accelerator.prematched_pairs())
        return MicroBlossomOutcome(
            result=result,
            defect_count=syndrome.defect_count,
            counters=counters,
            post_final_round_counters=post_final,
            hardware_report=MicroBlossomAccelerator.hardware_report_from(counters),
            prematched_pairs=prematched,
            stream=False,
            prematching=self.enable_prematching,
        )

    def _collect_result(
        self,
        syndrome: Syndrome,
        accelerator: MicroBlossomAccelerator,
        primal: PrimalModule,
    ) -> MatchingResult:
        result = primal.collect_matching()
        for prematch in accelerator.prematched_pairs():
            if prematch.peer_is_boundary:
                result.pairs.append((prematch.defect, BOUNDARY))
                result.boundary_vertices[prematch.defect] = prematch.peer
            else:
                result.pairs.append((prematch.defect, prematch.peer))
        result.weight = matching_weight(self.graph, result)
        result.validate_perfect(syndrome.defects)
        return result
