"""Micro Blossom decoder front-end: CPU + accelerator co-simulation.

``MicroBlossomDecoder`` combines the software primal module with the
behavioural accelerator model and supports the three configurations evaluated
in the paper (Figure 10a):

* ``parallel dual phase`` only — pre-matching and streaming disabled;
* ``+ parallel primal phase`` — pre-matching of isolated Conflicts enabled;
* ``+ round-wise fusion`` — streaming, one measurement round at a time.

Every decode returns a :class:`DecodeOutcome` carrying the matching itself and
all the operation counts needed by the latency model (§8.2): accelerator
instructions, blocking response reads, conflicts escalated to the CPU, and —
for stream decoding — the share of the work that happens after the final
measurement round arrived (which is what determines the decoding latency).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import BOUNDARY, MatchingResult, Syndrome, matching_weight
from .accelerator import MicroBlossomAccelerator
from .dual import DEFAULT_DUAL_SCALE
from .interface import IntegralityError
from .primal import PrimalModule

#: Maximum internal dual-scale doublings attempted before giving up.
MAX_SCALE_RETRIES = 4


@dataclass
class DecodeOutcome:
    """Full record of one decoding run."""

    result: MatchingResult
    defect_count: int
    counters: Counter = field(default_factory=Counter)
    post_final_round_counters: Counter = field(default_factory=Counter)
    hardware_report: dict = field(default_factory=dict)
    prematched_pairs: int = 0
    stream: bool = False
    prematching: bool = True
    scale_retries: int = 0

    @property
    def weight(self) -> int:
        return self.result.weight


class MicroBlossomDecoder:
    """Exact MWPM decoder with the Micro Blossom heterogeneous architecture."""

    name = "micro-blossom"

    def __init__(
        self,
        graph: DecodingGraph,
        enable_prematching: bool = True,
        stream: bool = False,
        scale: int = DEFAULT_DUAL_SCALE,
    ) -> None:
        self.graph = graph
        self.enable_prematching = enable_prematching
        self.stream = stream
        self.scale = scale

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, syndrome: Syndrome) -> MatchingResult:
        """Decode a syndrome and return the defect-level matching."""
        return self.decode_detailed(syndrome).result

    def decode_detailed(self, syndrome: Syndrome) -> DecodeOutcome:
        """Decode a syndrome and return the matching plus all statistics."""
        scale = self.scale
        last_error: IntegralityError | None = None
        for retry in range(MAX_SCALE_RETRIES + 1):
            try:
                outcome = self._decode_once(syndrome, scale)
                outcome.scale_retries = retry
                return outcome
            except IntegralityError as error:
                last_error = error
                scale *= 2
        raise IntegralityError(
            f"decoding failed even at dual scale {scale}: {last_error}"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _decode_once(self, syndrome: Syndrome, scale: int) -> DecodeOutcome:
        accelerator = MicroBlossomAccelerator(
            self.graph, scale=scale, enable_prematching=self.enable_prematching
        )
        primal = PrimalModule(self.graph, accelerator)
        if self.stream:
            post_final = self._decode_stream(syndrome, accelerator, primal)
        else:
            accelerator.load(syndrome.defects)
            primal.run()
            before_final = Counter()
            post_final = self._counter_delta(accelerator, primal, before_final)
        result = self._collect_result(syndrome, accelerator, primal)
        counters = Counter(accelerator.counters)
        counters.update(primal.counters)
        prematched = len(accelerator.prematched_pairs())
        return DecodeOutcome(
            result=result,
            defect_count=syndrome.defect_count,
            counters=counters,
            post_final_round_counters=post_final,
            hardware_report=accelerator.hardware_report(),
            prematched_pairs=prematched,
            stream=self.stream,
            prematching=self.enable_prematching,
        )

    def _decode_stream(
        self,
        syndrome: Syndrome,
        accelerator: MicroBlossomAccelerator,
        primal: PrimalModule,
    ) -> Counter:
        """Round-wise fusion: load and solve one measurement round at a time."""
        graph = self.graph
        num_layers = graph.num_layers
        snapshot = Counter()
        for layer in range(num_layers):
            if layer == num_layers - 1:
                snapshot = Counter(accelerator.counters)
                snapshot.update(primal.counters)
            layer_vertices = set(graph.vertices_in_layer(layer))
            layer_defects = [d for d in syndrome.defects if d in layer_vertices]
            accelerator.load(layer_defects, layers={layer})
            newly_real = {
                v for v in layer_vertices if not graph.is_virtual(v)
            }
            primal.break_boundary_matches(newly_real)
            primal.run()
        return self._counter_delta(accelerator, primal, snapshot)

    @staticmethod
    def _counter_delta(
        accelerator: MicroBlossomAccelerator, primal: PrimalModule, before: Counter
    ) -> Counter:
        after = Counter(accelerator.counters)
        after.update(primal.counters)
        delta = Counter()
        for key, value in after.items():
            difference = value - before.get(key, 0)
            if difference:
                delta[key] = difference
        return delta

    def _collect_result(
        self,
        syndrome: Syndrome,
        accelerator: MicroBlossomAccelerator,
        primal: PrimalModule,
    ) -> MatchingResult:
        result = primal.collect_matching()
        for prematch in accelerator.prematched_pairs():
            if prematch.peer_is_boundary:
                result.pairs.append((prematch.defect, BOUNDARY))
                result.boundary_vertices[prematch.defect] = prematch.peer
            else:
                result.pairs.append((prematch.defect, prematch.peer))
        result.weight = matching_weight(self.graph, result)
        result.validate_perfect(syndrome.defects)
        return result
