"""Micro Blossom decoder front-end: CPU + accelerator co-simulation.

``MicroBlossomDecoder`` combines the software primal module with the
behavioural accelerator model and supports the three configurations evaluated
in the paper (Figure 10a):

* ``parallel dual phase`` only — pre-matching and streaming disabled;
* ``+ parallel primal phase`` — pre-matching of isolated Conflicts enabled;
* ``+ round-wise fusion`` — streaming, one measurement round at a time.

Every decode returns a :class:`MicroBlossomOutcome` carrying the matching
itself and all the operation counts needed by the latency model (§8.2):
accelerator instructions, blocking response reads, conflicts escalated to the
CPU, and — for stream decoding — the share of the work that happens after the
final measurement round arrived (which is what determines the decoding
latency).

The decoder keeps its accelerator model and primal module alive across
decodes (``reuse_engines=True``, the default): each shot snapshots the
counters, ``reset()``s both engines and reports per-shot counter deltas, so
the results and statistics are identical to a freshly-built decoder while the
per-shot construction cost disappears from the Monte-Carlo hot path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..api.outcome import DecodeOutcome as DecodeOutcomeBase
from ..api.outcome import counter_delta
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import (
    BOUNDARY,
    MatchingResult,
    Syndrome,
    correction_edges,
    matching_weight,
)
from .accelerator import MicroBlossomAccelerator
from .dual import DEFAULT_DUAL_SCALE
from .interface import IntegralityError
from .primal import PrimalModule

#: Maximum internal dual-scale doublings attempted before giving up.
MAX_SCALE_RETRIES = 4


@dataclass
class MicroBlossomOutcome(DecodeOutcomeBase):
    """Full record of one Micro Blossom decoding run."""

    post_final_round_counters: Counter = field(default_factory=Counter)
    hardware_report: dict = field(default_factory=dict)
    prematched_pairs: int = 0
    stream: bool = False
    prematching: bool = True


#: Backwards-compatible alias (the outcome class used to carry this name).
DecodeOutcome = MicroBlossomOutcome


class MicroBlossomDecoder:
    """Exact MWPM decoder with the Micro Blossom heterogeneous architecture."""

    name = "micro-blossom"

    def __init__(
        self,
        graph: DecodingGraph,
        enable_prematching: bool = True,
        stream: bool = False,
        scale: int = DEFAULT_DUAL_SCALE,
        reuse_engines: bool = True,
    ) -> None:
        self.graph = graph
        self.enable_prematching = enable_prematching
        self.stream = stream
        self.scale = scale
        self.reuse_engines = reuse_engines
        self._engines: dict[int, tuple[MicroBlossomAccelerator, PrimalModule]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def decode(self, syndrome: Syndrome) -> MatchingResult:
        """Decode a syndrome and return the defect-level matching."""
        return self.decode_detailed(syndrome).result

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        """Decode a syndrome and return the correction edge set."""
        return correction_edges(self.graph, self.decode(syndrome))

    def decode_detailed(self, syndrome: Syndrome) -> MicroBlossomOutcome:
        """Decode a syndrome and return the matching plus all statistics.

        Every decode starts from ``self.scale``; when an
        :class:`IntegralityError` forces a retry at a doubled scale, the
        doubled scale is confined to that retry (and its cached engine) and
        never leaks into subsequent decodes of the same decoder or session.
        """
        scale = self.scale
        last_error: IntegralityError | None = None
        for retry in range(MAX_SCALE_RETRIES + 1):
            try:
                outcome = self._decode_once(syndrome, scale)
                outcome.scale_retries = retry
                return outcome
            except IntegralityError as error:
                last_error = error
                scale *= 2
        raise IntegralityError(
            f"decoding failed even at dual scale {scale}: {last_error}"
        )

    def reset(self) -> None:
        """Drop all cached engines; the next decode rebuilds them."""
        self._engines = {}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _acquire(
        self, scale: int
    ) -> tuple[MicroBlossomAccelerator, PrimalModule, Counter]:
        """Return an accelerator/primal pair ready for one decode.

        Engines are cached per dual scale.  For a reused pair the returned
        baseline holds the counters accumulated by previous shots (snapshotted
        *before* the reset, so the reset instruction is accounted to the new
        shot exactly as construction-time reset is for a fresh pair).
        """
        if self.reuse_engines:
            cached = self._engines.get(scale)
            if cached is not None:
                accelerator, primal = cached
                baseline = Counter(accelerator.counters)
                baseline.update(primal.counters)
                accelerator.reset()
                primal.reset()
                return accelerator, primal, baseline
        accelerator = MicroBlossomAccelerator(
            self.graph, scale=scale, enable_prematching=self.enable_prematching
        )
        primal = PrimalModule(self.graph, accelerator)
        if self.reuse_engines:
            self._engines[scale] = (accelerator, primal)
        return accelerator, primal, Counter()

    def _decode_once(self, syndrome: Syndrome, scale: int) -> MicroBlossomOutcome:
        accelerator, primal, baseline = self._acquire(scale)
        if self.stream:
            post_final = self._decode_stream(syndrome, accelerator, primal)
        else:
            accelerator.load(syndrome.defects)
            primal.run()
            post_final = counter_delta(baseline, accelerator.counters, primal.counters)
        result = self._collect_result(syndrome, accelerator, primal)
        counters = counter_delta(baseline, accelerator.counters, primal.counters)
        prematched = len(accelerator.prematched_pairs())
        return MicroBlossomOutcome(
            result=result,
            defect_count=syndrome.defect_count,
            counters=counters,
            post_final_round_counters=post_final,
            hardware_report=MicroBlossomAccelerator.hardware_report_from(counters),
            prematched_pairs=prematched,
            stream=self.stream,
            prematching=self.enable_prematching,
        )

    def _decode_stream(
        self,
        syndrome: Syndrome,
        accelerator: MicroBlossomAccelerator,
        primal: PrimalModule,
    ) -> Counter:
        """Round-wise fusion: load and solve one measurement round at a time."""
        graph = self.graph
        num_layers = graph.num_layers
        snapshot = Counter()
        for layer in range(num_layers):
            if layer == num_layers - 1:
                snapshot = Counter(accelerator.counters)
                snapshot.update(primal.counters)
            layer_vertices = set(graph.vertices_in_layer(layer))
            layer_defects = [d for d in syndrome.defects if d in layer_vertices]
            accelerator.load(layer_defects, layers={layer})
            newly_real = {
                v for v in layer_vertices if not graph.is_virtual(v)
            }
            primal.break_boundary_matches(newly_real)
            primal.run()
        return counter_delta(snapshot, accelerator.counters, primal.counters)

    def _collect_result(
        self,
        syndrome: Syndrome,
        accelerator: MicroBlossomAccelerator,
        primal: PrimalModule,
    ) -> MatchingResult:
        result = primal.collect_matching()
        for prematch in accelerator.prematched_pairs():
            if prematch.peer_is_boundary:
                result.pairs.append((prematch.defect, BOUNDARY))
                result.boundary_vertices[prematch.defect] = prematch.peer
            else:
                result.pairs.append((prematch.defect, prematch.peer))
        result.weight = matching_weight(self.graph, result)
        result.validate_perfect(syndrome.defects)
        return result
