"""Primal phase of the blossom algorithm (the software half of Micro Blossom).

The primal module owns every dynamically-sized data structure of the blossom
algorithm — matched pairs, alternating trees, and the blossom hierarchy — and
resolves the Obstacles reported by the dual phase (paper §3.1, §5.1).  It only
talks to the dual phase through the accelerator instruction set: ``grow``,
``set direction``, ``set cover`` (create/expand blossom) and ``find conflict``.

The module is deliberately lazy: it creates its view of a node only when the
dual phase first reports a Conflict involving it.  Combined with the
accelerator's pre-matching of isolated Conflicts this is what reduces the
number of CPU–accelerator interactions from O(p|V|) to O(p²|V|) (paper §5).
The Parity Blossom software baseline uses the same module but registers every
defect eagerly (one CPU read per defect), reproducing the O(p|V|) behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import BOUNDARY, MatchingResult
from .interface import (
    Conflict,
    DualPhaseError,
    Finished,
    GrowLength,
    GROW,
    HOLD,
    SHRINK,
)

#: Safety bound on primal iterations, far above anything a valid decoding
#: instance can need; prevents silent infinite loops in case of a bug.
MAX_ITERATION_FACTOR = 200


@dataclass
class PrimalNode:
    """Software-side state of one blossom-algorithm node.

    A node is either a single defect vertex (``cycle`` empty, ``node_id`` is
    the vertex index) or a blossom (``cycle`` holds the odd ring of child
    nodes).  Tree and matching fields are only meaningful while the node is
    *outer*, i.e. not absorbed inside another blossom.
    """

    node_id: int
    y: int = 0
    direction: int = GROW
    parent_blossom: int | None = None
    cycle: list[int] = field(default_factory=list)
    #: ``cycle_links[i]`` is the tight edge realising the ring between
    #: ``cycle[i]`` and ``cycle[(i+1) % len(cycle)]`` as a pair of defect
    #: vertices ``(touch in cycle[i], touch in cycle[i+1])``.
    cycle_links: list[tuple[int, int]] = field(default_factory=list)
    tree_parent: int | None = None
    #: ``(touch in self, touch in parent)`` for the tree edge to the parent.
    parent_link: tuple[int, int] | None = None
    tree_children: set[int] = field(default_factory=set)
    match_node: int | None = None
    #: ``(touch in self, touch in peer)``; when matched to the boundary the
    #: peer touch is the boundary (virtual or unloaded) vertex itself.
    match_link: tuple[int, int] | None = None
    matched_to_boundary: bool = False

    @property
    def is_blossom(self) -> bool:
        return bool(self.cycle)

    @property
    def is_matched(self) -> bool:
        return self.matched_to_boundary or self.match_node is not None

    @property
    def in_tree(self) -> bool:
        return self.direction != HOLD


class PrimalModule:
    """Alternating trees, matched pairs and blossoms on top of a dual driver."""

    def __init__(self, graph: DecodingGraph, dual) -> None:
        self.graph = graph
        self.dual = dual
        self.nodes: dict[int, PrimalNode] = {}
        self._next_blossom_id = graph.num_vertices
        self.counters: Counter = Counter()

    def reset(self) -> None:
        """Forget every node so the module can decode a fresh syndrome.

        Counters are deliberately kept cumulative (like the dual engine's);
        callers that reuse the module across shots report per-shot deltas.
        """
        self.nodes = {}
        self._next_blossom_id = self.graph.num_vertices

    # ------------------------------------------------------------------
    # node bookkeeping
    # ------------------------------------------------------------------
    def register_defect(self, defect: int) -> PrimalNode:
        """Eagerly create the singleton node of a defect (Parity Blossom mode).

        Counts as one CPU read of the syndrome, which is exactly the cost the
        heterogeneous architecture avoids for isolated errors.
        """
        self.counters["defect_reads"] += 1
        return self._ensure_node(defect)

    def _ensure_node(self, node_id: int) -> PrimalNode:
        node = self.nodes.get(node_id)
        if node is not None:
            return node
        if node_id >= self.graph.num_vertices:
            raise DualPhaseError(f"unknown blossom node {node_id} reported by dual phase")
        if self.dual.is_boundary_node(node_id):
            raise DualPhaseError(f"boundary vertex {node_id} cannot become a node")
        # A lazily discovered singleton: it has been growing autonomously in
        # the dual phase, so mirror its accumulated dual variable.
        node = PrimalNode(node_id=node_id, y=self.dual.radius_of(node_id), direction=GROW)
        self.nodes[node_id] = node
        self.counters["nodes_discovered"] += 1
        return node

    def outer_nodes(self) -> list[PrimalNode]:
        return [node for node in self.nodes.values() if node.parent_blossom is None]

    def _tree_root(self, node: PrimalNode) -> PrimalNode:
        while node.tree_parent is not None:
            node = self.nodes[node.tree_parent]
        return node

    def _defects_of(self, node_id: int) -> set[int]:
        node = self.nodes[node_id]
        if not node.is_blossom:
            return {node_id}
        defects: set[int] = set()
        for child in node.cycle:
            defects |= self._defects_of(child)
        return defects

    def _cycle_child_containing(self, blossom: PrimalNode, defect: int) -> int:
        for child in blossom.cycle:
            if defect in self._defects_of(child):
                return child
        raise DualPhaseError(
            f"defect {defect} not found in blossom {blossom.node_id}"
        )

    def _set_direction(self, node: PrimalNode, direction: int) -> None:
        node.direction = direction
        self.dual.set_direction(node.node_id, direction)
        self.counters["direction_updates"] += 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Drive the dual phase until no node can grow any further."""
        max_iterations = MAX_ITERATION_FACTOR * (self.graph.num_vertices + 10)
        for _ in range(max_iterations):
            obstacle = self.dual.find_obstacle()
            self.counters["obstacle_queries"] += 1
            if isinstance(obstacle, Finished):
                self._check_all_matched()
                return
            if isinstance(obstacle, Conflict):
                self.counters["conflicts_resolved"] += 1
                self._resolve(obstacle)
                continue
            assert isinstance(obstacle, GrowLength)
            length = obstacle.length
            blocking: PrimalNode | None = None
            for node in self.outer_nodes():
                if node.direction == SHRINK and node.y < length:
                    length = node.y
                    blocking = node
            if blocking is not None and length == 0:
                self._expand_blossom(blocking)
                continue
            if length <= 0:
                raise DualPhaseError("non-positive growth with no blocking node")
            self.dual.grow(length)
            self.counters["grow_operations"] += 1
            for node in self.outer_nodes():
                if node.direction != HOLD:
                    node.y += node.direction * length
                    if node.y < 0:
                        raise DualPhaseError(
                            f"dual variable of node {node.node_id} became negative"
                        )
        raise DualPhaseError("primal phase did not converge (iteration limit)")

    def _check_all_matched(self) -> None:
        for node in self.outer_nodes():
            if not node.is_matched:
                raise DualPhaseError(
                    f"dual phase finished but node {node.node_id} is unmatched"
                )

    # ------------------------------------------------------------------
    # conflict resolution (paper §5.1: the three primal operations)
    # ------------------------------------------------------------------
    def _resolve(self, conflict: Conflict) -> None:
        node_1 = self._ensure_node(conflict.node_1)
        link = (conflict.touch_1, conflict.touch_2)
        if self.dual.is_boundary_node(conflict.node_2):
            if node_1.direction != GROW:
                raise DualPhaseError("boundary conflict with a non-growing node")
            self._augment_to_boundary(node_1, link)
            return
        node_2 = self._ensure_node(conflict.node_2)
        if node_1.direction != GROW:
            node_1, node_2 = node_2, node_1
            link = (link[1], link[0])
        if node_1.direction != GROW:
            raise DualPhaseError("conflict reported without a growing node")
        if node_2.direction == GROW:
            if self._tree_root(node_1) is self._tree_root(node_2):
                self._form_blossom(node_1, node_2, link)
            else:
                self._augment(node_1, node_2, link)
        elif node_2.direction == HOLD:
            if node_2.matched_to_boundary:
                self._augment_through(node_1, node_2, link)
            else:
                self._attach(node_1, node_2, link)
        else:
            raise DualPhaseError("conflict with a shrinking node cannot occur")

    # -- matched pair / alternating tree manipulation ----------------------
    def _rematch_path_to_root(self, node: PrimalNode) -> None:
        """Flip matched edges along the tree path from ``node`` to its root.

        ``node`` must be a "+" node; the caller gives it a new external match.
        Every "-" node on the path re-matches to its own tree parent.
        """
        current = node
        while current.tree_parent is not None:
            parent = self.nodes[current.tree_parent]
            if parent.tree_parent is None:
                raise DualPhaseError("alternating tree has a '-' root")
            grandparent = self.nodes[parent.tree_parent]
            parent.match_node = grandparent.node_id
            parent.match_link = parent.parent_link
            parent.matched_to_boundary = False
            grandparent.match_node = parent.node_id
            grandparent.match_link = (parent.parent_link[1], parent.parent_link[0])
            grandparent.matched_to_boundary = False
            current = grandparent

    def _tree_nodes(self, root: PrimalNode) -> list[PrimalNode]:
        nodes = []
        stack = [root]
        while stack:
            node = stack.pop()
            nodes.append(node)
            stack.extend(self.nodes[child] for child in node.tree_children)
        return nodes

    def _dissolve_tree(self, root: PrimalNode) -> None:
        """Turn every node of a tree into a free matched node (direction 0)."""
        for node in self._tree_nodes(root):
            if node.direction != HOLD:
                self._set_direction(node, HOLD)
            node.tree_parent = None
            node.parent_link = None
            node.tree_children = set()

    def _augment(self, node_1: PrimalNode, node_2: PrimalNode, link) -> None:
        """Both nodes are "+" in different trees: augment along both paths."""
        root_1 = self._tree_root(node_1)
        root_2 = self._tree_root(node_2)
        self._rematch_path_to_root(node_1)
        self._rematch_path_to_root(node_2)
        node_1.match_node = node_2.node_id
        node_1.match_link = (link[0], link[1])
        node_1.matched_to_boundary = False
        node_2.match_node = node_1.node_id
        node_2.match_link = (link[1], link[0])
        node_2.matched_to_boundary = False
        self._dissolve_tree(root_1)
        self._dissolve_tree(root_2)
        self.counters["augmentations"] += 1

    def _augment_to_boundary(self, node: PrimalNode, link) -> None:
        """A "+" node touched the boundary: its whole tree becomes matched."""
        root = self._tree_root(node)
        self._rematch_path_to_root(node)
        node.match_node = None
        node.match_link = (link[0], link[1])
        node.matched_to_boundary = True
        self._dissolve_tree(root)
        self.counters["augmentations"] += 1
        self.counters["boundary_matches"] += 1

    def _augment_through(self, node_1: PrimalNode, node_2: PrimalNode, link) -> None:
        """``node_2`` is matched to the boundary: the path extends through it."""
        root_1 = self._tree_root(node_1)
        self._rematch_path_to_root(node_1)
        node_1.match_node = node_2.node_id
        node_1.match_link = (link[0], link[1])
        node_1.matched_to_boundary = False
        node_2.match_node = node_1.node_id
        node_2.match_link = (link[1], link[0])
        node_2.matched_to_boundary = False
        self._dissolve_tree(root_1)
        self.counters["augmentations"] += 1

    def _attach(self, node_plus: PrimalNode, node_free: PrimalNode, link) -> None:
        """Attach a matched pair to an alternating tree ("-" then "+")."""
        mate = self.nodes[node_free.match_node]
        node_free.tree_parent = node_plus.node_id
        node_free.parent_link = (link[1], link[0])
        node_plus.tree_children.add(node_free.node_id)
        node_free.tree_children = {mate.node_id}
        mate.tree_parent = node_free.node_id
        mate.parent_link = mate.match_link
        mate.tree_children = set()
        self._set_direction(node_free, SHRINK)
        self._set_direction(mate, GROW)
        self.counters["tree_attachments"] += 1

    # -- blossoms ----------------------------------------------------------
    def _link_between(
        self, first: PrimalNode, second: PrimalNode, conflict_link
    ) -> tuple[int, int]:
        """Tight-edge touches between two consecutive cycle nodes."""
        if second.tree_parent == first.node_id and second.parent_link is not None:
            return (second.parent_link[1], second.parent_link[0])
        if first.tree_parent == second.node_id and first.parent_link is not None:
            return first.parent_link
        return conflict_link

    def _form_blossom(self, node_1: PrimalNode, node_2: PrimalNode, link) -> None:
        """Two "+" nodes of the same tree collided: shrink the odd cycle."""
        ancestors_1: list[PrimalNode] = [node_1]
        while ancestors_1[-1].tree_parent is not None:
            ancestors_1.append(self.nodes[ancestors_1[-1].tree_parent])
        ancestor_ids = {node.node_id: i for i, node in enumerate(ancestors_1)}
        path_2: list[PrimalNode] = []
        current = node_2
        while current.node_id not in ancestor_ids:
            path_2.append(current)
            if current.tree_parent is None:
                raise DualPhaseError("conflicting nodes are not in the same tree")
            current = self.nodes[current.tree_parent]
        lca = current
        path_1 = ancestors_1[: ancestor_ids[lca.node_id]]

        cycle_nodes: list[PrimalNode] = [lca] + list(reversed(path_1)) + path_2
        cycle_links: list[tuple[int, int]] = []
        for i, node in enumerate(cycle_nodes):
            peer = cycle_nodes[(i + 1) % len(cycle_nodes)]
            if {node.node_id, peer.node_id} == {node_1.node_id, node_2.node_id}:
                pair_link = link if node is node_1 else (link[1], link[0])
            else:
                pair_link = None
            cycle_links.append(
                pair_link
                if pair_link is not None
                else self._link_between(node, peer, link)
            )
        if len(cycle_nodes) % 2 == 0:
            raise DualPhaseError("blossom cycle must contain an odd number of nodes")

        blossom_id = self._next_blossom_id
        self._next_blossom_id += 1
        blossom = PrimalNode(
            node_id=blossom_id,
            y=0,
            direction=GROW,
            cycle=[node.node_id for node in cycle_nodes],
            cycle_links=cycle_links,
        )
        # Take over the LCA's place in the tree.
        blossom.tree_parent = lca.tree_parent
        blossom.parent_link = lca.parent_link
        blossom.match_node = lca.match_node
        blossom.match_link = lca.match_link
        blossom.matched_to_boundary = lca.matched_to_boundary
        if lca.match_node is not None:
            # The LCA's match partner must now point at the blossom instead.
            self.nodes[lca.match_node].match_node = blossom_id
        if lca.tree_parent is not None:
            parent = self.nodes[lca.tree_parent]
            parent.tree_children.discard(lca.node_id)
            parent.tree_children.add(blossom_id)
        cycle_ids = {node.node_id for node in cycle_nodes}
        absorbed_children: set[int] = set()
        for node in cycle_nodes:
            absorbed_children |= node.tree_children - cycle_ids
        blossom.tree_children = absorbed_children
        for child_id in absorbed_children:
            self.nodes[child_id].tree_parent = blossom_id
        for node in cycle_nodes:
            node.parent_blossom = blossom_id
            node.tree_parent = None
            node.parent_link = None
            node.tree_children = set()
            node.match_node = None
            node.match_link = None
            node.matched_to_boundary = False
            node.direction = HOLD
        self.nodes[blossom_id] = blossom
        self.dual.create_blossom(blossom.cycle, blossom_id)
        self.counters["blossoms_formed"] += 1

    def _expand_blossom(self, blossom: PrimalNode) -> None:
        """Expand a "-" blossom whose dual variable reached zero (obstacle 2a)."""
        if not blossom.is_blossom:
            raise DualPhaseError(
                f"single-vertex node {blossom.node_id} cannot be expanded"
            )
        if blossom.direction != SHRINK or blossom.y != 0:
            raise DualPhaseError("only shrinking blossoms with y=0 can be expanded")
        if blossom.tree_parent is None or blossom.match_node is None:
            raise DualPhaseError("a '-' blossom must have a parent and a match")
        parent = self.nodes[blossom.tree_parent]
        external_match = self.nodes[blossom.match_node]
        entry_touch, parent_touch = blossom.parent_link
        exit_touch, match_touch = blossom.match_link

        cycle = blossom.cycle
        n = len(cycle)
        entry_index = cycle.index(self._cycle_child_containing(blossom, entry_touch))
        exit_index = cycle.index(self._cycle_child_containing(blossom, exit_touch))

        def forward_path(start: int, end: int) -> list[int]:
            indices = [start]
            while indices[-1] != end:
                indices.append((indices[-1] + 1) % n)
            return indices

        if entry_index == exit_index:
            # The same child touches both the parent and the match: it alone
            # stays in the tree, all other children pair up around the ring.
            tree_path = [entry_index]
            other_path = [(entry_index + k) % n for k in range(n + 1)]
        else:
            path_forward = forward_path(entry_index, exit_index)
            path_backward = list(reversed(forward_path(exit_index, entry_index)))
            tree_path = path_forward if len(path_forward) % 2 == 1 else path_backward
            other_path = path_backward if tree_path is path_forward else path_forward

        def link_between_indices(i: int, j: int) -> tuple[int, int]:
            """Touches oriented from cycle index ``i`` towards cycle index ``j``."""
            if (i + 1) % n == j:
                return blossom.cycle_links[i]
            if (j + 1) % n == i:
                reverse = blossom.cycle_links[j]
                return (reverse[1], reverse[0])
            raise DualPhaseError("cycle indices are not adjacent")

        # Children along the even arc stay in the alternating tree.
        tree_children = [self.nodes[cycle[i]] for i in tree_path]
        previous = parent
        previous_id = parent.node_id
        parent.tree_children.discard(blossom.node_id)
        for position, node in enumerate(tree_children):
            node.parent_blossom = None
            node.tree_children = set()
            if position == 0:
                node.tree_parent = parent.node_id
                node.parent_link = (entry_touch, parent_touch)
                parent.tree_children.add(node.node_id)
            else:
                node.tree_parent = previous_id
                node.parent_link = link_between_indices(
                    tree_path[position], tree_path[position - 1]
                )
                self.nodes[previous_id].tree_children.add(node.node_id)
            direction = SHRINK if position % 2 == 0 else GROW
            self._set_direction(node, direction)
            previous_id = node.node_id
        # Matched edges inside the even arc alternate starting at the entry.
        for position in range(0, len(tree_children) - 1, 2):
            lower = tree_children[position]
            upper = tree_children[position + 1]
            link = link_between_indices(tree_path[position], tree_path[position + 1])
            lower.match_node = upper.node_id
            lower.match_link = link
            lower.matched_to_boundary = False
            upper.match_node = lower.node_id
            upper.match_link = (link[1], link[0])
            upper.matched_to_boundary = False
        exit_node = tree_children[-1]
        exit_node.match_node = external_match.node_id
        exit_node.match_link = (exit_touch, match_touch)
        exit_node.matched_to_boundary = False
        exit_node.tree_children = {external_match.node_id}
        external_match.tree_parent = exit_node.node_id
        external_match.match_node = exit_node.node_id

        # Children on the odd arc become free matched pairs.
        interior = other_path[1:-1]
        for position in range(0, len(interior), 2):
            first = self.nodes[cycle[interior[position]]]
            second = self.nodes[cycle[interior[position + 1]]]
            link = link_between_indices(interior[position], interior[position + 1])
            for node in (first, second):
                node.parent_blossom = None
                node.tree_parent = None
                node.parent_link = None
                node.tree_children = set()
            first.match_node = second.node_id
            first.match_link = link
            first.matched_to_boundary = False
            second.match_node = first.node_id
            second.match_link = (link[1], link[0])
            second.matched_to_boundary = False
            self._set_direction(first, HOLD)
            self._set_direction(second, HOLD)

        new_roots = {
            defect: child
            for child in cycle
            for defect in self._defects_of_child_after_expansion(child)
        }
        del self.nodes[blossom.node_id]
        self.dual.expand_blossom(blossom.node_id, new_roots)
        self.counters["blossoms_expanded"] += 1

    def _defects_of_child_after_expansion(self, child_id: int) -> set[int]:
        return self._defects_of(child_id)

    # ------------------------------------------------------------------
    # round-wise fusion support (paper §6.2)
    # ------------------------------------------------------------------
    def break_boundary_matches(self, vertices: set[int]) -> int:
        """Release matchings to boundary vertices that just became real.

        Called by the stream decoder right after a new measurement round is
        loaded: every node previously matched to one of the given (formerly
        virtual, now loaded) vertices becomes an unmatched growing tree again.
        Returns the number of matchings broken.
        """
        broken = 0
        for node in self.outer_nodes():
            if not node.matched_to_boundary or node.match_link is None:
                continue
            if node.match_link[1] in vertices:
                node.matched_to_boundary = False
                node.match_link = None
                node.match_node = None
                self._set_direction(node, GROW)
                broken += 1
        self.counters["fusion_breaks"] += broken
        return broken

    # ------------------------------------------------------------------
    # result extraction
    # ------------------------------------------------------------------
    def collect_matching(self) -> MatchingResult:
        """Expand the node-level matching into defect-level pairs."""
        pairs: list[tuple[int, int]] = []
        boundary_vertices: dict[int, int] = {}
        seen: set[int] = set()
        for node in self.outer_nodes():
            if node.node_id in seen:
                continue
            if node.matched_to_boundary:
                touch, boundary_vertex = node.match_link
                pairs.append((touch, BOUNDARY))
                boundary_vertices[touch] = boundary_vertex
                pairs.extend(self._internal_pairs(node, touch))
                seen.add(node.node_id)
            elif node.match_node is not None:
                peer = self.nodes[node.match_node]
                touch_self, touch_peer = node.match_link
                pairs.append((touch_self, touch_peer))
                pairs.extend(self._internal_pairs(node, touch_self))
                pairs.extend(self._internal_pairs(peer, touch_peer))
                seen.add(node.node_id)
                seen.add(peer.node_id)
            else:
                raise DualPhaseError(
                    f"node {node.node_id} is unmatched at extraction time"
                )
        return MatchingResult(pairs=pairs, boundary_vertices=boundary_vertices)

    def _internal_pairs(
        self, node: PrimalNode, exposed_defect: int
    ) -> list[tuple[int, int]]:
        if not node.is_blossom:
            return []
        exposed_child = self._cycle_child_containing(node, exposed_defect)
        index = node.cycle.index(exposed_child)
        pairs = self._internal_pairs(self.nodes[exposed_child], exposed_defect)
        n = len(node.cycle)
        offset = 1
        while offset < n:
            first_index = (index + offset) % n
            second_index = (index + offset + 1) % n
            first = self.nodes[node.cycle[first_index]]
            second = self.nodes[node.cycle[second_index]]
            link = node.cycle_links[first_index]
            pairs.append((link[0], link[1]))
            pairs.extend(self._internal_pairs(first, link[0]))
            pairs.extend(self._internal_pairs(second, link[1]))
            offset += 2
        return pairs
