"""Accelerator instruction set (paper Table 3).

The Micro Blossom accelerator is programmable through 32-bit instruction words
written over a memory-mapped bus.  This module models the binary encoding so
that bus-level traffic (number of words written / read) can be accounted for
precisely by the latency model, and so that the encoding itself can be tested
for round-trip consistency like the RTL generator of the paper's artifact.

Word layout (Table 3)::

    reset          |                          |1001|00|
    set Direction  | S [31:17] | dir [16:15] 0|  00|
    grow           | l [31:6]                 |1101|00|
    set Cover      | C [31:17] | S [16:2]     |  01|
    find Conflict  |                          |0001|00|
    load Defects   | custom [31:6]            |0111|00|

The two least-significant bits select the instruction group (``01`` for
``set Cover``, ``00`` for everything else); the next four bits select the
opcode within the group.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: Number of bits used to encode a node index (supports 2^14 vertices plus as
#: many blossoms, i.e. code distances up to 31 as stated in the paper).
NODE_INDEX_BITS = 15
MAX_NODE_INDEX = (1 << NODE_INDEX_BITS) - 1
#: Maximum growth length encodable in a single ``grow`` instruction.
MAX_GROW_LENGTH = (1 << 26) - 1

_GROUP_MASK = 0b11
_OPCODE_SHIFT = 2
_OPCODE_MASK = 0b1111


class Opcode(Enum):
    """Instruction opcodes of the dual-phase accelerator."""

    RESET = 0b1001
    SET_DIRECTION = 0b0000
    GROW = 0b1101
    SET_COVER = None  # encoded by the instruction group bits instead
    FIND_CONFLICT = 0b0001
    LOAD_DEFECTS = 0b0111


@dataclass(frozen=True)
class Instruction:
    """A decoded accelerator instruction."""

    opcode: Opcode
    node: int | None = None
    direction: int | None = None
    length: int | None = None
    cover_source: int | None = None
    cover_target: int | None = None
    payload: int | None = None

    def encode(self) -> int:
        """Return the 32-bit instruction word."""
        return encode_instruction(self)


def _encode_direction(direction: int) -> int:
    mapping = {0: 0b00, 1: 0b01, -1: 0b10}
    try:
        return mapping[direction]
    except KeyError as exc:
        raise ValueError(f"invalid direction {direction}") from exc


def _decode_direction(bits: int) -> int:
    mapping = {0b00: 0, 0b01: 1, 0b10: -1}
    try:
        return mapping[bits]
    except KeyError as exc:
        raise ValueError(f"invalid direction bits {bits:#04b}") from exc


def _check_node(node: int) -> None:
    if not 0 <= node <= MAX_NODE_INDEX:
        raise ValueError(
            f"node index {node} does not fit in {NODE_INDEX_BITS} bits"
        )


def encode_instruction(instruction: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit word."""
    opcode = instruction.opcode
    if opcode is Opcode.RESET:
        return (Opcode.RESET.value << _OPCODE_SHIFT) | 0b00
    if opcode is Opcode.FIND_CONFLICT:
        return (Opcode.FIND_CONFLICT.value << _OPCODE_SHIFT) | 0b00
    if opcode is Opcode.SET_DIRECTION:
        if instruction.node is None or instruction.direction is None:
            raise ValueError("set Direction requires a node and a direction")
        _check_node(instruction.node)
        word = instruction.node << 17
        word |= _encode_direction(instruction.direction) << 15
        return word  # opcode bits are zero for this instruction
    if opcode is Opcode.GROW:
        if instruction.length is None or instruction.length < 0:
            raise ValueError("grow requires a non-negative length")
        if instruction.length > MAX_GROW_LENGTH:
            raise ValueError(f"grow length {instruction.length} does not fit in 26 bits")
        return (instruction.length << 6) | (Opcode.GROW.value << _OPCODE_SHIFT) | 0b00
    if opcode is Opcode.SET_COVER:
        if instruction.cover_source is None or instruction.cover_target is None:
            raise ValueError("set Cover requires a source and a target node")
        _check_node(instruction.cover_source)
        _check_node(instruction.cover_target)
        return (instruction.cover_source << 17) | (instruction.cover_target << 2) | 0b01
    if opcode is Opcode.LOAD_DEFECTS:
        payload = instruction.payload or 0
        if not 0 <= payload < (1 << 26):
            raise ValueError("load Defects payload does not fit in 26 bits")
        return (payload << 6) | (Opcode.LOAD_DEFECTS.value << _OPCODE_SHIFT) | 0b00
    raise ValueError(f"unsupported opcode {opcode}")


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise ValueError("instruction word must be a 32-bit unsigned integer")
    group = word & _GROUP_MASK
    if group == 0b01:
        return Instruction(
            opcode=Opcode.SET_COVER,
            cover_source=word >> 17,
            cover_target=(word >> 2) & MAX_NODE_INDEX,
        )
    opcode_bits = (word >> _OPCODE_SHIFT) & _OPCODE_MASK
    if opcode_bits == Opcode.RESET.value:
        return Instruction(opcode=Opcode.RESET)
    if opcode_bits == Opcode.FIND_CONFLICT.value:
        return Instruction(opcode=Opcode.FIND_CONFLICT)
    if opcode_bits == Opcode.GROW.value:
        return Instruction(opcode=Opcode.GROW, length=word >> 6)
    if opcode_bits == Opcode.LOAD_DEFECTS.value:
        return Instruction(opcode=Opcode.LOAD_DEFECTS, payload=word >> 6)
    # set Direction uses opcode bits 0000 with the payload stored higher up.
    return Instruction(
        opcode=Opcode.SET_DIRECTION,
        node=word >> 17,
        direction=_decode_direction((word >> 15) & 0b11),
    )


def reset_word() -> int:
    return encode_instruction(Instruction(opcode=Opcode.RESET))


def find_conflict_word() -> int:
    return encode_instruction(Instruction(opcode=Opcode.FIND_CONFLICT))


def grow_word(length: int) -> int:
    return encode_instruction(Instruction(opcode=Opcode.GROW, length=length))


def set_direction_word(node: int, direction: int) -> int:
    return encode_instruction(
        Instruction(opcode=Opcode.SET_DIRECTION, node=node, direction=direction)
    )


def set_cover_word(source: int, target: int) -> int:
    return encode_instruction(
        Instruction(opcode=Opcode.SET_COVER, cover_source=source, cover_target=target)
    )


def load_defects_word(layer: int) -> int:
    return encode_instruction(Instruction(opcode=Opcode.LOAD_DEFECTS, payload=layer))
