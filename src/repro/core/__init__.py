"""Micro Blossom core: accelerator model, primal module, decoder front-end."""

from .accelerator import MicroBlossomAccelerator, PreMatch
from .decoder import DecodeOutcome, MicroBlossomDecoder, MicroBlossomOutcome
from .dual import DEFAULT_DUAL_SCALE, DualGraphState
from .instructions import (
    Instruction,
    Opcode,
    decode_instruction,
    encode_instruction,
)
from .interface import (
    Conflict,
    DualPhaseError,
    Finished,
    GrowLength,
    GROW,
    HOLD,
    IntegralityError,
    Obstacle,
    SHRINK,
)
from .primal import PrimalModule, PrimalNode

__all__ = [
    "MicroBlossomAccelerator",
    "PreMatch",
    "DecodeOutcome",
    "MicroBlossomDecoder",
    "MicroBlossomOutcome",
    "DEFAULT_DUAL_SCALE",
    "DualGraphState",
    "Instruction",
    "Opcode",
    "decode_instruction",
    "encode_instruction",
    "Conflict",
    "DualPhaseError",
    "Finished",
    "GrowLength",
    "GROW",
    "HOLD",
    "IntegralityError",
    "Obstacle",
    "SHRINK",
    "PrimalModule",
    "PrimalNode",
]
