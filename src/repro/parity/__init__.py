"""Parity Blossom software baseline (sequential primal + dual phases)."""

from .decoder import ParityBlossomDecoder, ParityDecodeOutcome, SerialDualPhase

__all__ = ["ParityBlossomDecoder", "ParityDecodeOutcome", "SerialDualPhase"]
