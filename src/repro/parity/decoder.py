"""Parity Blossom: the software MWPM baseline used throughout the evaluation.

Parity Blossom (Wu & Zhong, cited as [42]) implements the same primal/dual
decomposition as Micro Blossom but runs both phases sequentially on a CPU.
The paper uses it as the baseline in every latency experiment (§8.1) and
states that Micro Blossom is logically equivalent to it.

Accordingly, this class reuses the exact same primal module and the same
cover-based dual engine, but:

* the syndrome is read eagerly by the CPU (one read per defect, the O(p|V|)
  term of the paper's analysis);
* pre-matching and round-wise fusion are not available;
* the recorded counters are interpreted by a *CPU* cost model (work per dual
  growth unit and per primal operation) instead of an accelerator clock model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..api.outcome import DecodeOutcome, counter_delta
from ..core.dual import DEFAULT_DUAL_SCALE, DualGraphState
from ..core.interface import IntegralityError
from ..core.primal import PrimalModule
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import (
    MatchingResult,
    Syndrome,
    correction_edges,
    matching_weight,
)

#: Maximum internal dual-scale doublings attempted before giving up.
MAX_SCALE_RETRIES = 4


class SerialDualPhase(DualGraphState):
    """The dual phase executed sequentially in software.

    Identical algorithmic behaviour to the accelerator, but every obstacle
    query walks the active covers on the CPU; the recorded ``dual work`` is
    proportional to the grown cover area, which is what dominates Parity
    Blossom's run time (paper Figure 2).
    """

    def find_obstacle(self):
        before = self.counters.get("cover_cells_updated", 0) + self.counters.get(
            "edges_scanned", 0
        )
        obstacle = super().find_obstacle()
        after = self.counters.get("cover_cells_updated", 0) + self.counters.get(
            "edges_scanned", 0
        )
        self.counters["serial_dual_work"] += max(1, after - before)
        return obstacle


@dataclass
class ParityDecodeOutcome(DecodeOutcome):
    """Matching plus the operation counts consumed by the CPU latency model."""

    dual_work: int = 0
    primal_work: int = 0


class ParityBlossomDecoder:
    """Software (CPU-only) exact MWPM decoder on the decoding graph."""

    name = "parity-blossom"

    def __init__(
        self,
        graph: DecodingGraph,
        scale: int = DEFAULT_DUAL_SCALE,
        reuse_engines: bool = True,
    ) -> None:
        self.graph = graph
        self.scale = scale
        self.reuse_engines = reuse_engines
        self._engines: dict[int, tuple[SerialDualPhase, PrimalModule]] = {}

    def decode(self, syndrome: Syndrome) -> MatchingResult:
        return self.decode_detailed(syndrome).result

    def decode_to_correction(self, syndrome: Syndrome) -> set[int]:
        return correction_edges(self.graph, self.decode(syndrome))

    def decode_detailed(self, syndrome: Syndrome) -> ParityDecodeOutcome:
        scale = self.scale
        last_error: IntegralityError | None = None
        for retry in range(MAX_SCALE_RETRIES + 1):
            try:
                outcome = self._decode_once(syndrome, scale)
                outcome.scale_retries = retry
                return outcome
            except IntegralityError as error:
                last_error = error
                scale *= 2
        raise IntegralityError(
            f"decoding failed even at dual scale {scale}: {last_error}"
        )

    def reset(self) -> None:
        """Drop all cached engines; the next decode rebuilds them."""
        self._engines = {}

    def _acquire(self, scale: int) -> tuple[SerialDualPhase, PrimalModule, Counter]:
        """Return a dual/primal pair ready for one decode plus the counter
        baseline of previous shots (see ``MicroBlossomDecoder._acquire``)."""
        if self.reuse_engines:
            cached = self._engines.get(scale)
            if cached is not None:
                dual, primal = cached
                baseline = Counter(dual.counters)
                baseline.update(primal.counters)
                dual.reset()
                primal.reset()
                return dual, primal, baseline
        dual = SerialDualPhase(self.graph, scale=scale)
        primal = PrimalModule(self.graph, dual)
        if self.reuse_engines:
            self._engines[scale] = (dual, primal)
        return dual, primal, Counter()

    def _decode_once(self, syndrome: Syndrome, scale: int) -> ParityDecodeOutcome:
        dual, primal, baseline = self._acquire(scale)
        dual.load(syndrome.defects)
        for defect in syndrome.defects:
            primal.register_defect(defect)
        primal.run()
        result = primal.collect_matching()
        result.weight = matching_weight(self.graph, result)
        result.validate_perfect(syndrome.defects)
        counters = counter_delta(baseline, dual.counters, primal.counters)
        dual_work = int(counters.get("serial_dual_work", 0))
        primal_work = int(
            counters.get("conflicts_resolved", 0)
            + counters.get("direction_updates", 0)
            + counters.get("defect_reads", 0)
            + counters.get("blossoms_formed", 0)
            + counters.get("blossoms_expanded", 0)
        )
        return ParityDecodeOutcome(
            result=result,
            defect_count=syndrome.defect_count,
            counters=counters,
            dual_work=dual_work,
            primal_work=primal_work,
        )
