"""Experiment runners regenerating every table and figure of the evaluation.

Each function returns plain rows (lists of dictionaries) so the benchmarks,
the examples, and EXPERIMENTS.md can all share them.  Default parameters are
deliberately small so that the pytest-benchmark targets finish quickly; the
examples show how to launch paper-scale sweeps.

Figure/table mapping (see DESIGN.md §4):

* :func:`amdahl_profile` — Figure 2
* :func:`latency_sweep` — Figure 9 (top row)
* :func:`latency_distribution` — Figure 9 (bottom row)
* :func:`improvement_breakdown` — Figure 10a
* :func:`stream_vs_batch` — Figure 10b
* :func:`effective_error_grid` — Figure 11
* :func:`resource_usage_table` — Table 4
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..api.config import MicroBlossomConfig, ParityBlossomConfig
from ..api.protocol import Decoder
from ..api.session import DecoderSession
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.noise import noise_model_by_name
from ..graphs.surface_code import surface_code_decoding_graph
from ..graphs.syndrome import Syndrome, SyndromeSampler, is_logical_error
from ..latency.cutoff import LatencyStatistics, cutoff_latency, exponential_tail_fit
from ..latency.effective import EffectiveErrorRate
from ..latency.model import (
    HeliosLatencyModel,
    MicroBlossomLatencyModel,
    ParityBlossomLatencyModel,
)
from ..resources.estimate import paper_row, resource_table
from .monte_carlo import expected_defect_count
from .scaling import (
    DEFAULT_MWPM_SCALING,
    DEFAULT_UNION_FIND_TREND,
    fit_accuracy_ratio_trend,
    fit_logical_error_scaling,
)

#: Physical error rate used by most latency experiments in the paper.
DEFAULT_PHYSICAL_ERROR_RATE = 0.001


def build_graph(
    distance: int,
    physical_error_rate: float,
    noise: str = "circuit_level",
    rounds: int | None = None,
) -> DecodingGraph:
    """Construct the rotated-surface-code decoding graph used by experiments."""
    model = noise_model_by_name(noise, physical_error_rate)
    return surface_code_decoding_graph(distance, model, rounds=rounds)


# ---------------------------------------------------------------------------
# per-sample decoding with latency attached
# ---------------------------------------------------------------------------
@dataclass
class DecodedSample:
    """One decoded syndrome with its modelled latency."""

    latency_seconds: float
    defect_count: int
    logical_error: bool


def decode_micro_sample(
    graph: DecodingGraph,
    decoder: Decoder,
    model: MicroBlossomLatencyModel,
    syndrome: Syndrome,
) -> DecodedSample:
    outcome = decoder.decode_detailed(syndrome)
    counters = (
        outcome.post_final_round_counters if outcome.stream else outcome.counters
    )
    latency = model.latency_seconds(counters)
    logical_error = is_logical_error(graph, syndrome, outcome.result)
    return DecodedSample(latency, syndrome.defect_count, logical_error)


def decode_parity_sample(
    graph: DecodingGraph,
    decoder: Decoder,
    model: ParityBlossomLatencyModel,
    syndrome: Syndrome,
) -> DecodedSample:
    outcome = decoder.decode_detailed(syndrome)
    latency = model.latency_seconds(outcome.counters, outcome.defect_count)
    logical_error = is_logical_error(graph, syndrome, outcome.result)
    return DecodedSample(latency, syndrome.defect_count, logical_error)


def _sample_micro(
    graph: DecodingGraph,
    distance: int,
    samples: int,
    seed: int,
    enable_prematching: bool = True,
    stream: bool = True,
) -> list[DecodedSample]:
    session = DecoderSession(
        graph,
        "micro-blossom",
        MicroBlossomConfig(enable_prematching=enable_prematching, stream=stream),
    )
    model = MicroBlossomLatencyModel(distance, graph.num_edges)
    sampler = SyndromeSampler(graph, seed=seed)
    return [
        decode_micro_sample(graph, session, model, syndrome)
        for syndrome in sampler.sample_batch(samples)
    ]


def _sample_parity(
    graph: DecodingGraph, samples: int, seed: int
) -> list[DecodedSample]:
    session = DecoderSession(graph, "parity-blossom", ParityBlossomConfig())
    model = ParityBlossomLatencyModel()
    sampler = SyndromeSampler(graph, seed=seed)
    return [
        decode_parity_sample(graph, session, model, syndrome)
        for syndrome in sampler.sample_batch(samples)
    ]


def _mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Figure 2 — dual vs primal CPU time and Amdahl potential speedup
# ---------------------------------------------------------------------------
def amdahl_profile(
    distances: Sequence[int] = (3, 5, 7),
    physical_error_rate: float = DEFAULT_PHYSICAL_ERROR_RATE,
    samples: int = 30,
    seed: int = 0,
) -> list[dict]:
    """CPU-time split of Parity Blossom and the Amdahl upper bound (Figure 2)."""
    rows: list[dict] = []
    model = ParityBlossomLatencyModel()
    for distance in distances:
        graph = build_graph(distance, physical_error_rate)
        decoder = DecoderSession(graph, "parity-blossom")
        sampler = SyndromeSampler(graph, seed=seed + distance)
        dual_total = 0.0
        primal_total = 0.0
        for syndrome in sampler.sample_batch(samples):
            outcome = decoder.decode_detailed(syndrome)
            dual, primal = model.phase_seconds(outcome.counters, outcome.defect_count)
            dual_total += dual + model.base_seconds * 0.5
            primal_total += primal + model.base_seconds * 0.5
        total = dual_total + primal_total
        dual_fraction = dual_total / total if total else 0.0
        rows.append(
            {
                "distance": distance,
                "dual_fraction": dual_fraction,
                "primal_fraction": 1.0 - dual_fraction,
                "potential_speedup": 1.0 / (1.0 - dual_fraction)
                if dual_fraction < 1.0
                else float("inf"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 9 (top) — average decoding latency vs p and d
# ---------------------------------------------------------------------------
def latency_sweep(
    distances: Sequence[int] = (3, 5, 7),
    error_rates: Sequence[float] = (0.0005, 0.001, 0.005),
    samples: int = 20,
    seed: int = 1,
    workers: int = 1,
    store=None,
) -> list[dict]:
    """Average decoding latency of Parity Blossom and Micro Blossom.

    Runs as a declarative :class:`repro.sweeps.SweepSpec` on the sharded
    Monte-Carlo engine: each ``(d, p, decoder)`` cell is a seed-stable sweep
    point, trivial shots contribute the timing model's floor latency, and an
    optional ``store`` (a :class:`repro.sweeps.ResultStore`) makes repeated
    or interrupted grids resume instead of recompute.
    """
    from ..sweeps import make_spec, run_sweep

    spec = make_spec(
        "figure9-latency",
        distances,
        error_rates,
        ("parity-blossom", "micro-blossom"),
        samples,
        seed=seed,
        collect_latency=True,
    )
    run = run_sweep(spec, store, workers=workers)
    rows: list[dict] = []
    for result in run.results:
        point = result.point
        rows.append(
            {
                "decoder": point.decoder,
                "distance": point.distance,
                "physical_error_rate": point.physical_error_rate,
                "mean_latency_us": result.latency.mean_seconds * 1e6,
                "mean_defects": result.mean_defects,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 9 (bottom) — latency distribution and k-cutoff latencies
# ---------------------------------------------------------------------------
def latency_distribution(
    distance: int = 5,
    physical_error_rate: float = DEFAULT_PHYSICAL_ERROR_RATE,
    samples: int = 200,
    seed: int = 2,
    logical_error_rate_hint: float | None = None,
) -> dict:
    """Latency distribution, k-cutoff latencies and exponential tail fits."""
    graph = build_graph(distance, physical_error_rate)
    parity_samples = _sample_parity(graph, samples, seed)
    micro_samples = _sample_micro(graph, distance, samples, seed)
    logical_error_rate = logical_error_rate_hint or DEFAULT_MWPM_SCALING.predict(
        distance, physical_error_rate
    )
    result: dict = {
        "distance": distance,
        "physical_error_rate": physical_error_rate,
        "logical_error_rate": logical_error_rate,
    }
    for name, decoded in (("parity-blossom", parity_samples), ("micro-blossom", micro_samples)):
        latencies = [s.latency_seconds for s in decoded]
        stats = LatencyStatistics.from_samples(latencies)
        entry = {
            "average_latency_us": stats.mean * 1e6,
            "max_latency_us": stats.maximum * 1e6,
            "p99_latency_us": stats.percentile_99 * 1e6,
            "cutoffs_us": {
                k: cutoff_latency(latencies, logical_error_rate, k) * 1e6
                for k in (1.0, 0.1, 0.01)
            },
            "latencies_us": [value * 1e6 for value in latencies],
        }
        try:
            intercept, decay = exponential_tail_fit(latencies)
            entry["tail_fit"] = {"intercept": intercept, "decay_us": decay * 1e6}
        except ValueError:
            entry["tail_fit"] = None
        result[name] = entry
    return result


# ---------------------------------------------------------------------------
# Figure 10a — contribution of each key idea
# ---------------------------------------------------------------------------
IMPROVEMENT_CONFIGS: tuple[tuple[str, dict], ...] = (
    ("parity-blossom (CPU)", {}),
    ("+ parallel dual phase", {"enable_prematching": False, "stream": False}),
    ("+ parallel primal phase", {"enable_prematching": True, "stream": False}),
    ("+ round-wise fusion", {"enable_prematching": True, "stream": True}),
)


def improvement_breakdown(
    distances: Sequence[int] = (3, 5, 7),
    physical_error_rate: float = DEFAULT_PHYSICAL_ERROR_RATE,
    samples: int = 20,
    seed: int = 3,
) -> list[dict]:
    """Latency of the four decoder configurations of Figure 10a."""
    rows: list[dict] = []
    for distance in distances:
        graph = build_graph(distance, physical_error_rate)
        baseline_us = None
        for label, options in IMPROVEMENT_CONFIGS:
            if not options:
                decoded = _sample_parity(graph, samples, seed)
            else:
                decoded = _sample_micro(graph, distance, samples, seed, **options)
            mean_us = _mean(s.latency_seconds for s in decoded) * 1e6
            if baseline_us is None:
                baseline_us = mean_us
            rows.append(
                {
                    "configuration": label,
                    "distance": distance,
                    "physical_error_rate": physical_error_rate,
                    "mean_latency_us": mean_us,
                    "speedup_vs_cpu": baseline_us / mean_us if mean_us else float("inf"),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Figure 10b — batch vs stream decoding latency vs measurement rounds
# ---------------------------------------------------------------------------
def stream_vs_batch(
    distance: int = 5,
    physical_error_rate: float = DEFAULT_PHYSICAL_ERROR_RATE,
    rounds_list: Sequence[int] = (2, 4, 6, 8),
    samples: int = 15,
    seed: int = 4,
    workers: int = 1,
) -> list[dict]:
    """Reaction latency as a function of the number of measurement rounds.

    Both columns come from the continuous-stream
    :class:`~repro.evaluation.stream.StreamEngine` driving the same
    seed-stable shots round by round: ``micro-blossom`` fuses each round as
    it arrives (native streaming) so the reaction latency — the work left
    after the final round — stays flat, while ``micro-blossom-batch``
    (replayed through the sliding-window adapter) defers all decoding to the
    final round and its reaction latency grows with the round count.
    """
    from .stream import StreamEngine

    rows: list[dict] = []
    for rounds in rounds_list:
        graph = build_graph(distance, physical_error_rate, rounds=rounds)
        latencies = {}
        for label, decoder in (
            ("batch", "micro-blossom-batch"),
            ("stream", "micro-blossom"),
        ):
            engine = StreamEngine(graph, decoder, workers=workers)
            result = engine.run(samples, seed=seed)
            latencies[label] = result.reaction.mean
        rows.append(
            {
                "distance": distance,
                "rounds": rounds,
                "batch_latency_us": latencies["batch"] * 1e6,
                "stream_latency_us": latencies["stream"] * 1e6,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 11 — effective logical error rate grid
# ---------------------------------------------------------------------------
def calibrate_scalings(
    calibration_samples: int = 400,
    seed: int = 5,
    store=None,
    workers: int = 1,
) -> tuple:
    """Fit the logical-error scaling law and the Union-Find accuracy penalty.

    Calibration runs Monte Carlo at small distances and moderate error rates
    where logical errors are observable; if too few errors are seen the
    documented defaults are used instead.  The grid runs as a
    :class:`repro.sweeps.SweepSpec`; pass a :class:`repro.sweeps.ResultStore`
    to cache the (expensive) calibration points across calls, and ``workers``
    to fan out decoding.  Zero-failure points never enter the fits — their
    estimate is degenerate (see ``LogicalErrorRateResult.upper_bound``).
    """
    from ..sweeps import make_spec, run_sweep

    spec = make_spec(
        "scaling-calibration",
        (3, 5),
        (0.02, 0.03),
        ("reference", "union-find"),
        calibration_samples,
        seed=seed,
    )
    run = run_sweep(spec, store, workers=workers)
    by_cell = {
        (r.point.distance, r.point.physical_error_rate, r.point.decoder): r
        for r in run.results
    }
    scaling_points: list[tuple[int, float, float]] = []
    ratio_points: list[tuple[int, float]] = []
    for distance in spec.distances:
        for physical in spec.physical_error_rates:
            mwpm = by_cell[(distance, physical, "reference")]
            uf = by_cell[(distance, physical, "union-find")]
            if mwpm.errors:
                scaling_points.append((distance, physical, mwpm.rate))
                if uf.errors:
                    ratio_points.append((distance, uf.rate / mwpm.rate))
    try:
        scaling = fit_logical_error_scaling(scaling_points)
        if not 0.001 < scaling.threshold < 0.2:
            scaling = DEFAULT_MWPM_SCALING
    except ValueError:
        scaling = DEFAULT_MWPM_SCALING
    try:
        trend = fit_accuracy_ratio_trend(ratio_points)
        if trend.growth_per_distance < 1.0:
            trend = DEFAULT_UNION_FIND_TREND
    except ValueError:
        trend = DEFAULT_UNION_FIND_TREND
    return scaling, trend


def effective_error_grid(
    distances: Sequence[int] = (3, 5, 7, 9, 11, 13, 15),
    error_rates: Sequence[float] = (0.0001, 0.0005, 0.001, 0.005),
    calibration_samples: int = 0,
    seed: int = 6,
    store=None,
    workers: int = 1,
) -> list[dict]:
    """Additional logical error ratio (p_eff / p_MWPM − 1) for three decoders.

    ``calibration_samples > 0`` triggers a Monte-Carlo calibration of the
    scaling laws (resumable through ``store``, parallel over ``workers`` —
    see :func:`calibrate_scalings`); otherwise the documented defaults are
    used (fast path for benchmarks).  Latencies use the analytic
    average-latency models, which is exact enough because Figure 11 only
    depends on average latency (§8.3).
    """
    if calibration_samples:
        scaling, uf_trend = calibrate_scalings(
            calibration_samples, seed, store=store, workers=workers
        )
    else:
        scaling, uf_trend = DEFAULT_MWPM_SCALING, DEFAULT_UNION_FIND_TREND
    helios_model = HeliosLatencyModel()
    parity_model = ParityBlossomLatencyModel()
    rows: list[dict] = []
    for distance in distances:
        for physical in error_rates:
            graph = build_graph(distance, physical)
            expected_defects = expected_defect_count(graph)
            defects_per_round = expected_defects / max(1, graph.num_layers)
            mwpm_rate = scaling.predict(distance, physical)
            uf_rate = min(1.0, mwpm_rate * uf_trend.predict(distance))

            micro_model = MicroBlossomLatencyModel(distance, graph.num_edges)
            latencies = {
                "helios": helios_model.latency_seconds(distance, expected_defects),
                "parity-blossom": parity_model.expected_latency_seconds(
                    expected_defects
                ),
                "micro-blossom": micro_model.expected_latency_seconds(
                    defects_per_round, graph.num_layers
                ),
            }
            rates = {
                "helios": uf_rate,
                "parity-blossom": mwpm_rate,
                "micro-blossom": mwpm_rate,
            }
            row = {
                "distance": distance,
                "physical_error_rate": physical,
                "mwpm_logical_error_rate": mwpm_rate,
            }
            best_decoder = None
            best_ratio = None
            for decoder in ("helios", "parity-blossom", "micro-blossom"):
                effective = EffectiveErrorRate(
                    logical_error_rate=rates[decoder],
                    average_latency_seconds=latencies[decoder],
                    distance=distance,
                )
                ratio = effective.additional_error_ratio(mwpm_rate)
                row[f"{decoder}_ratio"] = ratio
                row[f"{decoder}_latency_us"] = latencies[decoder] * 1e6
                if best_ratio is None or ratio < best_ratio:
                    best_ratio = ratio
                    best_decoder = decoder
            row["best_decoder"] = best_decoder
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 4 — resource usage and maximum clock frequency
# ---------------------------------------------------------------------------
def resource_usage_table(distances: Sequence[int] = (3, 5, 7, 9, 11, 13, 15)) -> list[dict]:
    """Modelled resource usage next to the published Table 4 values."""
    rows: list[dict] = []
    for estimate in resource_table(list(distances)):
        published = paper_row(estimate.distance) or {}
        rows.append(
            {
                "distance": estimate.distance,
                "num_vertices": estimate.num_vertices,
                "num_edges": estimate.num_edges,
                "vpu_bits": estimate.vpu_state_bits,
                "epu_bits": estimate.epu_state_bits,
                "cpu_memory_kb": estimate.cpu_memory_bytes / 1000.0,
                "fpga_memory_kbits": estimate.fpga_memory_kbits,
                "luts": estimate.luts,
                "clock_mhz": estimate.clock_frequency_mhz,
                "paper_luts": published.get("luts"),
                "paper_freq_mhz": published.get("freq_mhz"),
                "paper_vpu_bits": published.get("vpu_bits"),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# formatting helper shared by benchmarks and examples
# ---------------------------------------------------------------------------
def format_rows(rows: Sequence[dict], columns: Sequence[str]) -> str:
    """Render rows as a fixed-width text table (for benchmark/example output)."""
    header = "  ".join(f"{column:>18}" for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
