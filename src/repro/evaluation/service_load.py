"""Service load evaluation: replay synthetic request traces, measure the tail.

:class:`ServiceLoadEngine` is the service-layer sibling of
:class:`~repro.evaluation.engine.MonteCarloEngine` and
:class:`~repro.evaluation.stream.StreamEngine`: it drives a
:class:`repro.service.DecodeService` with the seed-stable request trace of a
:class:`repro.service.TraceSpec` and reports what a capacity planner needs —
request throughput, queue-delay and end-to-end latency percentiles, the
realised micro-batch size histogram, session-cache effectiveness, load-shed
counts, and (under a :class:`repro.service.faults.FaultPlan`) the fault
accounting that proves isolation: error/retry counters, per-scenario
fairness, and the poisoned-request ledger.

Two determinism layers coexist deliberately:

* **Outcomes are worker-independent.**  Which syndrome each request carries
  and what its decode returns are pure functions of the trace spec (and the
  fault plan) — decoder sessions are bit-identical under reuse, so
  concurrency, batching and completion order cannot change any outcome.
  :attr:`ServiceLoadResult.outcome_digest` hashes every per-request outcome
  in request order, and :attr:`ServiceLoadResult.healthy_digest` hashes only
  the non-poisoned, non-shed ones — the digest the hostile smoke compares
  across worker counts and fault plans.  Equal digests across worker counts
  are pinned by ``tests/test_service.py``.
* **Timings are measurements.**  Throughput, queue delay, latency and batch
  sizes are wall-clock observations of *this* machine under *this*
  configuration — exactly what ``BENCH_service.json`` tracks across commits
  (like ``shots_per_second`` in ``BENCH_sweep.json``), and exactly what must
  not be part of any bit-identity contract.

With ``verify_identity=True`` every healthy response is additionally checked
bit-identical (correction edge set, matching weight, exactness) against a
direct ``decode_detailed`` on a freshly-built decoder — the acceptance gate
CI runs in the smoke benchmark.  Slow-consumer stream outcomes are checked
against a directly-driven streaming decoder the same way.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field, replace

from ..api.hashing import content_hash
from ..api.registry import get_decoder
from .engine import LatencyHistogram

#: Service imports happen lazily at engine construction so that importing
#: :mod:`repro.evaluation` never has to initialise the service subsystem
#: (and vice versa — see the lazy re-export in ``repro/evaluation/__init__``).


@dataclass
class ServiceLoadResult:
    """Everything one trace replay measured.

    The deterministic part (``requests``, ``errors``, the digests, the fault
    ledger) is a pure function of the trace spec and fault plan; all timing
    fields are machine- and run-dependent measurements.
    """

    requests: int
    completed: int
    shed: int
    errors: int
    evaluated: int
    elapsed_seconds: float
    queue_delay: LatencyHistogram
    latency: LatencyHistogram
    batch_sizes: Counter = field(default_factory=Counter)
    batches: int = 0
    session_stats: dict = field(default_factory=dict)
    cache_hits: int = 0
    outcome_cache: dict = field(default_factory=lambda: {"enabled": False})
    identity_checked: int = 0
    identity_mismatches: int = 0
    outcome_digest: str = ""
    #: Requests answered with ``STATUS_ERROR`` (poisoned decode or exhausted
    #: session-build retries) — disjoint from ``completed`` and ``shed``.
    error_responses: int = 0
    #: Session-build retry attempts the service performed.
    retries: int = 0
    #: Poisoned requests the fault plan injected, and how many of them the
    #: service correctly resolved with ``STATUS_ERROR``.  Isolation holds
    #: exactly when the two are equal.
    poisoned: int = 0
    poisoned_errored: int = 0
    #: Per-scenario completion ledger: offered / poisoned / completed / shed
    #: / errors plus the healthy completion ratio of each scenario.
    per_scenario: list = field(default_factory=list)
    #: Order-stable digest over healthy (non-poisoned, decoded) outcomes only.
    healthy_digest: str = ""
    #: Slow-consumer streams replayed, and how many of their outcomes
    #: diverged from a directly-driven streaming decoder (or never resolved).
    streams: int = 0
    stream_mismatches: int = 0
    #: Wire-level statistics of a network replay (``NetClient.wire_stats()``:
    #: negotiated codec, byte/frame counts, coalesced-batch histogram);
    #: ``None`` for in-process replays, which have no wire.
    wire: dict | None = None

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall-clock replay time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def logical_error_rate(self) -> float:
        """Logical errors per ground-truth-carrying completed request."""
        return self.errors / self.evaluated if self.evaluated else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests that were load-shed."""
        return self.shed / self.requests if self.requests else 0.0

    @property
    def min_completion_ratio(self) -> float:
        """Worst per-scenario healthy completion ratio (fairness floor)."""
        ratios = [row["completion_ratio"] for row in self.per_scenario]
        return min(ratios) if ratios else 1.0

    @property
    def max_completion_ratio(self) -> float:
        """Best per-scenario healthy completion ratio (fairness ceiling)."""
        ratios = [row["completion_ratio"] for row in self.per_scenario]
        return max(ratios) if ratios else 1.0

    @property
    def mean_batch_size(self) -> float:
        total = sum(self.batch_sizes.values())
        if not total:
            return 0.0
        return sum(size * count for size, count in self.batch_sizes.items()) / total


@dataclass(frozen=True)
class SaturationPoint:
    """One rung of a closed-loop saturation ladder."""

    clients: int
    requests: int
    completed: int
    elapsed_seconds: float
    throughput_rps: float
    latency_p50_us: float
    latency_p99_us: float
    healthy_digest: str

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "completed": self.completed,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_p50_us": self.latency_p50_us,
            "latency_p99_us": self.latency_p99_us,
            "healthy_digest": self.healthy_digest,
        }


@dataclass
class SaturationResult:
    """A full closed-loop saturation sweep: the ladder plus its knee.

    ``digest_match`` asserts the determinism contract rung by rung: offered
    load changes *when* requests run, never *what* they decode, so every
    rung must reproduce the same healthy digest.
    """

    points: list[SaturationPoint]
    knee_clients: int
    knee_throughput_rps: float
    digest_match: bool

    @property
    def peak_throughput_rps(self) -> float:
        return max((point.throughput_rps for point in self.points), default=0.0)


def find_knee(points: list[SaturationPoint], threshold: float = 0.10) -> SaturationPoint:
    """The ladder's throughput knee: the last rung still worth climbing to.

    Walking the ladder in client order, the knee is the rung after which
    adding clients stops paying — the first rung whose successor improves
    throughput by less than ``threshold`` (fractionally).  A ladder that is
    still gaining at the top returns its last rung (the knee lies beyond the
    sweep; callers see ``knee_clients == max(ladder)`` and can extend it).
    """
    if not points:
        raise ValueError("saturation sweep produced no points")
    knee = points[0]
    for point in points[1:]:
        if knee.throughput_rps <= 0:
            knee = point
            continue
        gain = point.throughput_rps / knee.throughput_rps - 1.0
        if gain < threshold:
            return knee
        knee = point
    return knee


#: Engine-specific :class:`repro.service.ServiceConfig` defaults: load
#: replays favour smaller batches and a tighter flush deadline than the
#: service's own defaults (a trace's scenarios rarely fill 32-deep batches).
_ENGINE_CONFIG_DEFAULTS = {"max_batch_size": 16, "max_wait_seconds": 0.001}


class ServiceLoadEngine:
    """Replay a seed-stable synthetic trace through a decode service.

    Service sizing and policy travel as one :class:`repro.service.ServiceConfig`
    (``config=...``) forwarded to the :class:`repro.service.DecodeService`
    built per :meth:`run`; the individual sizing keywords (``workers``,
    ``max_batch_size``, ``fault_plan``, ...) are still accepted and folded
    into a config for you.  ``drain_timeout_seconds`` bounds the post-replay
    ``close()``: exceeding it raises :class:`repro.service.ServiceDrainError`
    instead of hanging — the hostile smoke's hung-close gate.

    >>> from repro.service import Scenario, TraceSpec
    >>> spec = TraceSpec("t", (Scenario(3, physical_error_rate=0.02),), requests=6)
    >>> result = ServiceLoadEngine(spec, workers=2).run()
    >>> result.completed
    6
    >>> result.shed
    0
    """

    def __init__(
        self,
        trace,
        *,
        config=None,
        repeats: int = 1,
        drain_timeout_seconds: float | None = None,
        **sizing,
    ) -> None:
        from ..service.config import ServiceConfig  # lazy: avoid import cycles
        from ..service.faults import FaultPlan
        from ..service.trace import TraceSpec

        if not isinstance(trace, TraceSpec):
            raise TypeError(f"trace must be a TraceSpec, got {type(trace).__name__}")
        if config is not None and sizing:
            raise TypeError(
                "pass service sizing either as config=ServiceConfig(...) or as "
                "individual keywords, not both"
            )
        if config is None:
            fault_plan = sizing.get("fault_plan")
            if fault_plan is not None and not isinstance(fault_plan, FaultPlan):
                raise TypeError(
                    f"fault_plan must be a FaultPlan, got {type(fault_plan).__name__}"
                )
            config = ServiceConfig(**{**_ENGINE_CONFIG_DEFAULTS, **sizing})
        elif not isinstance(config, ServiceConfig):
            raise TypeError(f"config must be a ServiceConfig, got {type(config).__name__}")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.trace = trace
        #: The full service configuration every :meth:`run` builds from.
        self.config = config
        self.workers = config.workers
        self.fault_plan = config.fault_plan
        self.drain_timeout_seconds = drain_timeout_seconds
        #: Replay the whole trace this many times through ONE service; each
        #: pass fully drains before the next starts.  Pass 2+ re-submits the
        #: same syndromes, which is exactly what exercises the
        #: content-addressed outcome cache — the ``serve-bench`` cache
        #: comparison runs both sides at repeats=2 so the cached second pass
        #: is measured against a decoded second pass.
        self.repeats = repeats

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay_open(self, service, requests) -> list:
        """Open loop: submit on the trace's schedule, ignore completions."""
        start = time.monotonic()
        futures = []
        for traced in requests:
            delay = traced.arrival_offset_seconds - (time.monotonic() - start)
            if delay > 0:
                time.sleep(delay)
            futures.append(service.submit(traced.request))
        return [future.result() for future in futures]

    def _replay_closed(self, service, requests) -> list:
        """Closed loop: ``clients`` callers, each one request in flight."""
        responses: list = [None] * len(requests)
        cursor = iter(range(len(requests)))
        cursor_lock = threading.Lock()

        def client() -> None:
            while True:
                with cursor_lock:
                    index = next(cursor, None)
                if index is None:
                    return
                responses[index] = service.submit(requests[index].request).result()
                if self.trace.think_seconds > 0:
                    time.sleep(self.trace.think_seconds)

        threads = [
            threading.Thread(target=client, name=f"load-client-{i}")
            for i in range(self.trace.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return responses

    def _start_streams(self, service, trace, outcomes: list, base: int) -> list:
        """Launch one slow-consumer thread per traced stream; return threads.

        Each thread holds a long-lived :class:`~repro.service.ServiceStream`
        open, pushing rounds with ``stream_push_gap_seconds`` of think time —
        the connection occupies the shared scheduler while the single-shot
        replay runs concurrently.  ``outcomes[base + i]`` stays ``None`` if
        the stream failed, which :meth:`_verify_streams` counts as a mismatch.
        """
        gap = trace.spec.stream_push_gap_seconds

        def consume(slot: int, traced) -> None:
            key = trace.spec.scenarios[traced.scenario_index].session_key()
            stream = service.open_stream(key)
            pending = [stream.begin()]
            for round_defects in traced.rounds:
                pending.append(stream.push_round(round_defects))
                if gap > 0:
                    time.sleep(gap)
            outcome = stream.finalize().result()
            for future in pending:  # all resolved: surface any push error
                future.result(0)
            outcomes[slot] = outcome

        threads = [
            threading.Thread(
                target=consume,
                args=(base + i, traced),
                name=f"slow-consumer-{traced.index}",
            )
            for i, traced in enumerate(trace.streams)
        ]
        for thread in threads:
            thread.start()
        return threads

    def run(self, verify_identity: bool = False) -> ServiceLoadResult:
        """Expand the trace, replay it, and aggregate the measurements."""
        from ..service.service import DecodeService
        from ..service.trace import generate_trace

        trace = generate_trace(self.trace, fault_plan=self.fault_plan)
        sequence = list(trace.requests) * self.repeats
        service = DecodeService(self.config)
        stream_outcomes: list = [None] * (len(trace.streams) * self.repeats)
        service.start()
        try:
            started = time.perf_counter()
            responses: list = []
            # Each pass drains fully (the replay helpers block on every
            # future) before the next begins, so pass 2+ submissions see the
            # outcome cache populated by the previous pass.  Slow-consumer
            # streams run concurrently with each pass's single-shot traffic.
            for pass_index in range(self.repeats):
                stream_threads = self._start_streams(
                    service, trace, stream_outcomes, pass_index * len(trace.streams)
                )
                if self.trace.arrival == "closed":
                    responses.extend(self._replay_closed(service, trace.requests))
                else:
                    responses.extend(self._replay_open(service, trace.requests))
                for thread in stream_threads:
                    thread.join()
            elapsed = time.perf_counter() - started
            # Drain under a timeout: a hung close is a fault-isolation
            # failure the caller must see, not a wedged benchmark.
            service.close(timeout=self.drain_timeout_seconds)
        except BaseException:
            if not service.closed:
                try:
                    service.close(wait=False)
                except Exception:
                    pass
            raise
        stats = service.stats
        snapshot = service.stats_snapshot()
        result = ServiceLoadResult(
            requests=len(sequence),
            completed=sum(1 for r in responses if r.ok),
            shed=sum(1 for r in responses if r.status == "shed"),
            errors=0,
            evaluated=0,
            elapsed_seconds=elapsed,
            queue_delay=stats.queue_delay,
            latency=stats.latency,
            batch_sizes=Counter(stats.batch_sizes),
            batches=stats.batches,
            session_stats=snapshot["sessions"],
            cache_hits=stats.cache_hits,
            outcome_cache=snapshot["outcome_cache"],
            error_responses=sum(1 for r in responses if r.status == "error"),
            retries=stats.retries,
            streams=len(stream_outcomes),
        )
        self._evaluate_outcomes(trace, sequence, responses, result)
        if verify_identity:
            self._verify_identity(trace, sequence, responses, result)
            self._verify_streams(trace, stream_outcomes, result)
        else:
            result.stream_mismatches = sum(1 for o in stream_outcomes if o is None)
        return result

    # ------------------------------------------------------------------
    # saturation
    # ------------------------------------------------------------------
    def saturate(
        self,
        client_ladder=(1, 2, 4, 8),
        *,
        knee_threshold: float = 0.10,
    ) -> SaturationResult:
        """Closed-loop saturation sweep: find the service's throughput knee.

        The engine's trace is re-shaped to a **closed loop** (``clients``
        concurrent callers, each with one request in flight) and replayed
        once per ladder rung through a fresh service built from the same
        :class:`~repro.service.ServiceConfig`.  Offered load rises with the
        rung; completed throughput rises until the service saturates, and
        :func:`find_knee` marks the rung where the marginal gain drops below
        ``knee_threshold``.

        Per the determinism contract, every rung reproduces the same
        ``healthy_digest`` (load shapes timing, never outcomes) —
        ``digest_match`` reports it so benchmarks can gate on it.
        """
        ladder = sorted({int(clients) for clients in client_ladder})
        if not ladder or ladder[0] < 1:
            raise ValueError("client_ladder must contain ints >= 1")
        if not 0.0 < knee_threshold < 1.0:
            raise ValueError("knee_threshold must be in (0, 1)")
        points: list[SaturationPoint] = []
        for clients in ladder:
            spec = replace(
                self.trace,
                arrival="closed",
                clients=clients,
                rate_rps=None,
                burst_size=None,
            )
            rung = ServiceLoadEngine(
                spec,
                config=self.config,
                repeats=self.repeats,
                drain_timeout_seconds=self.drain_timeout_seconds,
            ).run()
            points.append(
                SaturationPoint(
                    clients=clients,
                    requests=rung.requests,
                    completed=rung.completed,
                    elapsed_seconds=rung.elapsed_seconds,
                    throughput_rps=rung.throughput_rps,
                    latency_p50_us=rung.latency.percentile(50) * 1e6,
                    latency_p99_us=rung.latency.percentile(99) * 1e6,
                    healthy_digest=rung.healthy_digest,
                )
            )
        knee = find_knee(points, knee_threshold)
        return SaturationResult(
            points=points,
            knee_clients=knee.clients,
            knee_throughput_rps=knee.throughput_rps,
            digest_match=len({point.healthy_digest for point in points}) == 1,
        )

    # ------------------------------------------------------------------
    # outcome evaluation
    # ------------------------------------------------------------------
    def _evaluate_outcomes(self, trace, sequence, responses, result: ServiceLoadResult) -> None:
        evaluate_outcomes(trace, sequence, responses, result)

    def _verify_identity(self, trace, sequence, responses, result: ServiceLoadResult) -> None:
        """Re-decode every healthy request directly and compare bit for bit."""
        decoders: dict[int, object] = {}
        for traced, response in zip(sequence, responses):
            if traced.poisoned or not response.ok:
                continue
            index = traced.scenario_index
            if index not in decoders:
                key = traced.request.session
                decoders[index] = get_decoder(key.decoder, trace.graphs[index], key.config)
            direct = decoders[index].decode_detailed(traced.request.syndrome)
            graph = trace.graphs[index]
            result.identity_checked += 1
            if (
                direct.correction_edges(graph)
                != response.outcome.correction_edges(graph)
                or direct.weight != response.outcome.weight
                or direct.is_exact != response.outcome.is_exact
            ):
                result.identity_mismatches += 1

    def _verify_streams(self, trace, stream_outcomes, result: ServiceLoadResult) -> None:
        """Check every slow-consumer outcome against a direct streaming decode."""
        if not stream_outcomes:
            return
        from ..stream import get_streaming_decoder

        expected: dict[int, object] = {}
        for slot, outcome in enumerate(stream_outcomes):
            traced = trace.streams[slot % len(trace.streams)]
            if outcome is None:  # the stream thread died before finalize
                result.stream_mismatches += 1
                continue
            graph = trace.graphs[traced.scenario_index]
            if traced.index not in expected:
                key = trace.spec.scenarios[traced.scenario_index].session_key()
                decoder = get_streaming_decoder(key.decoder, graph, key.config)
                decoder.begin(graph)
                for round_defects in traced.rounds:
                    decoder.push_round(round_defects)
                expected[traced.index] = decoder.finalize()
            direct = expected[traced.index]
            if (
                direct.correction_edges(graph) != outcome.correction_edges(graph)
                or direct.weight != outcome.weight
            ):
                result.stream_mismatches += 1


def evaluate_outcomes(trace, sequence, responses, result: ServiceLoadResult) -> None:
    """Count logical errors, fold outcomes into the order-stable digests,
    and build the per-scenario fairness ledger.

    Module-level on purpose: the network replay
    (:mod:`repro.service.net.bench`) evaluates its responses through this
    *same* function, so ``healthy_digest`` equality between network and
    in-process serving compares identical record constructions, not two
    reimplementations that happen to agree today.
    """
    per_scenario = [
        {
            "scenario": index,
            "decoder": scenario.decoder,
            "offered": 0,
            "poisoned": 0,
            "completed": 0,
            "shed": 0,
            "errors": 0,
        }
        for index, scenario in enumerate(trace.spec.scenarios)
    ]
    records = []
    healthy_records = []
    for traced, response in zip(sequence, responses):
        row = per_scenario[traced.scenario_index]
        row["offered"] += 1
        if traced.poisoned:
            result.poisoned += 1
            row["poisoned"] += 1
            if response.status == "error":
                result.poisoned_errored += 1
                row["errors"] += 1
            records.append(f"{traced.index}:poisoned:{response.status}")
            continue
        if response.status == "shed":
            row["shed"] += 1
            records.append(f"{traced.index}:shed")
            continue
        if response.status == "error":
            row["errors"] += 1
            records.append(f"{traced.index}:error")
            continue
        row["completed"] += 1
        graph = trace.graphs[traced.scenario_index]
        syndrome = traced.request.syndrome
        correction = sorted(response.outcome.correction_edges(graph))
        record = f"{traced.index}:ok:{correction}:w={response.outcome.weight}"
        if syndrome.logical_flip is not None:
            result.evaluated += 1
            error = graph.crosses_observable(set(correction)) != syndrome.logical_flip
            if error:
                result.errors += 1
            record += f":err={int(error)}"
        records.append(record)
        healthy_records.append(record)
    for row in per_scenario:
        healthy_offered = row["offered"] - row["poisoned"]
        row["completion_ratio"] = row["completed"] / healthy_offered if healthy_offered else 1.0
    result.per_scenario = per_scenario
    result.outcome_digest = content_hash({"outcomes": records})
    result.healthy_digest = content_hash({"outcomes": healthy_records})
