"""Service load evaluation: replay synthetic request traces, measure the tail.

:class:`ServiceLoadEngine` is the service-layer sibling of
:class:`~repro.evaluation.engine.MonteCarloEngine` and
:class:`~repro.evaluation.stream.StreamEngine`: it drives a
:class:`repro.service.DecodeService` with the seed-stable request trace of a
:class:`repro.service.TraceSpec` and reports what a capacity planner needs —
request throughput, queue-delay and end-to-end latency percentiles, the
realised micro-batch size histogram, session-cache effectiveness, and
load-shed counts.

Two determinism layers coexist deliberately:

* **Outcomes are worker-independent.**  Which syndrome each request carries
  and what its decode returns are pure functions of the trace spec — decoder
  sessions are bit-identical under reuse, so concurrency, batching and
  completion order cannot change any outcome.
  :attr:`ServiceLoadResult.outcome_digest` hashes every per-request outcome
  in request order; equal digests across worker counts are pinned by
  ``tests/test_service.py``.
* **Timings are measurements.**  Throughput, queue delay, latency and batch
  sizes are wall-clock observations of *this* machine under *this*
  configuration — exactly what ``BENCH_service.json`` tracks across commits
  (like ``shots_per_second`` in ``BENCH_sweep.json``), and exactly what must
  not be part of any bit-identity contract.

With ``verify_identity=True`` every response is additionally checked
bit-identical (correction edge set, matching weight, exactness) against a
direct ``decode_detailed`` on a freshly-built decoder — the acceptance gate
CI runs in the smoke benchmark.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from ..api.hashing import content_hash
from ..api.registry import get_decoder
from .engine import LatencyHistogram

#: Service imports happen lazily at engine construction so that importing
#: :mod:`repro.evaluation` never has to initialise the service subsystem
#: (and vice versa — see the lazy re-export in ``repro/evaluation/__init__``).


@dataclass
class ServiceLoadResult:
    """Everything one trace replay measured.

    The deterministic part (``requests``, ``errors``, ``outcome_digest``) is
    a pure function of the trace spec; all timing fields are machine- and
    run-dependent measurements.
    """

    requests: int
    completed: int
    shed: int
    errors: int
    evaluated: int
    elapsed_seconds: float
    queue_delay: LatencyHistogram
    latency: LatencyHistogram
    batch_sizes: Counter = field(default_factory=Counter)
    batches: int = 0
    session_stats: dict = field(default_factory=dict)
    cache_hits: int = 0
    outcome_cache: dict = field(default_factory=lambda: {"enabled": False})
    identity_checked: int = 0
    identity_mismatches: int = 0
    outcome_digest: str = ""

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall-clock replay time."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def logical_error_rate(self) -> float:
        """Logical errors per ground-truth-carrying completed request."""
        return self.errors / self.evaluated if self.evaluated else 0.0

    @property
    def mean_batch_size(self) -> float:
        total = sum(self.batch_sizes.values())
        if not total:
            return 0.0
        return sum(size * count for size, count in self.batch_sizes.items()) / total


class ServiceLoadEngine:
    """Replay a seed-stable synthetic trace through a decode service.

    Service sizing (``workers``, ``max_batch_size``, ``max_wait_seconds``,
    ``queue_capacity``, ``max_sessions``, ``overload_policy``) is forwarded
    to the :class:`repro.service.DecodeService` built per :meth:`run`.

    >>> from repro.service import Scenario, TraceSpec
    >>> spec = TraceSpec("t", (Scenario(3, physical_error_rate=0.02),), requests=6)
    >>> result = ServiceLoadEngine(spec, workers=2).run()
    >>> result.completed
    6
    >>> result.shed
    0
    """

    def __init__(
        self,
        trace,
        *,
        workers: int = 2,
        max_batch_size: int = 16,
        max_wait_seconds: float = 0.001,
        queue_capacity: int = 1024,
        max_sessions: int = 8,
        overload_policy: str = "block",
        outcome_cache_bytes: int | None = None,
        repeats: int = 1,
    ) -> None:
        from ..service.trace import TraceSpec  # lazy: avoid import cycles

        if not isinstance(trace, TraceSpec):
            raise TypeError(f"trace must be a TraceSpec, got {type(trace).__name__}")
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        self.trace = trace
        self.workers = workers
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_seconds
        self.queue_capacity = queue_capacity
        self.max_sessions = max_sessions
        self.overload_policy = overload_policy
        self.outcome_cache_bytes = outcome_cache_bytes
        #: Replay the whole trace this many times through ONE service; each
        #: pass fully drains before the next starts.  Pass 2+ re-submits the
        #: same syndromes, which is exactly what exercises the
        #: content-addressed outcome cache — the ``serve-bench`` cache
        #: comparison runs both sides at repeats=2 so the cached second pass
        #: is measured against a decoded second pass.
        self.repeats = repeats

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay_open(self, service, requests) -> list:
        """Open loop: submit on the trace's schedule, ignore completions."""
        start = time.monotonic()
        futures = []
        for traced in requests:
            delay = traced.arrival_offset_seconds - (time.monotonic() - start)
            if delay > 0:
                time.sleep(delay)
            futures.append(service.submit(traced.request))
        return [future.result() for future in futures]

    def _replay_closed(self, service, requests) -> list:
        """Closed loop: ``clients`` callers, each one request in flight."""
        responses: list = [None] * len(requests)
        cursor = iter(range(len(requests)))
        cursor_lock = threading.Lock()

        def client() -> None:
            while True:
                with cursor_lock:
                    index = next(cursor, None)
                if index is None:
                    return
                responses[index] = service.submit(requests[index].request).result()
                if self.trace.think_seconds > 0:
                    time.sleep(self.trace.think_seconds)

        threads = [
            threading.Thread(target=client, name=f"load-client-{i}")
            for i in range(self.trace.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return responses

    def run(self, verify_identity: bool = False) -> ServiceLoadResult:
        """Expand the trace, replay it, and aggregate the measurements."""
        from ..service.service import DecodeService
        from ..service.trace import generate_trace

        trace = generate_trace(self.trace)
        sequence = list(trace.requests) * self.repeats
        service = DecodeService(
            max_batch_size=self.max_batch_size,
            max_wait_seconds=self.max_wait_seconds,
            queue_capacity=self.queue_capacity,
            workers=self.workers,
            max_sessions=self.max_sessions,
            overload_policy=self.overload_policy,
            outcome_cache_bytes=self.outcome_cache_bytes,
        )
        with service:
            started = time.perf_counter()
            responses: list = []
            # Each pass drains fully (the replay helpers block on every
            # future) before the next begins, so pass 2+ submissions see the
            # outcome cache populated by the previous pass.
            for _ in range(self.repeats):
                if self.trace.arrival == "closed":
                    responses.extend(self._replay_closed(service, trace.requests))
                else:
                    responses.extend(self._replay_open(service, trace.requests))
            elapsed = time.perf_counter() - started
        stats = service.stats
        snapshot = service.stats_snapshot()
        result = ServiceLoadResult(
            requests=len(sequence),
            completed=sum(1 for r in responses if r.ok),
            shed=sum(1 for r in responses if not r.ok),
            errors=0,
            evaluated=0,
            elapsed_seconds=elapsed,
            queue_delay=stats.queue_delay,
            latency=stats.latency,
            batch_sizes=Counter(stats.batch_sizes),
            batches=stats.batches,
            session_stats=snapshot["sessions"],
            cache_hits=stats.cache_hits,
            outcome_cache=snapshot["outcome_cache"],
        )
        self._evaluate_outcomes(trace, sequence, responses, result)
        if verify_identity:
            self._verify_identity(trace, sequence, responses, result)
        return result

    # ------------------------------------------------------------------
    # outcome evaluation
    # ------------------------------------------------------------------
    def _evaluate_outcomes(
        self, trace, sequence, responses, result: ServiceLoadResult
    ) -> None:
        """Count logical errors and fold outcomes into the order-stable digest."""
        records = []
        for traced, response in zip(sequence, responses):
            if not response.ok:
                records.append(f"{traced.index}:shed")
                continue
            graph = trace.graphs[traced.scenario_index]
            syndrome = traced.request.syndrome
            correction = sorted(response.outcome.correction_edges(graph))
            record = f"{traced.index}:ok:{correction}:w={response.outcome.weight}"
            if syndrome.logical_flip is not None:
                result.evaluated += 1
                error = graph.crosses_observable(set(correction)) != syndrome.logical_flip
                if error:
                    result.errors += 1
                record += f":err={int(error)}"
            records.append(record)
        result.outcome_digest = content_hash({"outcomes": records})

    def _verify_identity(
        self, trace, sequence, responses, result: ServiceLoadResult
    ) -> None:
        """Re-decode every request directly and compare bit for bit."""
        decoders: dict[int, object] = {}
        for traced, response in zip(sequence, responses):
            if not response.ok:
                continue
            index = traced.scenario_index
            if index not in decoders:
                key = traced.request.session
                decoders[index] = get_decoder(key.decoder, trace.graphs[index], key.config)
            direct = decoders[index].decode_detailed(traced.request.syndrome)
            graph = trace.graphs[index]
            result.identity_checked += 1
            if (
                direct.correction_edges(graph)
                != response.outcome.correction_edges(graph)
                or direct.weight != response.outcome.weight
                or direct.is_exact != response.outcome.is_exact
            ):
                result.identity_mismatches += 1
