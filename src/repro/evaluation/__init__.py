"""Monte-Carlo harness and experiment runners for every table and figure."""

from .engine import (
    DECODERS_WITH_TIMING_MODELS,
    DEFAULT_SHARD_SIZE,
    EngineResult,
    binomial_standard_error,
    LatencyHistogram,
    MonteCarloEngine,
    ShardResult,
    modelled_latency_fn,
    modelled_trivial_latency_seconds,
    rule_of_three_upper_bound,
)
from .experiments import (
    DEFAULT_PHYSICAL_ERROR_RATE,
    IMPROVEMENT_CONFIGS,
    amdahl_profile,
    build_graph,
    calibrate_scalings,
    decode_micro_sample,
    decode_parity_sample,
    effective_error_grid,
    format_rows,
    improvement_breakdown,
    latency_distribution,
    latency_sweep,
    resource_usage_table,
    stream_vs_batch,
)
from .monte_carlo import (
    LatencyDistributionResult,
    LatencySample,
    LogicalErrorRateResult,
    collect_latency_samples,
    decoder_correction,
    estimate_logical_error_rate,
    expected_defect_count,
    expected_error_count,
    is_decoder_logical_error,
    wilson_interval,
)
from .scaling import (
    DEFAULT_MWPM_SCALING,
    DEFAULT_UNION_FIND_TREND,
    AccuracyRatioTrend,
    LogicalErrorScaling,
    fit_accuracy_ratio_trend,
    fit_logical_error_scaling,
)
from .stream import (
    StreamEngine,
    StreamEngineResult,
    StreamShardResult,
    stream_latency_fn,
)

#: Service-layer exports resolved lazily (PEP 562): ``service_load`` imports
#: :mod:`repro.service`, which itself imports :mod:`repro.evaluation.engine`
#: — importing it eagerly here would create a package-initialisation cycle.
_SERVICE_EXPORTS = (
    "SaturationPoint",
    "SaturationResult",
    "ServiceLoadEngine",
    "ServiceLoadResult",
    "find_knee",
)


def __getattr__(name: str):
    if name in _SERVICE_EXPORTS:
        from . import service_load

        return getattr(service_load, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DECODERS_WITH_TIMING_MODELS",
    "DEFAULT_SHARD_SIZE",
    "binomial_standard_error",
    "EngineResult",
    "LatencyHistogram",
    "MonteCarloEngine",
    "ShardResult",
    "modelled_latency_fn",
    "modelled_trivial_latency_seconds",
    "rule_of_three_upper_bound",
    "DEFAULT_PHYSICAL_ERROR_RATE",
    "IMPROVEMENT_CONFIGS",
    "amdahl_profile",
    "build_graph",
    "calibrate_scalings",
    "decode_micro_sample",
    "decode_parity_sample",
    "effective_error_grid",
    "format_rows",
    "improvement_breakdown",
    "latency_distribution",
    "latency_sweep",
    "resource_usage_table",
    "stream_vs_batch",
    "LatencyDistributionResult",
    "LatencySample",
    "LogicalErrorRateResult",
    "collect_latency_samples",
    "decoder_correction",
    "estimate_logical_error_rate",
    "expected_defect_count",
    "expected_error_count",
    "is_decoder_logical_error",
    "wilson_interval",
    "DEFAULT_MWPM_SCALING",
    "DEFAULT_UNION_FIND_TREND",
    "AccuracyRatioTrend",
    "LogicalErrorScaling",
    "fit_accuracy_ratio_trend",
    "fit_logical_error_scaling",
    "StreamEngine",
    "StreamEngineResult",
    "StreamShardResult",
    "stream_latency_fn",
    "SaturationPoint",
    "SaturationResult",
    "ServiceLoadEngine",
    "ServiceLoadResult",
    "find_knee",
]
