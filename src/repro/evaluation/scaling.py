"""Scaling fits used to extrapolate Monte-Carlo results (Figure 11 support).

The effective-accuracy grid of the paper spans code distances up to 15 and
physical error rates down to 0.01%, where logical error rates fall below
10⁻¹⁰ — far outside what direct Monte Carlo can sample.  Like standard surface
code analyses we fit the familiar scaling law

    p_L(d, p) = A * (p / p_th) ** ((d + 1) / 2)

to logical error rates measured at feasible ``(d, p)`` and extrapolate.  The
relative accuracy of the Union-Find decoder is handled the same way: the ratio
``p_L^UF / p_L^MWPM`` is measured where it can be and extrapolated as an
exponential trend in the code distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LogicalErrorScaling:
    """Fitted parameters of ``p_L = A (p / p_th)^((d+1)/2)``."""

    amplitude: float
    threshold: float

    def predict(self, distance: int, physical_error_rate: float) -> float:
        exponent = (distance + 1) / 2.0
        value = self.amplitude * (physical_error_rate / self.threshold) ** exponent
        return float(min(value, 1.0))


def fit_logical_error_scaling(
    points: Sequence[tuple[int, float, float]],
) -> LogicalErrorScaling:
    """Fit the scaling law to ``(distance, physical_error_rate, p_L)`` points.

    The fit is linear in log-space:
    ``log p_L = log A + ((d+1)/2) (log p - log p_th)``.
    Points with ``p_L <= 0`` (no observed errors) are ignored.
    """
    rows = []
    targets = []
    for distance, physical, logical in points:
        if logical <= 0.0 or physical <= 0.0:
            continue
        exponent = (distance + 1) / 2.0
        rows.append([1.0, exponent])
        targets.append(math.log(logical) - exponent * math.log(physical))
    if len(rows) < 2:
        raise ValueError("need at least two positive points to fit the scaling law")
    matrix = np.asarray(rows, dtype=float)
    vector = np.asarray(targets, dtype=float)
    solution, *_ = np.linalg.lstsq(matrix, vector, rcond=None)
    log_amplitude, negative_log_threshold = solution
    amplitude = float(math.exp(log_amplitude))
    threshold = float(math.exp(-negative_log_threshold))
    return LogicalErrorScaling(amplitude=amplitude, threshold=threshold)


@dataclass(frozen=True)
class AccuracyRatioTrend:
    """Exponential-in-distance trend of an accuracy penalty ratio (>= 1)."""

    base: float
    growth_per_distance: float

    def predict(self, distance: int) -> float:
        return float(max(1.0, self.base * self.growth_per_distance**distance))


def fit_accuracy_ratio_trend(
    points: Sequence[tuple[int, float]],
) -> AccuracyRatioTrend:
    """Fit ``ratio(d) = base * growth**d`` through measured ratio points.

    Ratios below 1 (sampling noise) are clamped to 1 before fitting.
    """
    usable = [(d, max(1.0, r)) for d, r in points if r > 0]
    if not usable:
        raise ValueError("no usable ratio points")
    if len(usable) == 1:
        distance, ratio = usable[0]
        return AccuracyRatioTrend(base=ratio, growth_per_distance=1.0)
    xs = np.array([d for d, _ in usable], dtype=float)
    ys = np.log(np.array([r for _, r in usable], dtype=float))
    slope, intercept = np.polyfit(xs, ys, 1)
    return AccuracyRatioTrend(
        base=float(math.exp(intercept)),
        growth_per_distance=float(math.exp(slope)),
    )


#: Default scaling law used when no Monte-Carlo calibration data is supplied.
#: The threshold (~1%) and amplitude are typical circuit-level surface code
#: values and give logical error rates of the same order as the paper's quoted
#: p_L = 4.1e-6 at d = 9, p = 0.1%.
DEFAULT_MWPM_SCALING = LogicalErrorScaling(amplitude=0.08, threshold=0.009)

#: Default Union-Find accuracy penalty trend: ~1.15x at d = 3 growing to ~3x
#: at d = 15, matching the Helios-vs-MWPM gap discussed in §2 and §8.3.
DEFAULT_UNION_FIND_TREND = AccuracyRatioTrend(base=1.04, growth_per_distance=1.072)
