"""Monte-Carlo estimation of logical error rates and latency distributions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..api.batch import decode_batch
from ..api.config import DecoderConfig
from ..api.protocol import Decoder
from ..api.registry import get_decoder
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import (
    Syndrome,
    SyndromeSampler,
)


@dataclass(frozen=True)
class LogicalErrorRateResult:
    """Estimate of a decoder's logical error rate."""

    samples: int
    errors: int

    @property
    def rate(self) -> float:
        return self.errors / self.samples if self.samples else 0.0

    @property
    def standard_error(self) -> float:
        if self.samples == 0:
            return 0.0
        rate = self.rate
        return math.sqrt(max(rate * (1.0 - rate), 1e-300) / self.samples)


@dataclass
class LatencySample:
    """Latency and outcome of a single decoded syndrome."""

    latency_seconds: float
    defect_count: int
    logical_error: bool


@dataclass
class LatencyDistributionResult:
    """Collection of latency samples for one decoder configuration."""

    samples: list[LatencySample] = field(default_factory=list)

    @property
    def latencies(self) -> list[float]:
        return [sample.latency_seconds for sample in self.samples]

    @property
    def average_latency(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.latencies) / len(self.samples)

    @property
    def logical_error_rate(self) -> float:
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.logical_error) / len(self.samples)

    @property
    def average_defects(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.defect_count for s in self.samples) / len(self.samples)


def decoder_correction(graph: DecodingGraph, decoder: Decoder, syndrome: Syndrome) -> set[int]:
    """Run any decoder of this package and return its correction edge set.

    Every backend implements ``decode_to_correction`` (part of the
    :class:`repro.api.Decoder` protocol), so no per-decoder branching is
    needed.
    """
    return set(decoder.decode_to_correction(syndrome))


def _is_correction_logical_error(
    graph: DecodingGraph, syndrome: Syndrome, correction: set[int]
) -> bool:
    if syndrome.logical_flip is None:
        raise ValueError("syndrome does not carry ground-truth information")
    return graph.crosses_observable(correction) != syndrome.logical_flip


def is_decoder_logical_error(
    graph: DecodingGraph, decoder: Decoder, syndrome: Syndrome
) -> bool:
    """True when the decoder's correction flips the logical observable wrongly."""
    return _is_correction_logical_error(
        graph, syndrome, decoder_correction(graph, decoder, syndrome)
    )


def estimate_logical_error_rate(
    graph: DecodingGraph,
    decoder: Decoder | str,
    num_samples: int,
    seed: int | None = None,
    sampler: SyndromeSampler | None = None,
    config: DecoderConfig | None = None,
    workers: int = 1,
) -> LogicalErrorRateResult:
    """Monte-Carlo logical error rate of a decoder on a decoding graph.

    ``decoder`` is either an object satisfying the
    :class:`repro.api.Decoder` protocol or a registry name (resolved via
    :func:`repro.api.get_decoder` with ``config``).  With ``workers > 1`` the
    decoder must be given by name; the sampled syndromes are then decoded with
    :func:`repro.api.decode_batch` over a process pool, which yields the exact
    same error count as the sequential loop.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    sampler = sampler or SyndromeSampler(graph, seed=seed)
    if workers > 1:
        if not isinstance(decoder, str):
            raise ValueError(
                "workers > 1 requires the decoder as a registry name so the "
                "worker processes can rebuild it"
            )
        syndromes = [sampler.sample() for _ in range(num_samples)]
        errors = sum(
            1 for s in syndromes if not s.defects and s.logical_flip
        )
        nontrivial = [s for s in syndromes if s.defects]
        batch = decode_batch(graph, decoder, nontrivial, config=config, workers=workers)
        for syndrome, outcome in zip(nontrivial, batch.outcomes):
            if _is_correction_logical_error(
                graph, syndrome, outcome.correction_edges(graph)
            ):
                errors += 1
        return LogicalErrorRateResult(samples=num_samples, errors=errors)
    if isinstance(decoder, str):
        decoder = get_decoder(decoder, graph, config)
    errors = 0
    for _ in range(num_samples):
        syndrome = sampler.sample()
        if not syndrome.defects:
            if syndrome.logical_flip:
                errors += 1
            continue
        if is_decoder_logical_error(graph, decoder, syndrome):
            errors += 1
    return LogicalErrorRateResult(samples=num_samples, errors=errors)


def collect_latency_samples(
    graph: DecodingGraph,
    decode_with_latency: Callable[[Syndrome], tuple[float, bool]],
    num_samples: int,
    seed: int | None = None,
) -> LatencyDistributionResult:
    """Sample syndromes and record ``(latency, logical_error)`` per decode.

    ``decode_with_latency`` maps a syndrome to its decoding latency (seconds)
    and whether the decode produced a logical error.
    """
    sampler = SyndromeSampler(graph, seed=seed)
    result = LatencyDistributionResult()
    for _ in range(num_samples):
        syndrome = sampler.sample()
        latency, logical_error = decode_with_latency(syndrome)
        result.samples.append(
            LatencySample(
                latency_seconds=latency,
                defect_count=syndrome.defect_count,
                logical_error=logical_error,
            )
        )
    return result


def expected_defect_count(graph: DecodingGraph) -> float:
    """Expected number of defects per syndrome under the graph's error model.

    Each real vertex becomes a defect when an odd number of its incident edges
    flip; with independent flips the probability is
    ``(1 - prod(1 - 2 p_e)) / 2``.
    """
    total = 0.0
    for vertex in range(graph.num_vertices):
        if graph.is_virtual(vertex):
            continue
        product = 1.0
        for edge_index, _neighbor in graph.neighbors(vertex):
            product *= 1.0 - 2.0 * graph.edges[edge_index].probability
        total += (1.0 - product) / 2.0
    return total


def expected_error_count(graph: DecodingGraph) -> float:
    """Expected number of flipped edges per syndrome."""
    return sum(edge.probability for edge in graph.edges)


def wilson_interval(
    errors: int, samples: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial logical error rate estimate."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    p_hat = errors / samples
    denominator = 1.0 + z * z / samples
    centre = (p_hat + z * z / (2 * samples)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / samples + z * z / (4 * samples * samples))
        / denominator
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)
