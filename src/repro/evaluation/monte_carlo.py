"""Monte-Carlo estimation of logical error rates and latency distributions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..api.batch import decode_batch
from ..api.config import DecoderConfig
from ..api.protocol import Decoder
from ..api.registry import get_decoder
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import (
    Syndrome,
    SyndromeSampler,
)
from .engine import (
    DEFAULT_SHARD_SIZE,
    MonteCarloEngine,
    binomial_standard_error,
    rule_of_three_upper_bound,
)


@dataclass(frozen=True)
class LogicalErrorRateResult:
    """Estimate of a decoder's logical error rate."""

    samples: int
    errors: int

    @property
    def rate(self) -> float:
        return self.errors / self.samples if self.samples else 0.0

    @property
    def standard_error(self) -> float:
        return binomial_standard_error(self.errors, self.samples)

    @property
    def zero_failures(self) -> bool:
        return self.errors == 0

    @property
    def upper_bound(self) -> float:
        """One-sided 95% upper bound on the rate.

        Zero-failure estimates are degenerate (``0 ± 0``); the rule of three
        bounds them at ``3 / samples`` so reports and threshold fits never
        mistake "no errors observed" for "no errors possible".
        """
        return rule_of_three_upper_bound(self.errors, self.samples)


@dataclass
class LatencySample:
    """Latency and outcome of a single decoded syndrome."""

    latency_seconds: float
    defect_count: int
    logical_error: bool


@dataclass
class LatencyDistributionResult:
    """Collection of latency samples for one decoder configuration."""

    samples: list[LatencySample] = field(default_factory=list)

    @property
    def latencies(self) -> list[float]:
        return [sample.latency_seconds for sample in self.samples]

    @property
    def average_latency(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.latencies) / len(self.samples)

    @property
    def logical_error_rate(self) -> float:
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.logical_error) / len(self.samples)

    @property
    def average_defects(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.defect_count for s in self.samples) / len(self.samples)


def decoder_correction(graph: DecodingGraph, decoder: Decoder, syndrome: Syndrome) -> set[int]:
    """Run any decoder of this package and return its correction edge set.

    Every backend implements ``decode_to_correction`` (part of the
    :class:`repro.api.Decoder` protocol), so no per-decoder branching is
    needed.
    """
    return set(decoder.decode_to_correction(syndrome))


def _is_correction_logical_error(
    graph: DecodingGraph, syndrome: Syndrome, correction: set[int]
) -> bool:
    if syndrome.logical_flip is None:
        raise ValueError("syndrome does not carry ground-truth information")
    return graph.crosses_observable(correction) != syndrome.logical_flip


def is_decoder_logical_error(
    graph: DecodingGraph, decoder: Decoder, syndrome: Syndrome
) -> bool:
    """True when the decoder's correction flips the logical observable wrongly."""
    return _is_correction_logical_error(
        graph, syndrome, decoder_correction(graph, decoder, syndrome)
    )


def estimate_logical_error_rate(
    graph: DecodingGraph,
    decoder: Decoder | str,
    num_samples: int,
    seed: int | None = None,
    sampler: SyndromeSampler | None = None,
    config: DecoderConfig | None = None,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    target_standard_error: float | None = None,
) -> LogicalErrorRateResult:
    """Monte-Carlo logical error rate of a decoder on a decoding graph.

    ``decoder`` is either an object satisfying the
    :class:`repro.api.Decoder` protocol or a registry name (resolved through
    the registry with ``config``).  The estimate runs on the sharded
    :class:`~repro.evaluation.engine.MonteCarloEngine`: shots are sampled
    vectorized in seed-stable shards of ``shard_size`` and decoded over
    ``workers`` processes (which requires ``decoder`` as a registry name);
    the result is identical for every ``workers`` count.  A
    ``target_standard_error`` stops the run early once the estimate is tight
    enough, in which case the returned ``samples`` is the number of shots
    actually consumed.

    Passing an explicit ``sampler`` bypasses the sharded seeding contract and
    decodes ``num_samples`` shots drawn sequentially from that sampler (still
    fanned over ``workers`` processes); use it when the caller controls the
    RNG stream.  Early stopping requires engine-managed sampling, so
    ``target_standard_error`` cannot be combined with ``sampler``.
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if sampler is not None:
        if target_standard_error is not None:
            raise ValueError(
                "target_standard_error requires engine-managed sampling and "
                "cannot be combined with an explicit sampler"
            )
        syndromes = sampler.sample_batch(num_samples)
        errors = sum(1 for s in syndromes if not s.defects and s.logical_flip)
        nontrivial = [s for s in syndromes if s.defects]
        if workers > 1:
            if not isinstance(decoder, str):
                raise ValueError(
                    "workers > 1 requires the decoder as a registry name so "
                    "the worker processes can rebuild it"
                )
            outcomes = decode_batch(
                graph, decoder, nontrivial, config=config, workers=workers
            ).outcomes
        else:
            if isinstance(decoder, str):
                decoder = get_decoder(decoder, graph, config)
            outcomes = [decoder.decode_detailed(s) for s in nontrivial]
        for syndrome, outcome in zip(nontrivial, outcomes):
            if _is_correction_logical_error(
                graph, syndrome, outcome.correction_edges(graph)
            ):
                errors += 1
        return LogicalErrorRateResult(samples=num_samples, errors=errors)
    engine = MonteCarloEngine(
        graph, decoder, config=config, shard_size=shard_size, workers=workers
    )
    result = engine.run(
        num_samples, seed=seed, target_standard_error=target_standard_error
    )
    return LogicalErrorRateResult(samples=result.shots, errors=result.errors)


def collect_latency_samples(
    graph: DecodingGraph,
    decode_with_latency: Callable[[Syndrome], tuple[float, bool]],
    num_samples: int,
    seed: int | None = None,
    sampler: SyndromeSampler | None = None,
) -> LatencyDistributionResult:
    """Sample syndromes and record ``(latency, logical_error)`` per decode.

    ``decode_with_latency`` maps a syndrome to its decoding latency (seconds)
    and whether the decode produced a logical error.  Syndromes are drawn with
    the vectorized batch sampler; for sharded multi-process latency
    collection with a registered decoder, use
    :class:`~repro.evaluation.engine.MonteCarloEngine` with a ``latency_fn``
    instead (an arbitrary callable cannot be shipped to worker processes).
    """
    sampler = sampler or SyndromeSampler(graph, seed=seed)
    result = LatencyDistributionResult()
    for syndrome in sampler.sample_batch(num_samples):
        latency, logical_error = decode_with_latency(syndrome)
        result.samples.append(
            LatencySample(
                latency_seconds=latency,
                defect_count=syndrome.defect_count,
                logical_error=logical_error,
            )
        )
    return result


def expected_defect_count(graph: DecodingGraph) -> float:
    """Expected number of defects per syndrome under the graph's error model.

    Each real vertex becomes a defect when an odd number of its incident edges
    flip; with independent flips the probability is
    ``(1 - prod(1 - 2 p_e)) / 2``.
    """
    total = 0.0
    for vertex in range(graph.num_vertices):
        if graph.is_virtual(vertex):
            continue
        product = 1.0
        for edge_index, _neighbor in graph.neighbors(vertex):
            product *= 1.0 - 2.0 * graph.edges[edge_index].probability
        total += (1.0 - product) / 2.0
    return total


def expected_error_count(graph: DecodingGraph) -> float:
    """Expected number of flipped edges per syndrome."""
    return sum(edge.probability for edge in graph.edges)


def wilson_interval(
    errors: int, samples: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial logical error rate estimate."""
    if samples <= 0:
        raise ValueError("samples must be positive")
    p_hat = errors / samples
    denominator = 1.0 + z * z / samples
    centre = (p_hat + z * z / (2 * samples)) / denominator
    margin = (
        z
        * math.sqrt(p_hat * (1 - p_hat) / samples + z * z / (4 * samples * samples))
        / denominator
    )
    return max(0.0, centre - margin), min(1.0, centre + margin)
