"""Continuous-stream evaluation engine (reaction latency and backlog).

The :class:`StreamEngine` evaluates decoders under the paper's *online*
workload: measurement rounds arrive every ``round_interval_seconds`` (1 µs on
superconducting hardware, :data:`repro.latency.MEASUREMENT_ROUND_SECONDS`)
and are pushed into a :class:`repro.api.StreamingDecoder` as they arrive.
For each shot the engine records

* **reaction latency** — the modelled time from the arrival of the *final*
  measurement round until the decode completes.  Work is converted to seconds
  by the backend's published timing model applied to the operation counters
  recorded *after* the final round arrived (last ``push_round`` plus
  ``finalize``), the same §8.2 convention as Figure 10b — plus any backlog the
  earlier rounds left behind;
* **backlog** — how far decoding lags behind the measurement cadence while
  the stream is in flight: each round's push work is scheduled no earlier
  than its arrival and no earlier than the previous round's completion, and
  the worst spill past the next arrival is the shot's backlog.  A backlog of
  zero means the decoder keeps up with the 1 µs round interval;
* **logical errors** — streamed corrections are compared against the ground
  truth exactly like the batch Monte-Carlo engine.

**Sharding / seeding contract.**  Mirrors
:class:`~repro.evaluation.engine.MonteCarloEngine`: a run of ``max_shots``
shots splits into fixed-size shards, shard ``i`` — one independent
*logical-qubit stream* with its own decoder state — draws its syndromes from
a sampler seeded ``SeedSequence([seed, i])`` and decodes them back to back.
Shards are merged strictly in shard order, so results are a pure function of
``(seed, shard_size, max_shots)``; ``workers`` only changes wall-clock time.
Syndromes are emitted round-by-round
(:meth:`~repro.graphs.syndrome.SyndromeSampler.sample_rounds`), bit-identical
to batch sampling.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..api.config import DecoderConfig
from ..api.registry import decoder_spec
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import SyndromeSampler
from ..latency.model import (
    MEASUREMENT_ROUND_SECONDS,
    HeliosLatencyModel,
    MicroBlossomLatencyModel,
    ParityBlossomLatencyModel,
)
from ..stream import DEFECTS_DECODED, get_streaming_decoder
from .engine import (
    DEFAULT_SHARD_SIZE,
    LatencyHistogram,
    binomial_standard_error,
    rule_of_three_upper_bound,
)

#: Maps one round's operation counters to modelled seconds of work.
StreamLatencyFn = Callable[[Counter], float]


def stream_latency_fn(name: str, graph: DecodingGraph) -> StreamLatencyFn:
    """Per-round timing model of a registered decoder, as counters → seconds.

    The counter-only signature lets one function price both a single pushed
    round and the post-final-round residue.  Defect-count-driven models
    (Parity Blossom, Helios) read the synthetic
    :data:`repro.stream.DEFECTS_DECODED` counter that the sliding-window
    adapter records on every decode.
    """
    distance = graph.metadata.get("distance")
    if distance is None:
        raise ValueError(
            "graph metadata lacks 'distance'; modelled latency needs the code "
            "distance to pick the accelerator clock"
        )
    if name in ("micro-blossom", "micro-blossom-batch"):
        micro_model = MicroBlossomLatencyModel(distance, graph.num_edges)
        return micro_model.latency_seconds
    if name == "parity-blossom":
        parity_model = ParityBlossomLatencyModel()
        return lambda counters: parity_model.latency_seconds(
            counters, int(counters.get(DEFECTS_DECODED, 0))
        )
    if name == "union-find":
        helios_model = HeliosLatencyModel()
        return lambda counters: helios_model.latency_seconds(
            distance, int(counters.get(DEFECTS_DECODED, 0))
        )
    raise ValueError(f"no latency model is defined for decoder {name!r}")


@dataclass(frozen=True)
class StreamShardResult:
    """Merged statistics of one decoded logical-qubit stream (= one shard)."""

    index: int
    shots: int
    errors: int
    defects: int
    rounds: int
    reaction: LatencyHistogram
    max_backlog_seconds: float
    counters: Counter


@dataclass
class StreamEngineResult:
    """Merged outcome of a :class:`StreamEngine` run."""

    shots: int
    errors: int
    shards: list[StreamShardResult] = field(default_factory=list)
    reaction: LatencyHistogram = field(default_factory=LatencyHistogram)
    max_backlog_seconds: float = 0.0
    defects: int = 0
    rounds: int = 0
    counters: Counter = field(default_factory=Counter)

    @property
    def rate(self) -> float:
        return self.errors / self.shots if self.shots else 0.0

    @property
    def standard_error(self) -> float:
        return binomial_standard_error(self.errors, self.shots)

    @property
    def upper_bound(self) -> float:
        """One-sided 95% upper bound on the rate (rule of three when 0 errors)."""
        return rule_of_three_upper_bound(self.errors, self.shots)

    @property
    def streams(self) -> int:
        """Concurrent logical-qubit streams the run drove (= shards)."""
        return len(self.shards)


def reaction_counters(earlier: Counter, total: Counter) -> Counter:
    """Post-final-round work: the outcome total minus the earlier pushes.

    Clamped at zero per key: after a mid-stream scale retry the push that
    triggered it re-reports work of rounds whose original deltas belong to an
    abandoned engine, so the earlier-push sum can exceed the outcome total —
    the residue must never price negative seconds of work.
    """
    residue: Counter = Counter()
    for key, value in total.items():
        difference = value - earlier.get(key, 0)
        if difference > 0:
            residue[key] = difference
    return residue


# ---------------------------------------------------------------------------
# the per-stream decode loop (shared by inline and worker execution)
# ---------------------------------------------------------------------------
def _run_stream_shard(
    graph: DecodingGraph,
    session,
    latency_fn: StreamLatencyFn,
    index: int,
    shots: int,
    seed: int,
    round_interval: float,
) -> StreamShardResult:
    sampler = SyndromeSampler(graph, seed=np.random.SeedSequence([int(seed), int(index)]))
    reaction = LatencyHistogram()
    errors = 0
    defects = 0
    rounds_total = 0
    max_backlog = 0.0
    counters: Counter = Counter()
    for _ in range(shots):
        syndrome, rounds = sampler.sample_rounds()
        if syndrome.logical_flip is None:
            raise ValueError("sampled syndrome lacks ground truth")
        session.begin(graph, rounds_hint=len(rounds), erasures=syndrome.erasures)
        pushes = [session.push_round(round_defects) for round_defects in rounds]
        outcome = session.finalize()
        counters.update(outcome.counters)
        defects += syndrome.defect_count
        rounds_total += len(rounds)
        # Everything not spent on rounds before the last one is reaction work:
        # the final push plus finalize.
        earlier: Counter = Counter()
        for push in pushes[:-1]:
            earlier.update(push)
        residue = reaction_counters(earlier, outcome.counters)
        # Schedule the earlier pushes against the measurement cadence.
        finish = 0.0
        for index_r, push in enumerate(pushes[:-1]):
            start = max(index_r * round_interval, finish)
            finish = start + latency_fn(push)
            max_backlog = max(max_backlog, finish - (index_r + 1) * round_interval)
        last_arrival = (len(rounds) - 1) * round_interval
        completion = max(last_arrival, finish) + latency_fn(residue)
        reaction.add(completion - last_arrival)
        correction = outcome.correction_edges(graph)
        if graph.crosses_observable(correction) != syndrome.logical_flip:
            errors += 1
    return StreamShardResult(
        index=index,
        shots=shots,
        errors=errors,
        defects=defects,
        rounds=rounds_total,
        reaction=reaction,
        max_backlog_seconds=max(0.0, max_backlog),
        counters=counters,
    )


#: Per-process streaming session of an engine worker (built once by the pool
#: initializer, reused for every stream the worker decodes).
_STREAM_WORKER = None


def _stream_worker_init(graph, name, config, window, commit_depth) -> None:
    global _STREAM_WORKER
    session = get_streaming_decoder(
        name, graph, config, window=window, commit_depth=commit_depth
    )
    _STREAM_WORKER = (graph, session, stream_latency_fn(name, graph))


def _stream_worker_run(payload: tuple) -> StreamShardResult:
    graph, session, latency_fn = _STREAM_WORKER
    index, shots, seed, round_interval = payload
    return _run_stream_shard(
        graph, session, latency_fn, index, shots, seed, round_interval
    )


class StreamEngine:
    """Sharded continuous-stream estimator of reaction latency and accuracy.

    ``decoder`` must be a registry name whose backend has a published timing
    model (see :func:`stream_latency_fn`).  ``window`` / ``commit_depth``
    configure the :class:`repro.stream.SlidingWindowAdapter` for backends
    without native streaming; a finite window also forces the adapter for
    native backends, enabling window-vs-fusion comparisons on Micro Blossom
    itself.
    """

    def __init__(
        self,
        graph: DecodingGraph,
        decoder: str = "micro-blossom",
        config: DecoderConfig | None = None,
        *,
        window: int | None = None,
        commit_depth: int | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int = 1,
        round_interval_seconds: float = MEASUREMENT_ROUND_SECONDS,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if round_interval_seconds <= 0:
            raise ValueError("round_interval_seconds must be positive")
        spec = decoder_spec(decoder)  # fail fast on unknown names
        if config is not None and not isinstance(config, spec.config_cls):
            raise TypeError(
                f"decoder {decoder!r} expects a {spec.config_cls.__name__}, "
                f"got {type(config).__name__}"
            )
        self.graph = graph
        self.decoder_name = decoder
        self.config = config
        self.window = window
        self.commit_depth = commit_depth
        self.shard_size = shard_size
        self.workers = workers
        self.round_interval_seconds = round_interval_seconds
        # Build the latency fn eagerly so a missing timing model fails here.
        self._latency_fn = stream_latency_fn(decoder, graph)

    def _plan_shards(self, max_shots: int) -> list[int]:
        full, remainder = divmod(max_shots, self.shard_size)
        return [self.shard_size] * full + ([remainder] if remainder else [])

    def run(self, max_shots: int, seed: int | None = 0) -> StreamEngineResult:
        """Stream-decode ``max_shots`` shots across seed-stable shards.

        Every shard is one independent logical-qubit stream; ``seed = None``
        draws a fresh base seed from OS entropy (not reproducible).
        """
        if max_shots <= 0:
            raise ValueError("max_shots must be positive")
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        plan = self._plan_shards(max_shots)
        result = StreamEngineResult(shots=0, errors=0)
        if self.workers == 1 or len(plan) == 1:
            session = get_streaming_decoder(
                self.decoder_name,
                self.graph,
                self.config,
                window=self.window,
                commit_depth=self.commit_depth,
            )
            shards = [
                _run_stream_shard(
                    self.graph,
                    session,
                    self._latency_fn,
                    index,
                    shots,
                    seed,
                    self.round_interval_seconds,
                )
                for index, shots in enumerate(plan)
            ]
        else:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(plan)),
                initializer=_stream_worker_init,
                initargs=(
                    self.graph,
                    self.decoder_name,
                    self.config,
                    self.window,
                    self.commit_depth,
                ),
            ) as pool:
                payloads = [
                    (index, shots, seed, self.round_interval_seconds)
                    for index, shots in enumerate(plan)
                ]
                shards = list(pool.map(_stream_worker_run, payloads))
        for shard in shards:  # merged strictly in shard order
            result.shards.append(shard)
            result.shots += shard.shots
            result.errors += shard.errors
            result.defects += shard.defects
            result.rounds += shard.rounds
            result.counters.update(shard.counters)
            result.reaction.merge(shard.reaction)
            result.max_backlog_seconds = max(
                result.max_backlog_seconds, shard.max_backlog_seconds
            )
        return result
