"""Sharded Monte-Carlo evaluation engine.

The engine turns the paper's statistical evaluation loop — sample a syndrome,
decode it, tally logical errors — into a batched, shardable pipeline:

* **Sharding / seeding contract.**  A run of ``max_shots`` shots with base
  seed ``s`` is split into fixed-size shards; shard ``i`` draws its syndromes
  from a :class:`~repro.graphs.syndrome.SyndromeSampler` seeded with
  ``numpy.random.SeedSequence([s, i])``.  Shard results are merged strictly in
  shard order, so a run is a pure function of
  ``(seed, shard_size, max_shots, target_standard_error)`` — the ``workers``
  count never changes the result, only the wall-clock time.

* **Batch decoding.**  Each wave of shards is sampled vectorized
  (:meth:`~repro.graphs.syndrome.SyndromeSampler.sample_batch`) and its
  non-trivial syndromes are fanned out in contiguous chunks over ``workers``
  processes — the same order-preserving, bit-identical scheme as
  :func:`repro.api.decode_batch`, except that the process pool and each
  worker's decoder are built once and held for the whole run instead of once
  per call.  Trivial shots (no defects) are tallied without decoding: they
  are a logical error exactly when the undetected error chain flips the
  observable.

* **Early stopping.**  With a ``target_standard_error``, the engine stops
  dispatching once the merged estimate's binomial standard error reaches the
  target *and* at least one logical error has been observed (otherwise the
  estimate is the degenerate ``0 ± 0``).  The stopping decision is evaluated
  at shard boundaries, in shard order; shards decoded speculatively beyond
  the stopping point are discarded, which is what keeps early-stopped runs
  independent of ``workers``.

* **Latency statistics.**  An optional ``latency_fn`` maps every decoded
  outcome to seconds (see :func:`modelled_latency_fn` for the decoders with
  published timing models); the per-shot values accumulate into a mergeable
  fixed-bin log-spaced :class:`LatencyHistogram`.  Trivial shots never reach
  the decoder, so they contribute no latency samples.
"""

from __future__ import annotations

import math
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..api.batch import chunk_evenly
from ..api.config import DecoderConfig
from ..api.outcome import DecodeOutcome
from ..api.registry import decoder_spec
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import Syndrome, SyndromeSampler
from ..latency.model import (
    HeliosLatencyModel,
    MicroBlossomLatencyModel,
    ParityBlossomLatencyModel,
)

#: Default number of shots per shard (the granularity of seeding, worker
#: dispatch and early-stopping checks).
DEFAULT_SHARD_SIZE = 256

#: Maps a decoded outcome to its modelled (or measured) latency in seconds.
LatencyFn = Callable[[DecodeOutcome], float]

#: Per-process decoder of an engine worker, built once by the pool
#: initializer and reused for every chunk the worker receives (PR 1
#: established that engine reuse is bit-identical to fresh construction).
_WORKER_DECODER = None


def _engine_worker_init(graph, factory, config) -> None:
    global _WORKER_DECODER
    _WORKER_DECODER = factory(graph, config)


def _engine_worker_decode(syndromes: Sequence[Syndrome]) -> list[DecodeOutcome]:
    return [_WORKER_DECODER.decode_detailed(syndrome) for syndrome in syndromes]


@dataclass
class LatencyHistogram:
    """Log-spaced latency histogram with fixed bins, mergeable across shards.

    Values are clamped into ``[low, high)``; exact ``count``, ``sum``,
    ``min`` and ``max`` are tracked alongside, so :attr:`mean` is exact while
    :meth:`percentile` is accurate to one bin width (about 16 bins per decade
    with the defaults).
    """

    low: float = 1e-9
    high: float = 1e-2
    num_bins: int = 112
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum_seconds: float = 0.0
    min_seconds: float = math.inf
    max_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.low < self.high:
            raise ValueError("histogram bounds must satisfy 0 < low < high")
        if self.num_bins < 1:
            raise ValueError("histogram needs at least one bin")
        if not self.counts:
            self.counts = [0] * self.num_bins
        elif len(self.counts) != self.num_bins:
            raise ValueError("counts length does not match num_bins")

    def _bin_index(self, seconds: float) -> int:
        if seconds <= self.low:
            return 0
        position = math.log(seconds / self.low) / math.log(self.high / self.low)
        return min(self.num_bins - 1, int(position * self.num_bins))

    def add(self, seconds: float) -> None:
        self.counts[self._bin_index(seconds)] += 1
        self.count += 1
        self.sum_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Accumulate another histogram (must share bounds and bin count)."""
        if (self.low, self.high, self.num_bins) != (
            other.low,
            other.high,
            other.num_bins,
        ):
            raise ValueError("cannot merge histograms with different binning")
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.count += other.count
        self.sum_seconds += other.sum_seconds
        self.min_seconds = min(self.min_seconds, other.min_seconds)
        self.max_seconds = max(self.max_seconds, other.max_seconds)

    @property
    def mean(self) -> float:
        return self.sum_seconds / self.count if self.count else 0.0

    def bin_edges(self) -> list[float]:
        """The ``num_bins + 1`` logarithmic bin edges in seconds."""
        ratio = self.high / self.low
        return [
            self.low * ratio ** (index / self.num_bins)
            for index in range(self.num_bins + 1)
        ]

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``0 <= q <= 100``), in seconds.

        Returns the upper edge of the bin containing the requested rank,
        clamped to the exact observed ``[min, max]`` range.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must lie in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q / 100.0 * self.count)
        edges = self.bin_edges()
        cumulative = 0
        for index, bin_count in enumerate(self.counts):
            cumulative += bin_count
            if cumulative >= rank:
                return min(max(edges[index + 1], self.min_seconds), self.max_seconds)
        return self.max_seconds


#: Registry names whose published timing models :func:`modelled_latency_fn`
#: and :func:`modelled_trivial_latency_seconds` implement (the single source
#: of truth for "decoders with a latency model").
DECODERS_WITH_TIMING_MODELS = (
    "micro-blossom",
    "micro-blossom-batch",
    "parity-blossom",
    "union-find",
)


def binomial_standard_error(errors: int, samples: int) -> float:
    """Standard error of a binomial rate estimate (0 for an empty sample)."""
    if samples <= 0:
        return 0.0
    rate = errors / samples
    return math.sqrt(max(rate * (1.0 - rate), 1e-300) / samples)


def rule_of_three_upper_bound(errors: int, samples: int) -> float:
    """One-sided 95% upper bound on a binomial rate.

    With zero observed failures the maximum-likelihood rate and its binomial
    standard error are both the degenerate ``0 ± 0``; the *rule of three*
    gives the exact one-sided 95% bound ``3 / n`` instead.  With failures
    observed, the normal-approximation bound ``rate + 1.645·SE`` is used.
    Reports surface zero-failure points through this bound, and threshold
    fits exclude them (see :mod:`repro.sweeps.fits`).
    """
    if samples <= 0:
        return 1.0
    if errors == 0:
        return min(1.0, 3.0 / samples)
    rate = errors / samples
    return min(1.0, rate + 1.645 * binomial_standard_error(errors, samples))


@dataclass(frozen=True)
class ShardResult:
    """Merged statistics of one decoded shard."""

    index: int
    shots: int
    errors: int
    decoded_shots: int
    counters: Counter
    histogram: LatencyHistogram | None = None
    defects: int = 0
    #: Heralded erased edges observed across the shard's shots (0 for
    #: non-erasure noise).
    erased: int = 0


@dataclass
class EngineResult:
    """Merged outcome of a :class:`MonteCarloEngine` run."""

    shots: int
    errors: int
    shards: list[ShardResult] = field(default_factory=list)
    histogram: LatencyHistogram | None = None
    counters: Counter = field(default_factory=Counter)
    stopped_early: bool = False
    defects: int = 0
    #: Heralded erased edges observed across the run (0 for non-erasure noise).
    erased: int = 0

    def digest(self) -> str:
        """16-hex content hash of every deterministic per-shard statistic.

        Two runs with the same ``(seed, shard_size, max_shots,
        target_standard_error)`` must produce equal digests for *any*
        ``workers`` count — the conformance harness pins this for every
        noise family.  Timing (histograms, wall-clock) never joins the hash;
        operation counters do, because decode work is deterministic.
        """
        from ..api.hashing import content_hash

        return content_hash(
            {
                "shots": self.shots,
                "errors": self.errors,
                "stopped_early": self.stopped_early,
                "shards": [
                    {
                        "index": shard.index,
                        "shots": shard.shots,
                        "errors": shard.errors,
                        "decoded_shots": shard.decoded_shots,
                        "defects": shard.defects,
                        "erased": shard.erased,
                        "counters": {
                            key: shard.counters[key]
                            for key in sorted(shard.counters)
                        },
                    }
                    for shard in self.shards
                ],
            }
        )

    @property
    def rate(self) -> float:
        return self.errors / self.shots if self.shots else 0.0

    @property
    def standard_error(self) -> float:
        return binomial_standard_error(self.errors, self.shots)

    @property
    def upper_bound(self) -> float:
        """One-sided 95% upper bound on the rate (rule of three when 0 errors)."""
        return rule_of_three_upper_bound(self.errors, self.shots)

    @property
    def decoded_shots(self) -> int:
        return sum(shard.decoded_shots for shard in self.shards)


def modelled_latency_fn(name: str, graph: DecodingGraph) -> LatencyFn:
    """The published timing model of a registered decoder as a `LatencyFn`.

    Micro Blossom outcomes in stream mode contribute their post-final-round
    counters (the work that determines decoding latency, paper §6); the
    Union-Find decoder uses the Helios hardware model.  The graph must carry
    its code ``distance`` in ``metadata`` (every built-in code family does).
    """
    distance = graph.metadata.get("distance")
    if distance is None:
        raise ValueError(
            "graph metadata lacks 'distance'; modelled latency needs the code "
            "distance to pick the accelerator clock"
        )
    if name in ("micro-blossom", "micro-blossom-batch"):
        micro_model = MicroBlossomLatencyModel(distance, graph.num_edges)

        def micro_latency(outcome: DecodeOutcome) -> float:
            if getattr(outcome, "stream", False):
                return micro_model.latency_seconds(outcome.post_final_round_counters)
            return micro_model.latency_seconds(outcome.counters)

        return micro_latency
    if name == "parity-blossom":
        parity_model = ParityBlossomLatencyModel()
        return lambda outcome: parity_model.latency_seconds(
            outcome.counters, outcome.defect_count
        )
    if name == "union-find":
        helios_model = HeliosLatencyModel()
        return lambda outcome: helios_model.latency_seconds(
            distance, outcome.defect_count
        )
    raise ValueError(f"no latency model is defined for decoder {name!r}")


def modelled_trivial_latency_seconds(name: str, graph: DecodingGraph) -> float:
    """Modelled latency of a shot with no defects (the decoder's floor).

    Trivial shots never reach the decoder, so there is no
    :class:`DecodeOutcome` to feed a :data:`LatencyFn`; this is the constant
    each timing model assigns to an empty workload.  Used by the sweep runner
    so latency statistics cover *every* shot, not just the decoded ones.
    """
    distance = graph.metadata.get("distance")
    if distance is None:
        raise ValueError(
            "graph metadata lacks 'distance'; modelled latency needs the code "
            "distance to pick the accelerator clock"
        )
    if name in ("micro-blossom", "micro-blossom-batch"):
        return MicroBlossomLatencyModel(distance, graph.num_edges).latency_seconds({})
    if name == "parity-blossom":
        return ParityBlossomLatencyModel().latency_seconds({}, 0)
    if name == "union-find":
        return HeliosLatencyModel().latency_seconds(distance, 0)
    raise ValueError(f"no latency model is defined for decoder {name!r}")


class MonteCarloEngine:
    """Sharded Monte-Carlo estimator of logical error rate and latency.

    ``decoder`` is normally a registry name so worker processes can rebuild
    it; an already-built decoder instance is also accepted but restricts the
    engine to ``workers=1`` (instances cannot be shipped to a process pool).
    """

    def __init__(
        self,
        graph: DecodingGraph,
        decoder: str | object = "micro-blossom",
        config: DecoderConfig | None = None,
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        workers: int = 1,
        latency_fn: LatencyFn | None = None,
        trivial_latency_seconds: float | None = None,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if trivial_latency_seconds is not None and trivial_latency_seconds < 0:
            raise ValueError("trivial_latency_seconds must be non-negative")
        self.graph = graph
        self.shard_size = shard_size
        self.workers = workers
        self.latency_fn = latency_fn
        #: When set (and a ``latency_fn`` is active), shots with no defects
        #: contribute this constant to the histogram — the timing model's
        #: floor — so latency statistics cover every shot (see
        #: :func:`modelled_trivial_latency_seconds`).  ``None`` keeps the
        #: original decoded-shots-only semantics.
        self.trivial_latency_seconds = trivial_latency_seconds
        self.config = config
        if isinstance(decoder, str):
            spec = decoder_spec(decoder)  # fail fast on unknown names
            self.decoder_name: str | None = decoder
            self.decoder_instance = None
            if config is not None and not isinstance(config, spec.config_cls):
                raise TypeError(
                    f"decoder {decoder!r} expects a {spec.config_cls.__name__}, "
                    f"got {type(config).__name__}"
                )
        else:
            if workers > 1:
                raise ValueError(
                    "workers > 1 requires the decoder as a registry name so "
                    "the worker processes can rebuild it"
                )
            self.decoder_name = None
            self.decoder_instance = decoder

    # ------------------------------------------------------------------
    # seeding / sharding contract
    # ------------------------------------------------------------------
    @staticmethod
    def shard_seed(seed: int, shard_index: int) -> np.random.SeedSequence:
        """The seed sequence of shard ``shard_index`` of a run seeded ``seed``."""
        return np.random.SeedSequence([int(seed), int(shard_index)])

    def shard_sampler(self, seed: int, shard_index: int) -> SyndromeSampler:
        """The sampler that generates shard ``shard_index`` of a seeded run."""
        return SyndromeSampler(self.graph, seed=self.shard_seed(seed, shard_index))

    def _plan_shards(self, max_shots: int) -> list[int]:
        full, remainder = divmod(max_shots, self.shard_size)
        return [self.shard_size] * full + ([remainder] if remainder else [])

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _make_decode_fn(
        self,
    ) -> tuple[Callable[[Sequence[Syndrome]], list[DecodeOutcome]], Callable[[], None]]:
        """Build the per-run decode pipeline: ``(decode, shutdown)``.

        The decoder (and, with ``workers > 1``, the process pool plus one
        decoder per worker) is constructed once and reused across every wave
        of the run; outcomes always come back in input order and are
        bit-identical for any worker count.
        """
        if self.decoder_name is None:
            instance = self.decoder_instance

            def decode_inline(syndromes: Sequence[Syndrome]) -> list[DecodeOutcome]:
                return [instance.decode_detailed(s) for s in syndromes]

            return decode_inline, lambda: None
        spec = decoder_spec(self.decoder_name)
        config = self.config if self.config is not None else spec.make_config()
        if self.workers == 1:
            decoder = spec.factory(self.graph, config)

            def decode_sequential(syndromes: Sequence[Syndrome]) -> list[DecodeOutcome]:
                return [decoder.decode_detailed(s) for s in syndromes]

            return decode_sequential, lambda: None
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_engine_worker_init,
            initargs=(self.graph, spec.factory, config),
        )

        def decode_parallel(syndromes: Sequence[Syndrome]) -> list[DecodeOutcome]:
            if not syndromes:
                return []
            futures = [
                pool.submit(_engine_worker_decode, chunk)
                for chunk in chunk_evenly(syndromes, self.workers)
            ]
            outcomes: list[DecodeOutcome] = []
            for future in futures:
                outcomes.extend(future.result())
            return outcomes

        return decode_parallel, pool.shutdown

    def _shard_result(
        self,
        index: int,
        syndromes: Sequence[Syndrome],
        outcomes: Sequence[DecodeOutcome],
    ) -> ShardResult:
        graph = self.graph
        errors = 0
        defects = 0
        erased = 0
        counters: Counter = Counter()
        histogram = LatencyHistogram() if self.latency_fn is not None else None
        outcome_iter = iter(outcomes)
        for syndrome in syndromes:
            if syndrome.logical_flip is None:
                raise ValueError("sampled syndrome lacks ground truth")
            defects += syndrome.defect_count
            erased += len(syndrome.erasures)
            if not syndrome.defects:
                if syndrome.logical_flip:
                    errors += 1
                if histogram is not None and self.trivial_latency_seconds is not None:
                    histogram.add(self.trivial_latency_seconds)
                continue
            outcome = next(outcome_iter)
            correction = outcome.correction_edges(graph)
            if graph.crosses_observable(correction) != syndrome.logical_flip:
                errors += 1
            counters.update(outcome.counters)
            if histogram is not None:
                histogram.add(self.latency_fn(outcome))
        return ShardResult(
            index=index,
            shots=len(syndromes),
            errors=errors,
            decoded_shots=len(outcomes),
            counters=counters,
            histogram=histogram,
            defects=defects,
            erased=erased,
        )

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------
    def run(
        self,
        max_shots: int,
        seed: int | None = 0,
        target_standard_error: float | None = None,
    ) -> EngineResult:
        """Estimate the logical error rate over at most ``max_shots`` shots.

        ``seed = None`` draws a fresh base seed from OS entropy (the run is
        then not reproducible).  ``target_standard_error`` enables early
        stopping as described in the module docstring.
        """
        if max_shots <= 0:
            raise ValueError("max_shots must be positive")
        if target_standard_error is not None and target_standard_error <= 0:
            raise ValueError("target_standard_error must be positive")
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        plan = self._plan_shards(max_shots)
        result = EngineResult(shots=0, errors=0)
        merged_histogram = (
            LatencyHistogram() if self.latency_fn is not None else None
        )
        wave_size = max(1, self.workers)
        decode, shutdown = self._make_decode_fn()
        try:
            position = 0
            while position < len(plan):
                wave = plan[position : position + wave_size]
                wave_syndromes = [
                    self.shard_sampler(seed, position + offset).sample_batch(shots)
                    for offset, shots in enumerate(wave)
                ]
                nontrivial = [
                    [s for s in shard if s.defects] for shard in wave_syndromes
                ]
                outcomes = decode([s for shard in nontrivial for s in shard])
                cursor = 0
                stop = False
                for offset, shard_syndromes in enumerate(wave_syndromes):
                    decoded = outcomes[cursor : cursor + len(nontrivial[offset])]
                    cursor += len(nontrivial[offset])
                    shard = self._shard_result(
                        position + offset, shard_syndromes, decoded
                    )
                    result.shards.append(shard)
                    result.shots += shard.shots
                    result.errors += shard.errors
                    result.defects += shard.defects
                    result.erased += shard.erased
                    result.counters.update(shard.counters)
                    if merged_histogram is not None and shard.histogram is not None:
                        merged_histogram.merge(shard.histogram)
                    if (
                        target_standard_error is not None
                        and result.errors > 0
                        and result.standard_error <= target_standard_error
                    ):
                        # Speculatively decoded shards beyond this one are
                        # discarded so the outcome is identical for any
                        # ``workers`` count.
                        result.stopped_early = True
                        stop = True
                        break
                if stop:
                    break
                position += len(wave)
        finally:
            shutdown()
        result.histogram = merged_histogram
        return result
