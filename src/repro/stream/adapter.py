"""Sliding-window adapter: lift any batch decoder onto the streaming protocol.

The adapter implements :class:`repro.api.StreamingDecoder` on top of a plain
batch :class:`repro.api.Decoder`, which opens the stream workload to every
backend of the registry (union-find, parity-blossom, the reference MWPM
decoder, and the batch-mode Micro Blossom baseline):

* **Growing window (``window=None``, the default).**  Rounds are buffered as
  they arrive and the whole instance is decoded once at :meth:`finalize`.
  The outcome is *exactly* the backend's batch outcome — matching weight and
  correction included — which is the mode the streamed-equals-batch
  conformance grid pins for every backend.  All decoding work lands after the
  final round, so the reaction latency measured by
  :class:`repro.evaluation.StreamEngine` is the batch latency: the baseline
  that round-wise fusion (native streaming) beats.

* **Finite window (``window=W``, ``commit_depth=C``).**  The classic
  overlapping-window scheme: whenever more than ``W`` rounds are pending, the
  backend decodes everything not yet committed, and decisions older than
  ``C`` rounds behind the window base become final — pairs whose defects all
  lie in committed rounds are frozen and never re-examined; defects matched
  beyond the commit horizon stay pending and are re-decoded in the next
  window.  Per-push work is then bounded by the window contents instead of
  the full history, at the price of a (slightly) sub-optimal total matching —
  the combined result is always a valid perfect matching, but its weight may
  exceed the global optimum.

Every :meth:`push_round` returns the operation counters the round actually
cost (plus the synthetic ``stream_defects_decoded`` count consumed by the
per-defect timing models), so the engine can account backlog build-up round
by round.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..api.outcome import DecodeOutcome
from ..api.protocol import Decoder
from ..graphs.decoding_graph import DecodingGraph
from ..graphs.syndrome import (
    BOUNDARY,
    MatchingResult,
    Syndrome,
    matching_from_correction,
    matching_weight,
)

#: Synthetic counter key: defects the backend (re-)decoded during one push or
#: finalize.  The per-defect timing models (Parity Blossom, Helios) read it.
DEFECTS_DECODED = "stream_defects_decoded"


@dataclass
class StreamOutcome(DecodeOutcome):
    """Outcome of a completed stream through :class:`SlidingWindowAdapter`."""

    #: Measurement rounds pushed through the stream.
    rounds: int = 0
    #: Defect pairs frozen by window commits before :meth:`finalize`.
    committed_pairs: int = 0
    window: int | None = None
    commit_depth: int | None = None
    #: Mirrors :class:`repro.core.decoder.MicroBlossomOutcome`'s flag so the
    #: timing models can recognise streamed outcomes generically.
    stream: bool = True


@dataclass
class _AdapterState:
    """Per-stream bookkeeping between ``begin`` and ``finalize``."""

    rounds: list[tuple[int, ...]] = field(default_factory=list)
    #: Heralded erased edges of this stream's shot (attached to every
    #: syndrome handed to the wrapped decoder).
    erasures: tuple[int, ...] = ()
    #: Defects not yet frozen by a window commit.
    pending: set[int] = field(default_factory=set)
    #: First round whose decisions are not yet final.
    base: int = 0
    committed_pairs: list[tuple[int, int]] = field(default_factory=list)
    committed_boundaries: dict[int, int] = field(default_factory=dict)
    counters: Counter = field(default_factory=Counter)


class SlidingWindowAdapter:
    """Make a batch :class:`~repro.api.protocol.Decoder` streamable.

    >>> from repro.api import get_decoder
    >>> from repro.graphs import SyndromeSampler, circuit_level_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, circuit_level_noise(0.02))
    >>> adapter = SlidingWindowAdapter(get_decoder("union-find", graph))
    >>> syndrome, rounds = SyndromeSampler(graph, seed=3).sample_rounds()
    >>> adapter.begin(graph)
    >>> costs = [adapter.push_round(r) for r in rounds]
    >>> adapter.finalize().defect_count == syndrome.defect_count
    True
    """

    def __init__(
        self,
        decoder: Decoder,
        window: int | None = None,
        commit_depth: int | None = None,
    ) -> None:
        if window is not None:
            if window < 1:
                raise ValueError("window must be >= 1 (or None for unbounded)")
            if commit_depth is None:
                commit_depth = max(1, window // 2)
            if not 1 <= commit_depth <= window:
                raise ValueError("commit_depth must satisfy 1 <= commit_depth <= window")
        elif commit_depth is not None:
            raise ValueError("commit_depth requires a finite window")
        self.decoder = decoder
        self.graph: DecodingGraph = decoder.graph
        self.window = window
        self.commit_depth = commit_depth
        self._state: _AdapterState | None = None

    @property
    def name(self) -> str:
        return f"{self.decoder.name}+window"

    # ------------------------------------------------------------------
    # StreamingDecoder protocol
    # ------------------------------------------------------------------
    def begin(
        self,
        graph: DecodingGraph | None = None,
        rounds_hint: int | None = None,
        erasures: Iterable[int] = (),
    ) -> None:
        """Open a new stream; any stream still in flight is discarded.

        ``erasures`` (the shot's heralded erased edges, known up front) is
        attached to every syndrome handed to the wrapped decoder, which must
        be erasure-aware to honor it (the registry's built-in factories are;
        see :mod:`repro.api.erasure`).
        """
        if graph is not None and graph is not self.graph:
            raise ValueError("streaming adapter was built for a different graph")
        if rounds_hint is not None and rounds_hint > self.graph.num_layers:
            raise ValueError(
                f"rounds_hint {rounds_hint} exceeds the graph's "
                f"{self.graph.num_layers} measurement rounds"
            )
        self._state = _AdapterState(
            erasures=tuple(sorted(set(int(e) for e in erasures)))
        )

    def push_round(self, defects: Iterable[int]) -> Counter:
        """Buffer the next round; decode and commit once the window fills."""
        state = self._state
        if state is None:
            raise RuntimeError("push_round before begin(); open a stream first")
        layer = len(state.rounds)
        graph = self.graph
        if layer >= graph.num_layers:
            raise ValueError(f"stream already received all {graph.num_layers} rounds")
        defects = tuple(defects)
        for defect in defects:
            vertex = graph.vertices[defect]
            if vertex.is_virtual:
                raise ValueError(f"virtual vertex {defect} cannot be a defect")
            if vertex.layer != layer:
                raise ValueError(
                    f"defect {defect} belongs to round {vertex.layer}, "
                    f"not round {layer}"
                )
        state.rounds.append(defects)
        state.pending.update(defects)
        work: Counter = Counter()
        if self.window is not None:
            while layer - state.base + 1 > self.window:
                work.update(self._slide(state))
        return work

    def finalize(self) -> DecodeOutcome:
        """Decode the tail of the stream and assemble the full outcome."""
        state = self._state
        if state is None:
            raise RuntimeError("finalize before begin(); open a stream first")
        self._state = None
        all_defects = tuple(
            sorted(d for round_defects in state.rounds for d in round_defects)
        )
        outcome = StreamOutcome(
            defect_count=len(all_defects),
            rounds=len(state.rounds),
            committed_pairs=len(state.committed_pairs),
            window=self.window,
            commit_depth=self.commit_depth,
        )
        if not all_defects:
            # Zero-defect fast path: nothing was ever decoded.
            outcome.result = MatchingResult()
            outcome.correction = set()
            outcome.counters = state.counters
            return outcome
        if not state.committed_pairs:
            # No pair was ever frozen, so every defect is still pending and
            # the stream reduces to one batch decode of the full instance —
            # outcome (weight and correction) identical to the backend's own
            # batch decode, even if window decodes ran along the way.
            backend = self.decoder.decode_detailed(
                Syndrome(defects=all_defects, erasures=state.erasures)
            )
            outcome.result = backend.result
            outcome.correction = backend.correction
            state.counters.update(backend.counters)
            state.counters[DEFECTS_DECODED] += len(all_defects)
            outcome.counters = state.counters
            return outcome
        pairs = list(state.committed_pairs)
        boundaries = dict(state.committed_boundaries)
        if state.pending:
            tail, _ = self._decode_pending(state)
            pairs.extend(tail.pairs)
            boundaries.update(tail.boundary_vertices)
        result = MatchingResult(pairs=pairs, boundary_vertices=boundaries)
        # Weight on the erased-variant graph when the shot carried heralded
        # erasures — consistent with the zero-weight edges the wrapped
        # decoder matched over.
        result.weight = matching_weight(
            self.graph.with_erasures(state.erasures), result
        )
        result.validate_perfect(all_defects)
        outcome.result = result
        outcome.committed_pairs = len(state.committed_pairs)
        outcome.counters = state.counters
        return outcome

    # ------------------------------------------------------------------
    # windowing internals
    # ------------------------------------------------------------------
    def _decode_pending(self, state: _AdapterState) -> tuple[MatchingResult, Counter]:
        """Batch-decode every pending defect; returns (matching, work)."""
        visible = tuple(sorted(state.pending))
        backend = self.decoder.decode_detailed(
            Syndrome(defects=visible, erasures=state.erasures)
        )
        if backend.result is not None:
            result = backend.result
        else:
            result = matching_from_correction(self.graph, visible, backend.correction)
        work = Counter(backend.counters)
        work[DEFECTS_DECODED] += len(visible)
        state.counters.update(work)
        return result, work

    def _slide(self, state: _AdapterState) -> Counter:
        """Decode the pending defects and freeze decisions behind the horizon.

        An empty pending set just advances the window base — no decode runs,
        no work is charged to the push.
        """
        horizon = state.base + self.commit_depth
        work: Counter = Counter()
        if state.pending:
            result, work = self._decode_pending(state)
            vertices = self.graph.vertices

            def layer_of(vertex: int) -> int:
                return vertices[vertex].layer

            for u, v in result.pairs:
                if layer_of(u) >= horizon:
                    continue
                if v == BOUNDARY:
                    state.committed_pairs.append((u, BOUNDARY))
                    boundary = result.boundary_vertices.get(u)
                    if boundary is not None:
                        state.committed_boundaries[u] = boundary
                    state.pending.discard(u)
                elif layer_of(v) < horizon:
                    state.committed_pairs.append((u, v))
                    state.pending.discard(u)
                    state.pending.discard(v)
        state.base = horizon
        return work
