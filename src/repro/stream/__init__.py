"""First-class streaming decode subsystem (paper §6: round-wise fusion).

This package turns decoding into an *online* problem: measurement rounds are
pushed into a :class:`repro.api.StreamingDecoder` one at a time
(``begin`` → ``push_round`` → ``finalize``) instead of handing the decoder a
fully-materialised syndrome.  Two implementations exist:

* backends whose registry entry advertises
  :attr:`~repro.api.DecoderCapabilities.native_streaming` (Micro Blossom)
  fuse each round into the running solution so only constant work remains
  when the final round arrives;
* every other backend is lifted onto the protocol by
  :class:`SlidingWindowAdapter`, with a configurable window / commit depth.

:func:`get_streaming_decoder` is the single constructor: it consults the
registry's capability flags and returns whichever implementation applies.
The continuous-stream evaluation harness lives in
:class:`repro.evaluation.StreamEngine`; the protocol itself is documented in
``docs/streaming.md``.
"""

from __future__ import annotations

from ..api.config import DecoderConfig
from ..api.protocol import StreamingDecoder
from ..api.registry import decoder_spec, get_decoder
from ..graphs.decoding_graph import DecodingGraph
from .adapter import DEFECTS_DECODED, SlidingWindowAdapter, StreamOutcome


def get_streaming_decoder(
    name: str,
    graph: DecodingGraph,
    config: DecoderConfig | None = None,
    *,
    window: int | None = None,
    commit_depth: int | None = None,
) -> StreamingDecoder:
    """Build a streaming decoder for a registered backend.

    Backends flagged ``native_streaming`` in the registry are returned
    directly (they implement the protocol themselves); all others are wrapped
    in a :class:`SlidingWindowAdapter`.  Passing a finite ``window`` forces
    the adapter even for native backends, so the overlapping-window scheme
    can be compared against true round-wise fusion on the same backend.

    >>> from repro.graphs import circuit_level_noise, surface_code_decoding_graph
    >>> graph = surface_code_decoding_graph(3, circuit_level_noise(0.01))
    >>> type(get_streaming_decoder("micro-blossom", graph)).__name__  # native
    'MicroBlossomDecoder'
    >>> type(get_streaming_decoder("union-find", graph)).__name__     # adapted
    'SlidingWindowAdapter'
    """
    if window is None and commit_depth is not None:
        raise ValueError("commit_depth requires a finite window")
    spec = decoder_spec(name)
    decoder = get_decoder(name, graph, config)
    if spec.capabilities.native_streaming and window is None:
        return decoder
    return SlidingWindowAdapter(decoder, window=window, commit_depth=commit_depth)


__all__ = [
    "DEFECTS_DECODED",
    "SlidingWindowAdapter",
    "StreamOutcome",
    "StreamingDecoder",
    "get_streaming_decoder",
]
