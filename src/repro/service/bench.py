"""``BENCH_service.json`` — the service-layer performance trajectory.

CI's ``perf-trajectory`` job replays the pinned smoke trace
(:data:`repro.service.SMOKE_TRACE`) through the decode service on every push
and publishes one JSON document per commit: request throughput, queue-delay
and end-to-end latency percentiles, the realised micro-batch size histogram,
session-cache and outcome-cache effectiveness (:mod:`repro.lut`) and the
bit-identity verdict against direct decodes.  Schema v2 adds the
``outcome_cache`` counters plus an optional ``cache_comparison`` pair — the
same trace replayed with the content-addressed outcome cache off and on —
so the cache's throughput effect is tracked per commit.  Consecutive
artifacts form the service trajectory, the
front-end counterpart of ``BENCH_sweep.json`` (:mod:`repro.sweeps.bench`):
a scheduling or batching regression shows up as a latency/throughput shift
at identical, seed-pinned work.

:func:`validate_service_bench` is the schema gate; the CLI's ``serve-bench``
validates before writing and CI fails on any violation (or on a non-zero
identity mismatch count).
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

from ..evaluation.engine import LatencyHistogram

#: Version of the BENCH_service document layout; bump on breaking changes.
#: v2: ``cache_hits`` / ``outcome_cache`` counters and the (nullable)
#: ``cache_comparison`` off/on pair; batch accounting becomes
#: ``batched + cache_hits == completed``.
SERVICE_BENCH_SCHEMA_VERSION = 2


class ServiceBenchSchemaError(ValueError):
    """Raised when a BENCH_service document violates the published schema."""


def _histogram_entry(histogram: LatencyHistogram) -> dict:
    return {
        "count": histogram.count,
        "mean_us": histogram.mean * 1e6,
        "p50_us": histogram.percentile(50) * 1e6,
        "p99_us": histogram.percentile(99) * 1e6,
        "min_us": (0.0 if histogram.count == 0 else histogram.min_seconds * 1e6),
        "max_us": histogram.max_seconds * 1e6,
    }


def cache_comparison_entry(off_result, on_result) -> dict:
    """The ``cache_comparison`` block: one trace replayed cache-off then -on.

    Both arguments are :class:`repro.evaluation.ServiceLoadResult` runs of the
    *same* trace; ``throughput_ratio`` is on/off (>1 ⇒ the cache helped).
    """

    def _side(result) -> dict:
        return {
            "completed": result.completed,
            "cache_hits": result.cache_hits,
            "throughput_rps": result.throughput_rps,
            "latency_p99_us": result.latency.percentile(99) * 1e6,
        }

    ratio = (
        on_result.throughput_rps / off_result.throughput_rps
        if off_result.throughput_rps > 0
        else 0.0
    )
    return {"off": _side(off_result), "on": _side(on_result), "throughput_ratio": ratio}


def service_bench_document(
    trace,
    result,
    *,
    commit: str | None = None,
    timestamp: str | None = None,
    cache_comparison: dict | None = None,
) -> dict:
    """Build the BENCH_service document for one load-engine run.

    ``trace`` is the :class:`~repro.service.trace.TraceSpec` the
    :class:`repro.evaluation.ServiceLoadEngine` replayed, ``result`` the
    :class:`repro.evaluation.ServiceLoadResult` it returned; the document
    embeds the trace (with its content hash) next to the measurements.
    ``cache_comparison`` is an optional :func:`cache_comparison_entry` block
    (``None`` when no off/on pair was run — the key is always present).
    """
    # Lazy import: repro.sweeps pulls the evaluation experiment stack, which
    # a service-only consumer should not pay for at import time.
    from ..sweeps.bench import current_commit

    return {
        "schema_version": SERVICE_BENCH_SCHEMA_VERSION,
        "commit": commit if commit is not None else current_commit(),
        "timestamp": timestamp
        if timestamp is not None
        else datetime.now(timezone.utc).isoformat(),
        "trace": {"hash": trace.trace_hash(), **trace.to_dict()},
        "requests": result.requests,
        "completed": result.completed,
        "shed": result.shed,
        "evaluated": result.evaluated,
        "errors": result.errors,
        "logical_error_rate": result.logical_error_rate,
        "elapsed_seconds": result.elapsed_seconds,
        "throughput_rps": result.throughput_rps,
        "queue_delay": _histogram_entry(result.queue_delay),
        "latency": _histogram_entry(result.latency),
        "batches": result.batches,
        "mean_batch_size": result.mean_batch_size,
        "batch_size_histogram": {
            str(size): count for size, count in sorted(result.batch_sizes.items())
        },
        "sessions": dict(result.session_stats),
        "cache_hits": result.cache_hits,
        "outcome_cache": dict(result.outcome_cache),
        "cache_comparison": cache_comparison,
        "identity": {
            "checked": result.identity_checked,
            "mismatches": result.identity_mismatches,
        },
        "outcome_digest": result.outcome_digest,
    }


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceBenchSchemaError(message)


def _check_number(value, path: str, low: float | None = None, high: float | None = None) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{path}: expected a number, got {type(value).__name__}",
    )
    if low is not None:
        _require(value >= low, f"{path}: {value} < {low}")
    if high is not None:
        _require(value <= high, f"{path}: {value} > {high}")


_HISTOGRAM_KEYS = ("count", "mean_us", "p50_us", "p99_us", "min_us", "max_us")
_TOP_REQUIRED = (
    "schema_version",
    "commit",
    "timestamp",
    "trace",
    "requests",
    "completed",
    "shed",
    "evaluated",
    "errors",
    "logical_error_rate",
    "elapsed_seconds",
    "throughput_rps",
    "queue_delay",
    "latency",
    "batches",
    "mean_batch_size",
    "batch_size_histogram",
    "sessions",
    "cache_hits",
    "outcome_cache",
    "cache_comparison",
    "identity",
    "outcome_digest",
)


def _check_histogram(entry, path: str) -> None:
    _require(isinstance(entry, dict), f"{path}: expected an object")
    for key in _HISTOGRAM_KEYS:
        _require(key in entry, f"{path}: missing key {key!r}")
        _check_number(entry[key], f"{path}.{key}", low=0.0)


def _check_outcome_cache(entry, path: str) -> None:
    _require(isinstance(entry, dict), f"{path}: expected an object")
    _require("enabled" in entry, f"{path}: missing key 'enabled'")
    _require(isinstance(entry["enabled"], bool), f"{path}.enabled must be a bool")
    if not entry["enabled"]:
        return
    for key in ("hits", "misses", "evictions", "entries", "bytes_resident", "max_bytes"):
        _require(key in entry, f"{path}: missing key {key!r}")
        _check_number(entry[key], f"{path}.{key}", low=0)
    _check_number(entry["hit_rate"], f"{path}.hit_rate", 0.0, 1.0)


def _check_cache_comparison(comparison) -> None:
    _require(isinstance(comparison, dict), "cache_comparison must be an object or null")
    for side in ("off", "on"):
        _require(side in comparison, f"cache_comparison: missing key {side!r}")
        entry = comparison[side]
        _require(isinstance(entry, dict), f"cache_comparison.{side}: expected an object")
        for key in ("completed", "cache_hits", "throughput_rps", "latency_p99_us"):
            _require(key in entry, f"cache_comparison.{side}: missing key {key!r}")
            _check_number(entry[key], f"cache_comparison.{side}.{key}", low=0)
    _require(
        comparison["off"]["cache_hits"] == 0,
        "cache_comparison.off must have run without the cache (cache_hits == 0)",
    )
    _check_number(comparison["throughput_ratio"], "cache_comparison.throughput_ratio", low=0.0)


def validate_service_bench(document: dict) -> None:
    """Validate a BENCH_service document; raises on any schema violation.

    >>> validate_service_bench({})
    Traceback (most recent call last):
        ...
    repro.service.bench.ServiceBenchSchemaError: missing top-level key 'schema_version'
    """
    _require(isinstance(document, dict), "document must be a JSON object")
    for key in _TOP_REQUIRED:
        _require(key in document, f"missing top-level key {key!r}")
    _require(
        document["schema_version"] == SERVICE_BENCH_SCHEMA_VERSION,
        f"schema_version {document['schema_version']!r} != "
        f"{SERVICE_BENCH_SCHEMA_VERSION}",
    )
    for key in ("commit", "timestamp", "outcome_digest"):
        _require(
            isinstance(document[key], str) and document[key],
            f"{key} must be a non-empty string",
        )
    trace = document["trace"]
    _require(isinstance(trace, dict), "trace must be an object")
    for key in ("hash", "name", "scenarios", "requests", "seed", "arrival"):
        _require(key in trace, f"trace: missing key {key!r}")
    _require(
        isinstance(trace["scenarios"], list) and trace["scenarios"],
        "trace.scenarios must be a non-empty array",
    )
    _check_number(document["requests"], "requests", low=1)
    _check_number(document["completed"], "completed", 0, document["requests"])
    _check_number(document["shed"], "shed", 0, document["requests"])
    _require(
        document["completed"] + document["shed"] == document["requests"],
        "completed + shed must equal requests",
    )
    _check_number(document["evaluated"], "evaluated", 0, document["completed"])
    _check_number(document["errors"], "errors", 0, max(document["evaluated"], 0))
    _check_number(document["logical_error_rate"], "logical_error_rate", 0.0, 1.0)
    _check_number(document["elapsed_seconds"], "elapsed_seconds", low=0.0)
    _check_number(document["throughput_rps"], "throughput_rps", low=0.0)
    _check_histogram(document["queue_delay"], "queue_delay")
    _check_histogram(document["latency"], "latency")
    _check_number(document["batches"], "batches", low=0)
    _check_number(document["mean_batch_size"], "mean_batch_size", low=0.0)
    histogram = document["batch_size_histogram"]
    _require(isinstance(histogram, dict), "batch_size_histogram must be an object")
    batched_requests = 0
    for size, count in histogram.items():
        _require(
            isinstance(size, str) and size.isdigit() and int(size) >= 1,
            f"batch_size_histogram: key {size!r} must be a positive-integer string",
        )
        _check_number(count, f"batch_size_histogram[{size!r}]", low=1)
        batched_requests += int(size) * count
    _check_number(document["cache_hits"], "cache_hits", 0, document["completed"])
    _require(
        batched_requests + document["cache_hits"] == document["completed"],
        "batched requests + cache_hits must account for every completed request",
    )
    sessions = document["sessions"]
    _require(isinstance(sessions, dict), "sessions must be an object")
    for key in ("hits", "misses", "evictions"):
        _require(key in sessions, f"sessions: missing key {key!r}")
        _check_number(sessions[key], f"sessions.{key}", low=0)
    _check_outcome_cache(document["outcome_cache"], "outcome_cache")
    comparison = document["cache_comparison"]
    if comparison is not None:
        _check_cache_comparison(comparison)
    identity = document["identity"]
    _require(isinstance(identity, dict), "identity must be an object")
    for key in ("checked", "mismatches"):
        _require(key in identity, f"identity: missing key {key!r}")
        _check_number(identity[key], f"identity.{key}", low=0)
    _require(
        identity["mismatches"] <= identity["checked"],
        "identity.mismatches cannot exceed identity.checked",
    )


def write_service_bench(document: dict, path: str | Path) -> Path:
    """Validate and write the document (atomic via temp + rename)."""
    validate_service_bench(document)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    tmp_path.replace(path)
    return path
