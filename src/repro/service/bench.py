"""``BENCH_service.json`` — the service-layer performance trajectory.

CI's ``perf-trajectory`` job replays the pinned smoke trace
(:data:`repro.service.SMOKE_TRACE`) through the decode service on every push
and publishes one JSON document per commit: request throughput, queue-delay
and end-to-end latency percentiles, the realised micro-batch size histogram,
session-cache and outcome-cache effectiveness (:mod:`repro.lut`) and the
bit-identity verdict against direct decodes.  Schema v2 adds the
``outcome_cache`` counters plus an optional ``cache_comparison`` pair — the
same trace replayed with the content-addressed outcome cache off and on —
so the cache's throughput effect is tracked per commit.  Schema v3 adds the
fault/overload ledger: ``error_responses`` and ``retries`` counters, the
``shed_rate``, a per-scenario ``fairness`` block (min/max healthy completion
ratios), the ``healthy_digest`` over non-poisoned outcomes, the (nullable)
``fault_plan`` in force, and a (nullable) ``hostile_mix`` series — the
pinned hostile trace families of :data:`repro.service.HOSTILE_SMOKE_TRACES`
replayed under :data:`repro.service.HOSTILE_SMOKE_PLAN`.  Schema v4 adds the
(nullable) ``saturation`` block: a closed-loop offered-load ladder with its
throughput knee (:meth:`repro.evaluation.ServiceLoadEngine.saturate`) and,
nested under ``saturation.scaling``, the network path's worker-process
scaling series (:mod:`repro.service.net.bench`) — throughput and efficiency
per process count with the host's CPU count attached, plus the
``digest_match`` verdicts that pin "load and process count shape timing,
never outcomes".  Schema v5 adds the (nullable) ``wire`` block: the network
replay's wire statistics (negotiated codec, byte/frame counts both
directions, the coalesced-batch-size histogram) and the (nullable)
``wire.comparison`` — the same trace replayed over the binary-batched v2
wire and the per-request JSON v1 wire against one server, with the
end-to-end ``speedup`` and the cross-codec ``digest_match``.  Consecutive
artifacts form the service trajectory, the
front-end counterpart of ``BENCH_sweep.json`` (:mod:`repro.sweeps.bench`):
a scheduling or batching regression shows up as a latency/throughput shift
at identical, seed-pinned work.

:func:`validate_service_bench` is the schema gate; the CLI's ``serve-bench``
validates before writing and CI fails on any violation (or on a non-zero
identity mismatch count).
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

from ..evaluation.engine import LatencyHistogram

#: Version of the BENCH_service document layout; bump on breaking changes.
#: v2: ``cache_hits`` / ``outcome_cache`` counters and the (nullable)
#: ``cache_comparison`` off/on pair; batch accounting becomes
#: ``batched + cache_hits == completed``.
#: v3: fault/overload accounting — ``error_responses``, ``retries``,
#: ``shed_rate``, ``fairness``, ``healthy_digest``, the (nullable)
#: ``fault_plan``, and the (nullable) ``hostile_mix`` series; the request
#: ledger becomes ``completed + shed + error_responses == requests`` and
#: batch accounting ``batched + cache_hits == completed + error_responses``
#: (failed requests occupy batch slots too).
#: v4: the (nullable) ``saturation`` block — closed-loop offered-load ladder
#: with knee detection, and the nested (nullable) ``saturation.scaling``
#: series of the network path's per-process throughput and efficiency.
#: v5: the (nullable) ``wire`` block — network wire statistics (negotiated
#: codec, bytes/frames each direction, coalesced-batch histogram) and the
#: (nullable) ``wire.comparison`` of the binary-batched v2 wire against the
#: per-request JSON v1 wire (throughput speedup + cross-codec digest match).
SERVICE_BENCH_SCHEMA_VERSION = 5


class ServiceBenchSchemaError(ValueError):
    """Raised when a BENCH_service document violates the published schema."""


def _histogram_entry(histogram: LatencyHistogram) -> dict:
    return {
        "count": histogram.count,
        "mean_us": histogram.mean * 1e6,
        "p50_us": histogram.percentile(50) * 1e6,
        "p99_us": histogram.percentile(99) * 1e6,
        "min_us": (0.0 if histogram.count == 0 else histogram.min_seconds * 1e6),
        "max_us": histogram.max_seconds * 1e6,
    }


def cache_comparison_entry(off_result, on_result) -> dict:
    """The ``cache_comparison`` block: one trace replayed cache-off then -on.

    Both arguments are :class:`repro.evaluation.ServiceLoadResult` runs of the
    *same* trace; ``throughput_ratio`` is on/off (>1 ⇒ the cache helped).
    """

    def _side(result) -> dict:
        return {
            "completed": result.completed,
            "cache_hits": result.cache_hits,
            "throughput_rps": result.throughput_rps,
            "latency_p99_us": result.latency.percentile(99) * 1e6,
        }

    ratio = (
        on_result.throughput_rps / off_result.throughput_rps
        if off_result.throughput_rps > 0
        else 0.0
    )
    return {"off": _side(off_result), "on": _side(on_result), "throughput_ratio": ratio}


def fairness_entry(result) -> dict:
    """The ``fairness`` block: per-scenario healthy completion ratios.

    Each scenario's ratio is ``completed / (offered - poisoned)`` — poisoned
    requests are the fault plan's, not the scheduler's, so they are excluded
    from the denominator.  ``min``/``max`` summarise the spread: a scheduler
    that starves one session key under Zipf skew shows up as a low ``min``.
    """
    return {
        "per_scenario": [dict(row) for row in result.per_scenario],
        "min_completion_ratio": result.min_completion_ratio,
        "max_completion_ratio": result.max_completion_ratio,
    }


def hostile_mix_entry(family: str, trace, plan, result) -> dict:
    """One ``hostile_mix`` series entry: a hostile family replayed faulted.

    ``family`` names the traffic shape (one of
    :data:`repro.service.HOSTILE_FAMILIES`), ``trace`` / ``plan`` the pinned
    :class:`~repro.service.trace.TraceSpec` and
    :class:`~repro.service.faults.FaultPlan` replayed, and ``result`` the
    :class:`repro.evaluation.ServiceLoadResult`.  ``isolated`` is the
    series' pass/fail verdict: every poisoned request resolved as an error,
    no healthy request was lost to one, and identity held.
    """
    isolated = (
        result.poisoned_errored == result.poisoned
        and result.error_responses == result.poisoned
        and result.identity_mismatches == 0
        and result.stream_mismatches == 0
    )
    return {
        "family": family,
        "trace_hash": trace.trace_hash(),
        "plan_hash": plan.plan_hash(),
        "requests": result.requests,
        "completed": result.completed,
        "shed": result.shed,
        "error_responses": result.error_responses,
        "poisoned": result.poisoned,
        "poisoned_errored": result.poisoned_errored,
        "retries": result.retries,
        "streams": result.streams,
        "stream_mismatches": result.stream_mismatches,
        "shed_rate": result.shed_rate,
        "min_completion_ratio": result.min_completion_ratio,
        "max_completion_ratio": result.max_completion_ratio,
        "throughput_rps": result.throughput_rps,
        "latency_p99_us": result.latency.percentile(99) * 1e6,
        "identity_checked": result.identity_checked,
        "identity_mismatches": result.identity_mismatches,
        "healthy_digest": result.healthy_digest,
        "isolated": isolated,
    }


def saturation_entry(saturation, scaling: dict | None = None) -> dict:
    """The ``saturation`` block: the offered-load ladder plus its knee.

    ``saturation`` is a :class:`repro.evaluation.SaturationResult` from
    :meth:`repro.evaluation.ServiceLoadEngine.saturate`; ``scaling`` is the
    (optional) network-path process-scaling series from
    :func:`repro.service.net.bench.scaling_entry`.
    """
    return {
        "mode": "closed-loop",
        "client_ladder": [point.clients for point in saturation.points],
        "points": [point.to_dict() for point in saturation.points],
        "knee": {
            "clients": saturation.knee_clients,
            "throughput_rps": saturation.knee_throughput_rps,
        },
        "peak_throughput_rps": saturation.peak_throughput_rps,
        "digest_match": saturation.digest_match,
        "scaling": scaling,
    }


def wire_entry(stats: dict | None = None, comparison: dict | None = None) -> dict:
    """The ``wire`` block: network wire statistics plus the codec comparison.

    ``stats`` is :meth:`repro.service.net.client.NetClient.wire_stats` from a
    network replay (``None`` when the primary run was in-process);
    ``comparison`` is :func:`repro.service.net.bench.wire_comparison`'s
    v2-vs-v1 block (``None`` when not run).
    """
    return {"stats": stats, "comparison": comparison}


def service_bench_document(
    trace,
    result,
    *,
    commit: str | None = None,
    timestamp: str | None = None,
    cache_comparison: dict | None = None,
    fault_plan=None,
    hostile_mix: list | None = None,
    saturation: dict | None = None,
    wire: dict | None = None,
) -> dict:
    """Build the BENCH_service document for one load-engine run.

    ``trace`` is the :class:`~repro.service.trace.TraceSpec` the
    :class:`repro.evaluation.ServiceLoadEngine` replayed, ``result`` the
    :class:`repro.evaluation.ServiceLoadResult` it returned; the document
    embeds the trace (with its content hash) next to the measurements.
    ``cache_comparison`` is an optional :func:`cache_comparison_entry` block,
    ``fault_plan`` the :class:`~repro.service.faults.FaultPlan` the primary
    run injected, ``hostile_mix`` an optional list of
    :func:`hostile_mix_entry` blocks, ``saturation`` an optional
    :func:`saturation_entry` block, and ``wire`` an optional
    :func:`wire_entry` block — all ``None`` when not run (the keys are
    always present).
    """
    # Lazy import: repro.sweeps pulls the evaluation experiment stack, which
    # a service-only consumer should not pay for at import time.
    from ..sweeps.bench import current_commit

    return {
        "schema_version": SERVICE_BENCH_SCHEMA_VERSION,
        "commit": commit if commit is not None else current_commit(),
        "timestamp": timestamp
        if timestamp is not None
        else datetime.now(timezone.utc).isoformat(),
        "trace": {"hash": trace.trace_hash(), **trace.to_dict()},
        "requests": result.requests,
        "completed": result.completed,
        "shed": result.shed,
        "evaluated": result.evaluated,
        "errors": result.errors,
        "logical_error_rate": result.logical_error_rate,
        "elapsed_seconds": result.elapsed_seconds,
        "throughput_rps": result.throughput_rps,
        "queue_delay": _histogram_entry(result.queue_delay),
        "latency": _histogram_entry(result.latency),
        "batches": result.batches,
        "mean_batch_size": result.mean_batch_size,
        "batch_size_histogram": {
            str(size): count for size, count in sorted(result.batch_sizes.items())
        },
        "sessions": dict(result.session_stats),
        "cache_hits": result.cache_hits,
        "outcome_cache": dict(result.outcome_cache),
        "cache_comparison": cache_comparison,
        "error_responses": result.error_responses,
        "retries": result.retries,
        "shed_rate": result.shed_rate,
        "fairness": fairness_entry(result),
        "fault_plan": None if fault_plan is None else fault_plan.to_dict(),
        "hostile_mix": hostile_mix,
        "saturation": saturation,
        "wire": wire,
        "identity": {
            "checked": result.identity_checked,
            "mismatches": result.identity_mismatches,
        },
        "outcome_digest": result.outcome_digest,
        "healthy_digest": result.healthy_digest,
    }


# ---------------------------------------------------------------------------
# schema validation
# ---------------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceBenchSchemaError(message)


def _check_number(value, path: str, low: float | None = None, high: float | None = None) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{path}: expected a number, got {type(value).__name__}",
    )
    if low is not None:
        _require(value >= low, f"{path}: {value} < {low}")
    if high is not None:
        _require(value <= high, f"{path}: {value} > {high}")


_HISTOGRAM_KEYS = ("count", "mean_us", "p50_us", "p99_us", "min_us", "max_us")
_TOP_REQUIRED = (
    "schema_version",
    "commit",
    "timestamp",
    "trace",
    "requests",
    "completed",
    "shed",
    "evaluated",
    "errors",
    "logical_error_rate",
    "elapsed_seconds",
    "throughput_rps",
    "queue_delay",
    "latency",
    "batches",
    "mean_batch_size",
    "batch_size_histogram",
    "sessions",
    "cache_hits",
    "outcome_cache",
    "cache_comparison",
    "error_responses",
    "retries",
    "shed_rate",
    "fairness",
    "fault_plan",
    "hostile_mix",
    "saturation",
    "wire",
    "identity",
    "outcome_digest",
    "healthy_digest",
)


def _check_histogram(entry, path: str) -> None:
    _require(isinstance(entry, dict), f"{path}: expected an object")
    for key in _HISTOGRAM_KEYS:
        _require(key in entry, f"{path}: missing key {key!r}")
        _check_number(entry[key], f"{path}.{key}", low=0.0)


def _check_outcome_cache(entry, path: str) -> None:
    _require(isinstance(entry, dict), f"{path}: expected an object")
    _require("enabled" in entry, f"{path}: missing key 'enabled'")
    _require(isinstance(entry["enabled"], bool), f"{path}.enabled must be a bool")
    if not entry["enabled"]:
        return
    for key in ("hits", "misses", "evictions", "entries", "bytes_resident", "max_bytes"):
        _require(key in entry, f"{path}: missing key {key!r}")
        _check_number(entry[key], f"{path}.{key}", low=0)
    _check_number(entry["hit_rate"], f"{path}.hit_rate", 0.0, 1.0)


def _check_cache_comparison(comparison) -> None:
    _require(isinstance(comparison, dict), "cache_comparison must be an object or null")
    for side in ("off", "on"):
        _require(side in comparison, f"cache_comparison: missing key {side!r}")
        entry = comparison[side]
        _require(isinstance(entry, dict), f"cache_comparison.{side}: expected an object")
        for key in ("completed", "cache_hits", "throughput_rps", "latency_p99_us"):
            _require(key in entry, f"cache_comparison.{side}: missing key {key!r}")
            _check_number(entry[key], f"cache_comparison.{side}.{key}", low=0)
    _require(
        comparison["off"]["cache_hits"] == 0,
        "cache_comparison.off must have run without the cache (cache_hits == 0)",
    )
    _check_number(comparison["throughput_ratio"], "cache_comparison.throughput_ratio", low=0.0)


def _check_fairness(entry, path: str) -> None:
    _require(isinstance(entry, dict), f"{path}: expected an object")
    for key in ("per_scenario", "min_completion_ratio", "max_completion_ratio"):
        _require(key in entry, f"{path}: missing key {key!r}")
    _check_number(entry["min_completion_ratio"], f"{path}.min_completion_ratio", 0.0, 1.0)
    _check_number(entry["max_completion_ratio"], f"{path}.max_completion_ratio", 0.0, 1.0)
    _require(
        entry["min_completion_ratio"] <= entry["max_completion_ratio"],
        f"{path}: min_completion_ratio exceeds max_completion_ratio",
    )
    rows = entry["per_scenario"]
    _require(isinstance(rows, list) and rows, f"{path}.per_scenario must be a non-empty array")
    for index, row in enumerate(rows):
        row_path = f"{path}.per_scenario[{index}]"
        _require(isinstance(row, dict), f"{row_path}: expected an object")
        for key in ("scenario", "offered", "poisoned", "completed", "shed", "errors"):
            _require(key in row, f"{row_path}: missing key {key!r}")
            _check_number(row[key], f"{row_path}.{key}", low=0)
        _check_number(row["completion_ratio"], f"{row_path}.completion_ratio", 0.0, 1.0)
        # Poisoned, completed and shed are disjoint request sets; errors may
        # overlap poisoned (a poisoned request resolving as an error).
        _require(
            row["poisoned"] + row["completed"] + row["shed"] <= row["offered"],
            f"{row_path}: ledger exceeds offered requests",
        )


def _check_fault_plan(entry, path: str) -> None:
    _require(isinstance(entry, dict), f"{path} must be an object or null")
    for key in (
        "name",
        "seed",
        "straggler_workers",
        "straggler_delay_seconds",
        "session_crash_rate",
        "session_crash_attempts",
        "poison_rate",
    ):
        _require(key in entry, f"{path}: missing key {key!r}")
    _check_number(entry["poison_rate"], f"{path}.poison_rate", 0.0, 1.0)
    _check_number(entry["session_crash_rate"], f"{path}.session_crash_rate", 0.0, 1.0)


def _check_hostile_mix(entries) -> None:
    _require(isinstance(entries, list) and entries, "hostile_mix must be a non-empty array or null")
    for index, entry in enumerate(entries):
        path = f"hostile_mix[{index}]"
        _require(isinstance(entry, dict), f"{path}: expected an object")
        for key in ("family", "trace_hash", "plan_hash", "healthy_digest"):
            _require(
                key in entry and isinstance(entry[key], str) and entry[key],
                f"{path}: {key} must be a non-empty string",
            )
        for key in (
            "requests",
            "completed",
            "shed",
            "error_responses",
            "poisoned",
            "poisoned_errored",
            "retries",
            "streams",
            "stream_mismatches",
            "throughput_rps",
            "latency_p99_us",
            "identity_checked",
            "identity_mismatches",
        ):
            _require(key in entry, f"{path}: missing key {key!r}")
            _check_number(entry[key], f"{path}.{key}", low=0)
        _check_number(entry["shed_rate"], f"{path}.shed_rate", 0.0, 1.0)
        _check_number(entry["min_completion_ratio"], f"{path}.min_completion_ratio", 0.0, 1.0)
        _check_number(entry["max_completion_ratio"], f"{path}.max_completion_ratio", 0.0, 1.0)
        _require(
            entry["completed"] + entry["shed"] + entry["error_responses"]
            == entry["requests"],
            f"{path}: completed + shed + error_responses must equal requests",
        )
        _require(
            entry["poisoned_errored"] <= entry["poisoned"],
            f"{path}: poisoned_errored cannot exceed poisoned",
        )
        _require(isinstance(entry["isolated"], bool), f"{path}.isolated must be a bool")


def _check_scaling(entry) -> None:
    _require(isinstance(entry, dict), "saturation.scaling must be an object or null")
    for key in ("cpu_count", "process_counts", "series", "digest_match"):
        _require(key in entry, f"saturation.scaling: missing key {key!r}")
    _check_number(entry["cpu_count"], "saturation.scaling.cpu_count", low=1)
    counts = entry["process_counts"]
    _require(
        isinstance(counts, list) and counts,
        "saturation.scaling.process_counts must be a non-empty array",
    )
    series = entry["series"]
    _require(
        isinstance(series, list) and len(series) == len(counts),
        "saturation.scaling.series must match process_counts",
    )
    for index, row in enumerate(series):
        path = f"saturation.scaling.series[{index}]"
        _require(isinstance(row, dict), f"{path}: expected an object")
        for key in ("processes", "completed", "throughput_rps", "latency_p99_us", "efficiency"):
            _require(key in row, f"{path}: missing key {key!r}")
            _check_number(row[key], f"{path}.{key}", low=0)
        _require(
            isinstance(row["healthy_digest"], str) and row["healthy_digest"],
            f"{path}.healthy_digest must be a non-empty string",
        )
        _require(row["processes"] == counts[index], f"{path}: processes out of order")
    _require(
        isinstance(entry["digest_match"], bool), "saturation.scaling.digest_match must be a bool"
    )


def _check_saturation(entry) -> None:
    _require(isinstance(entry, dict), "saturation must be an object or null")
    for key in ("mode", "client_ladder", "points", "knee", "peak_throughput_rps",
                "digest_match", "scaling"):
        _require(key in entry, f"saturation: missing key {key!r}")
    _require(entry["mode"] == "closed-loop", "saturation.mode must be 'closed-loop'")
    ladder = entry["client_ladder"]
    _require(
        isinstance(ladder, list) and ladder and ladder == sorted(set(ladder)),
        "saturation.client_ladder must be a strictly increasing non-empty array",
    )
    points = entry["points"]
    _require(
        isinstance(points, list) and len(points) == len(ladder),
        "saturation.points must match client_ladder",
    )
    for index, point in enumerate(points):
        path = f"saturation.points[{index}]"
        _require(isinstance(point, dict), f"{path}: expected an object")
        for key in (
            "clients",
            "requests",
            "completed",
            "elapsed_seconds",
            "throughput_rps",
            "latency_p50_us",
            "latency_p99_us",
        ):
            _require(key in point, f"{path}: missing key {key!r}")
            _check_number(point[key], f"{path}.{key}", low=0)
        _require(point["clients"] == ladder[index], f"{path}: clients out of order")
        _require(
            isinstance(point["healthy_digest"], str) and point["healthy_digest"],
            f"{path}.healthy_digest must be a non-empty string",
        )
    knee = entry["knee"]
    _require(isinstance(knee, dict), "saturation.knee must be an object")
    for key in ("clients", "throughput_rps"):
        _require(key in knee, f"saturation.knee: missing key {key!r}")
        _check_number(knee[key], f"saturation.knee.{key}", low=0)
    _require(knee["clients"] in ladder, "saturation.knee.clients must be a ladder rung")
    _check_number(entry["peak_throughput_rps"], "saturation.peak_throughput_rps", low=0.0)
    _require(isinstance(entry["digest_match"], bool), "saturation.digest_match must be a bool")
    if entry["scaling"] is not None:
        _check_scaling(entry["scaling"])


def _check_wire_stats(stats, path: str) -> None:
    _require(isinstance(stats, dict), f"{path}: expected an object")
    _require("codec" in stats, f"{path}: missing key 'codec'")
    _require(stats["codec"] in (1, 2), f"{path}.codec must be 1 (JSON) or 2 (binary)")
    for key in ("frames_sent", "bytes_sent", "frames_received", "bytes_received"):
        _require(key in stats, f"{path}: missing key {key!r}")
        _check_number(stats[key], f"{path}.{key}", low=0)
    histogram = stats.get("batch_histogram")
    _require(isinstance(histogram, dict), f"{path}.batch_histogram must be an object")
    for size, count in histogram.items():
        _require(
            isinstance(size, str) and size.isdigit() and int(size) >= 1,
            f"{path}.batch_histogram: key {size!r} must be a positive-integer string",
        )
        _check_number(count, f"{path}.batch_histogram[{size!r}]", low=1)


def _check_wire_comparison(comparison) -> None:
    _require(isinstance(comparison, dict), "wire.comparison must be an object or null")
    for key in ("processes", "requests", "v2", "v1", "speedup", "digest_match"):
        _require(key in comparison, f"wire.comparison: missing key {key!r}")
    _check_number(comparison["processes"], "wire.comparison.processes", low=1)
    _check_number(comparison["requests"], "wire.comparison.requests", low=1)
    for side in ("v2", "v1"):
        path = f"wire.comparison.{side}"
        entry = comparison[side]
        _check_wire_stats(entry, path)
        for key in ("throughput_rps",):
            _require(key in entry, f"{path}: missing key {key!r}")
            _check_number(entry[key], f"{path}.{key}", low=0.0)
        _require(
            isinstance(entry.get("healthy_digest"), str) and entry["healthy_digest"],
            f"{path}.healthy_digest must be a non-empty string",
        )
    _require(
        comparison["v1"]["codec"] == 1,
        "wire.comparison.v1 must have run on codec 1",
    )
    _check_number(comparison["speedup"], "wire.comparison.speedup", low=0.0)
    _require(
        isinstance(comparison["digest_match"], bool),
        "wire.comparison.digest_match must be a bool",
    )


def _check_wire(entry) -> None:
    _require(isinstance(entry, dict), "wire must be an object or null")
    for key in ("stats", "comparison"):
        _require(key in entry, f"wire: missing key {key!r}")
    if entry["stats"] is not None:
        _check_wire_stats(entry["stats"], "wire.stats")
    if entry["comparison"] is not None:
        _check_wire_comparison(entry["comparison"])


def validate_service_bench(document: dict) -> None:
    """Validate a BENCH_service document; raises on any schema violation.

    >>> validate_service_bench({})
    Traceback (most recent call last):
        ...
    repro.service.bench.ServiceBenchSchemaError: missing top-level key 'schema_version'
    """
    _require(isinstance(document, dict), "document must be a JSON object")
    for key in _TOP_REQUIRED:
        _require(key in document, f"missing top-level key {key!r}")
    _require(
        document["schema_version"] == SERVICE_BENCH_SCHEMA_VERSION,
        f"schema_version {document['schema_version']!r} != "
        f"{SERVICE_BENCH_SCHEMA_VERSION}",
    )
    for key in ("commit", "timestamp", "outcome_digest", "healthy_digest"):
        _require(
            isinstance(document[key], str) and document[key],
            f"{key} must be a non-empty string",
        )
    trace = document["trace"]
    _require(isinstance(trace, dict), "trace must be an object")
    for key in ("hash", "name", "scenarios", "requests", "seed", "arrival"):
        _require(key in trace, f"trace: missing key {key!r}")
    _require(
        isinstance(trace["scenarios"], list) and trace["scenarios"],
        "trace.scenarios must be a non-empty array",
    )
    _check_number(document["requests"], "requests", low=1)
    _check_number(document["completed"], "completed", 0, document["requests"])
    _check_number(document["shed"], "shed", 0, document["requests"])
    _check_number(document["error_responses"], "error_responses", 0, document["requests"])
    _check_number(document["retries"], "retries", low=0)
    _check_number(document["shed_rate"], "shed_rate", 0.0, 1.0)
    _require(
        document["completed"] + document["shed"] + document["error_responses"]
        == document["requests"],
        "completed + shed + error_responses must equal requests",
    )
    _check_number(document["evaluated"], "evaluated", 0, document["completed"])
    _check_number(document["errors"], "errors", 0, max(document["evaluated"], 0))
    _check_number(document["logical_error_rate"], "logical_error_rate", 0.0, 1.0)
    _check_number(document["elapsed_seconds"], "elapsed_seconds", low=0.0)
    _check_number(document["throughput_rps"], "throughput_rps", low=0.0)
    _check_histogram(document["queue_delay"], "queue_delay")
    _check_histogram(document["latency"], "latency")
    _check_number(document["batches"], "batches", low=0)
    _check_number(document["mean_batch_size"], "mean_batch_size", low=0.0)
    histogram = document["batch_size_histogram"]
    _require(isinstance(histogram, dict), "batch_size_histogram must be an object")
    batched_requests = 0
    for size, count in histogram.items():
        _require(
            isinstance(size, str) and size.isdigit() and int(size) >= 1,
            f"batch_size_histogram: key {size!r} must be a positive-integer string",
        )
        _check_number(count, f"batch_size_histogram[{size!r}]", low=1)
        batched_requests += int(size) * count
    _check_number(document["cache_hits"], "cache_hits", 0, document["completed"])
    _require(
        batched_requests + document["cache_hits"]
        == document["completed"] + document["error_responses"],
        "batched requests + cache_hits must account for every completed or "
        "errored request (failed requests occupy batch slots too)",
    )
    sessions = document["sessions"]
    _require(isinstance(sessions, dict), "sessions must be an object")
    for key in ("hits", "misses", "evictions"):
        _require(key in sessions, f"sessions: missing key {key!r}")
        _check_number(sessions[key], f"sessions.{key}", low=0)
    _check_outcome_cache(document["outcome_cache"], "outcome_cache")
    comparison = document["cache_comparison"]
    if comparison is not None:
        _check_cache_comparison(comparison)
    _check_fairness(document["fairness"], "fairness")
    if document["fault_plan"] is not None:
        _check_fault_plan(document["fault_plan"], "fault_plan")
    if document["hostile_mix"] is not None:
        _check_hostile_mix(document["hostile_mix"])
    if document["saturation"] is not None:
        _check_saturation(document["saturation"])
    if document["wire"] is not None:
        _check_wire(document["wire"])
    identity = document["identity"]
    _require(isinstance(identity, dict), "identity must be an object")
    for key in ("checked", "mismatches"):
        _require(key in identity, f"identity: missing key {key!r}")
        _check_number(identity[key], f"identity.{key}", low=0)
    _require(
        identity["mismatches"] <= identity["checked"],
        "identity.mismatches cannot exceed identity.checked",
    )


def write_service_bench(document: dict, path: str | Path) -> Path:
    """Validate and write the document (atomic via temp + rename)."""
    validate_service_bench(document)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_suffix(path.suffix + ".tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    tmp_path.replace(path)
    return path
