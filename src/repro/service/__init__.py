"""Asynchronous decode service with dynamic micro-batching.

Every entry point built in PRs 1–4 — the CLI, the Monte-Carlo engines, the
streaming adapters — assumes one offline caller that owns its decoder.  This
package adds the missing production layer: a front end that serves *many
concurrent callers* by coalescing their single-shot requests onto the batched
machinery underneath, trading a bounded queueing delay for amortised
per-request cost (the pLUTo argument from PAPERS.md, applied to decoding):

* :class:`DecodeService` — bounded-queue admission with a configurable
  overload policy (block or load-shed), a dynamic
  :class:`~repro.service.batcher.MicroBatcher` (flush on batch size or
  deadline, whichever first), an LRU
  :class:`~repro.service.cache.SessionCache` of reusable
  :class:`repro.api.DecoderSession`\\ s keyed by
  ``(code, noise, decoder, config-hash)``, and a worker pool the coalesced
  batches fan out across.  Results are bit-identical to direct decoding.
* :class:`~repro.service.service.ServiceStream` — long-lived streaming
  connections (``begin`` / ``push_round`` / ``finalize``) multiplexed through
  the same scheduler and backpressure domain.
* An optional content-addressed :class:`repro.lut.OutcomeCache`
  (``outcome_cache_bytes=...``) mounted in front of the micro-batcher:
  repeated ``(session key, defect set)`` requests resolve in O(1) at
  submission, before they ever occupy a queue slot.
* :class:`TraceSpec` / :func:`generate_trace` — seed-stable synthetic request
  traces (open/closed-loop arrivals, weighted scenario mixes, plus the
  hostile families of :func:`hostile_trace`: flash-crowd bursts, Pareto
  heavy-tailed inter-arrivals, Zipf session skew, slow-consumer streams)
  replayed by :class:`repro.evaluation.ServiceLoadEngine`.
* :class:`~repro.service.faults.FaultPlan` — declarative, seed-stable fault
  injection (worker stragglers, session-build crashes with bounded
  retry/backoff, poisoned requests) resolved as isolated
  :data:`STATUS_ERROR` responses while the rest of the batch completes
  bit-identically.
* :func:`service_bench_document` / :func:`validate_service_bench` — the
  schema-validated ``BENCH_service.json`` CI publishes per commit
  (``python -m repro serve-bench``), with the pinned hostile-mix series of
  ``--hostile-smoke`` and the v4 ``saturation`` block (offered-load knee +
  process-scaling series) of ``serve-net --smoke``.
* :mod:`repro.service.net` — the network tier (imported on demand, not
  re-exported here): an asyncio TCP front end
  (:class:`~repro.service.net.NetServer`) speaking a length-prefixed
  canonical-JSON protocol, multi-process workers sharing decoding graphs
  through ``multiprocessing.shared_memory``, consistent-hash session
  routing, and a pipelined synchronous
  :class:`~repro.service.net.NetClient`.

Quickstart (see ``docs/service.md`` for the full tour)::

    from repro.service import (
        CodeSpec, DecodeRequest, DecodeService, ServiceConfig, SessionKey,
    )

    key = SessionKey(CodeSpec(distance=5, physical_error_rate=0.01))
    with DecodeService(ServiceConfig(workers=4, max_batch_size=32)) as service:
        future = service.submit(DecodeRequest(key, syndrome))
        response = future.result()       # .outcome == direct decode_detailed
"""

from ..lut.outcome_cache import OutcomeCache, OutcomeCacheStats, outcome_cache_key
from .batcher import Batch, MicroBatcher
from .bench import (
    SERVICE_BENCH_SCHEMA_VERSION,
    ServiceBenchSchemaError,
    cache_comparison_entry,
    fairness_entry,
    hostile_mix_entry,
    saturation_entry,
    service_bench_document,
    validate_service_bench,
    wire_entry,
    write_service_bench,
)
from .cache import SessionCache, SessionCacheStats, SessionEntry, build_session
from .config import OVERLOAD_POLICIES, ServiceConfig
from .faults import (
    HOSTILE_SMOKE_PLAN,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    poisoned_syndrome,
)
from .request import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    CodeSpec,
    DecodeRequest,
    DecodeResponse,
    SessionKey,
)
from .service import (
    DecodeService,
    ServiceClosedError,
    ServiceDrainError,
    ServiceOverloadedError,
    ServiceStats,
    ServiceStream,
    service_histogram,
)
from .trace import (
    HOSTILE_FAMILIES,
    HOSTILE_SMOKE_TRACES,
    INTERARRIVALS,
    SMOKE_TRACE,
    Scenario,
    Trace,
    TracedRequest,
    TracedStream,
    TraceSpec,
    generate_trace,
    hostile_trace,
    make_trace,
    zipf_scenarios,
)

__all__ = [
    "Batch",
    "MicroBatcher",
    "SERVICE_BENCH_SCHEMA_VERSION",
    "ServiceBenchSchemaError",
    "cache_comparison_entry",
    "fairness_entry",
    "hostile_mix_entry",
    "saturation_entry",
    "service_bench_document",
    "validate_service_bench",
    "wire_entry",
    "write_service_bench",
    "SessionCache",
    "SessionCacheStats",
    "SessionEntry",
    "build_session",
    "OutcomeCache",
    "OutcomeCacheStats",
    "outcome_cache_key",
    "HOSTILE_SMOKE_PLAN",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "poisoned_syndrome",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "CodeSpec",
    "DecodeRequest",
    "DecodeResponse",
    "SessionKey",
    "OVERLOAD_POLICIES",
    "ServiceConfig",
    "DecodeService",
    "ServiceClosedError",
    "ServiceDrainError",
    "ServiceOverloadedError",
    "ServiceStats",
    "ServiceStream",
    "service_histogram",
    "HOSTILE_FAMILIES",
    "HOSTILE_SMOKE_TRACES",
    "INTERARRIVALS",
    "SMOKE_TRACE",
    "Scenario",
    "Trace",
    "TracedRequest",
    "TracedStream",
    "TraceSpec",
    "generate_trace",
    "hostile_trace",
    "make_trace",
    "zipf_scenarios",
]
